#!/usr/bin/env python3
"""The Set-Top Box scenario again -- but the policy is a JSON file.

``examples/adaptive_settopbox.py`` phase 2 keeps the overloaded box
alive with *imperative* adaptation: a hand-written ``pressure()``
callback polls task statistics and an ``ImportanceShedding`` rule
object decides what to suspend.  This example reaches the same end
state with zero policy code -- the policy is two declarative rules in
``examples/settopbox.rules.json``, evaluated by the
:class:`~repro.adapt.controller.AdaptationController` loop:

  imperative (adaptive_settopbox.py)   declarative (this example)
  ----------------------------------   --------------------------------
  def pressure(statuses):              "when": {"param":
      for status in statuses:              "deadline_miss_rate",
          stats = status["task"]...        "op": ">", "value": 0.02,
          if misses grew: return True      "for_epochs": 2}
  ImportanceShedding(pressure)         "then": [{"action":
      .apply() -> suspend victim           "shed_lowest_priority"}]
  manager.poll() every 250 ms          "cooldown_ns": 200000000
  (caller owns the cadence)            (controller owns the cadence)
  re-arm logic: hand-absorbed          "clear": {"op": "<=",
  misses after each shed                   "value": 0.005}

Same shedding order, too: ``shed_lowest_priority`` consults the same
``importance`` property the imperative manager used, so EPG000 goes
first, then REC000, and the decoder never misses a frame.

Because the policy is data, drtlint can audit it before it ever runs:

    python -m repro lint --family DRT5 examples/

Run:  python examples/adaptive_rules.py
"""

import os

from repro import build_platform
from repro.adapt import AdaptationController, JsonRuleProvider
from repro.core import AlwaysAcceptPolicy
from repro.sim.engine import MSEC, SEC

from adaptive_settopbox import (  # the very same box
    DECODE_XML,
    EPG_XML,
    OSD_XML,
    REC_XML,
    deploy,
    states,
)

RULES_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "settopbox.rules.json")


def main():
    print("== declarative set-top box: policy from %s =="
          % os.path.basename(RULES_PATH))
    platform = build_platform(seed=31,
                              internal_policy=AlwaysAcceptPolicy())
    platform.start_timer(1 * MSEC)
    deploy(platform, "DECODE", DECODE_XML)
    deploy(platform, "OSD000", OSD_XML)
    deploy(platform, "EPG000", EPG_XML)
    deploy(platform, "REC000", REC_XML)  # demand now 1.10: overload
    print("all four deployed:",
          states(platform, "DECODE", "OSD000", "EPG000", "REC000"))

    provider = JsonRuleProvider(RULES_PATH)
    print("rules loaded: %s"
          % ", ".join(rule.name for rule in provider.rules()))
    controller = AdaptationController(platform, epoch_ns=50 * MSEC)
    # Registered through OSGi, exactly like a management bundle would:
    # unregistering the provider at run time withdraws the policy.
    registration = provider.register(platform.framework)
    controller.start()

    platform.run_for(3 * SEC)
    print("after adaptation:",
          states(platform, "DECODE", "OSD000", "EPG000", "REC000"))
    for entry in controller.history:
        print("  %6.2f s  %-16s %s"
              % (entry["at_ns"] / SEC, entry["rule"],
                 entry["outcome"]))
    decode_task = platform.kernel.lookup("DECODE")
    print("decoder misses:", decode_task.stats.deadline_misses)
    adapt = platform.telemetry.registry("adapt")
    print("epochs=%d fired=%d suppressed=%d"
          % (adapt.counter("epochs_total").value,
             adapt.counter("rules_fired_total").value,
             adapt.counter("rules_suppressed_total").value))

    registration.unregister()
    controller.stop()
    platform.shutdown()


if __name__ == "__main__":
    main()
