#!/usr/bin/env python3
"""A closed control loop on the digital I/O module (Figure 3).

"The real-time task can also connect to sensors or actuators, via the
digital I/O module."  This example wires the paper's architecture end
to end with the repository's extensions:

* a **periodic controller** (500 Hz) samples a drifting plant on DIO
  input 0 and drives a bang-bang actuator on DIO output 1;
* a **sporadic alarm handler** fires when the controller sees the
  plant leave its safe band -- released through the component's own
  container, with the kernel enforcing the declared 50 ms minimum
  inter-arrival time no matter how wildly the plant misbehaves;
* an **adaptation manager polls inside simulated time** (a plain
  Linux-side activity, exactly where the paper puts it).

Run:  python examples/control_loop.py
"""

from repro import build_platform
from repro.core import AdaptationManager, AdaptationRule
from repro.hybrid import RTImplementation, make_container_factory
from repro.hybrid.implementation import ImplementationRegistry
from repro.rtos.dio import SineWave, attach_dio
from repro.sim.engine import MSEC, SEC

CONTROLLER_XML = """<?xml version="1.0" encoding="UTF-8"?>
<drt:component name="CTRL00" desc="bang-bang plant controller"
               type="periodic" enabled="true" cpuusage="0.05">
  <implementation bincode="loop.Controller"/>
  <periodictask frequence="500" runoncpu="0" priority="2"/>
  <outport name="ALARMQ" interface="RTAI.Mailbox" type="Integer"
           size="16"/>
  <property name="band" type="Float" value="0.8"/>
</drt:component>
"""

ALARM_XML = """<?xml version="1.0" encoding="UTF-8"?>
<drt:component name="ALARM0" desc="out-of-band alarm handler"
               type="sporadic" enabled="true" cpuusage="0.02">
  <implementation bincode="loop.AlarmHandler"/>
  <sporadictask mininterarrival_ns="50000000" runoncpu="0"
                priority="1"/>
  <inport name="ALARMQ" interface="RTAI.Mailbox" type="Integer"
          size="16"/>
  <property name="handled" type="Integer" value="0"/>
</drt:component>
"""


class Controller(RTImplementation):
    """Sample the plant, actuate, and queue an alarm when out of band."""

    def init(self, ctx):
        self.out_of_band_samples = 0

    def execute(self, ctx):
        level = ctx.read_sensor(0)
        ctx.write_actuator(1, 1 if level < 0 else 0)
        band = float(ctx.get_property("band", 0.8))
        if abs(level) > band:
            self.out_of_band_samples += 1
            ctx.write_outport("ALARMQ", ctx.job_index)


class AlarmHandler(RTImplementation):
    """Drain the alarm queue (one sporadic job per legal release)."""

    def execute(self, ctx):
        drained = 0
        while ctx.read_inport("ALARMQ") is not None:
            drained += 1
        ctx.properties["handled"] = ctx.properties.get("handled", 0) \
            + drained


class ReleaseAlarmOnQueue(AdaptationRule):
    """The Linux-side glue: when alarms queue up, release the sporadic
    handler (the kernel throttles over-eager releases)."""

    name = "release-alarm"

    def __init__(self, platform):
        self.platform = platform

    def apply(self, status, management, manager):
        if status["name"] != "ALARM0":
            return None
        queue = self.platform.kernel.lookup("ALARMQ")
        if len(queue) == 0:
            return None
        container = self.platform.drcr.component("ALARM0").container
        container.release()
        return "released alarm handler (%d queued)" % len(queue)


def main():
    registry = ImplementationRegistry()
    registry.register("loop.Controller", Controller)
    registry.register("loop.AlarmHandler", AlarmHandler)
    platform = build_platform(
        seed=17, container_factory=make_container_factory(registry))
    platform.start_timer(1 * MSEC)

    dio = attach_dio(platform.kernel)
    dio.wire_input(0, SineWave(period_ns=200 * MSEC, amplitude=1.0))

    for name, xml in (("loop.ctrl", CONTROLLER_XML),
                      ("loop.alarm", ALARM_XML)):
        platform.install_and_start(
            {"Bundle-SymbolicName": name,
             "RT-Component": "OSGI-INF/c.xml"},
            resources={"OSGI-INF/c.xml": xml})

    manager = AdaptationManager(
        platform.framework, rules=[ReleaseAlarmOnQueue(platform)])
    manager.start_periodic_polling(platform.sim, 20 * MSEC)

    platform.run_for(2 * SEC)

    ctrl = platform.drcr.component("CTRL00")
    alarm = platform.drcr.component("ALARM0")
    ctrl_task, alarm_task = ctrl.container.task, alarm.container.task
    actuations = dio.output_log[1]
    switches = sum(1 for a, b in zip(actuations, actuations[1:])
                   if a[1] != b[1])

    print("after 2 s of closed-loop control:")
    print("  controller jobs      :", ctrl_task.stats.completions)
    print("  actuator writes      : %d (%d switches)"
          % (len(actuations), switches))
    print("  alarms queued        :",
          platform.kernel.lookup("ALARMQ").sent_count)
    print("  alarm activations    : %d (throttled releases: %d)"
          % (alarm_task.stats.activations,
             alarm_task.stats.throttled_releases))
    print("  alarms handled       :",
          alarm.container.get_property("handled"))
    print("  deadline misses      : controller=%d alarm=%d"
          % (ctrl_task.stats.deadline_misses,
             alarm_task.stats.deadline_misses))
    print("  adaptation actions   :", len(manager.log))
    manager.close()
    platform.shutdown()


if __name__ == "__main__":
    main()
