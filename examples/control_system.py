#!/usr/bin/env python3
"""The paper's evaluation application (section 4.2-4.4), end to end.

Two real-time components delivered as individual bundles:

* **Calculation** -- "some simulated computing job at [a] rate of
  1000 Hz", publishing into shared memory;
* **Display** -- "will display the scheduling latency at rate 4
  [250 Hz] by reading the shared memory"; functionally constrained on
  Calculation's outport, so "it could not start if no active
  calculation task exists".

The script then walks the section 4.3 dynamicity scenario (stop
Calculation -> Display deactivates; restart -> Display reactivates) and
finishes with the section 4.4 latency measurement in light and stress
mode, printing a Table-1-style summary.

Run:  python examples/control_system.py
"""

from repro import build_platform
from repro.rtos.load import apply_stress, remove_loads
from repro.sim.engine import MSEC, SEC

CALCULATION_XML = """<?xml version="1.0" encoding="UTF-8"?>
<drt:component name="CALC00" desc="simulated computing job, 1000 Hz"
               type="periodic" enabled="true" cpuusage="0.03">
  <implementation bincode="ua.pats.demo.calculation.RTComponent"/>
  <periodictask frequence="1000" runoncpu="0" priority="2"/>
  <outport name="LATDAT" interface="RTAI.SHM" type="Integer" size="4"/>
</drt:component>
"""

DISPLAY_XML = """<?xml version="1.0" encoding="UTF-8"?>
<drt:component name="DISP00" desc="displays scheduling latency, rate 4"
               type="periodic" enabled="true" cpuusage="0.01">
  <implementation bincode="ua.pats.demo.display.RTComponent"/>
  <periodictask frequence="250" runoncpu="0" priority="3"/>
  <inport name="LATDAT" interface="RTAI.SHM" type="Integer" size="4"/>
</drt:component>
"""


def deploy(platform, symbolic_name, xml):
    return platform.install_and_start(
        {"Bundle-SymbolicName": symbolic_name,
         "RT-Component": "OSGI-INF/component.xml"},
        resources={"OSGI-INF/component.xml": xml})


def state(platform, name):
    return platform.drcr.component_state(name).value


def print_latency_row(label, summary):
    print("  %-18s avg=%10.1f  avedev=%9.1f  min=%8d  max=%8d  (n=%d)"
          % (label, summary["average"], summary["avedev"],
             summary["min"], summary["max"], summary["count"]))


def main():
    platform = build_platform(seed=2008)
    platform.start_timer(1 * MSEC)

    # ------------------------------------------------------------------
    print("== deployment & functional constraints ==")
    deploy(platform, "ua.pats.demo.display", DISPLAY_XML)
    print("display deployed first       ->", state(platform, "DISP00"),
          "(%s)" % platform.drcr.component("DISP00").status_reason)

    calc_bundle = deploy(platform, "ua.pats.demo.calculation",
                         CALCULATION_XML)
    print("calculation deployed         ->", state(platform, "CALC00"))
    print("display after provider came  ->", state(platform, "DISP00"))

    # ------------------------------------------------------------------
    print("\n== section 4.3: dynamicity scenario ==")
    platform.run_for(100 * MSEC)
    calc_bundle.stop()
    print("calculation bundle stopped   -> display:",
          state(platform, "DISP00"))
    calc_bundle.start()
    print("calculation bundle restarted -> display:",
          state(platform, "DISP00"))
    print("DRCR event log for DISP00:")
    for event in platform.drcr.events.for_component("DISP00"):
        print("   t=%-12d %-12s %s"
              % (event.time, event.event_type.value, event.reason))

    # ------------------------------------------------------------------
    print("\n== section 4.4: latency test (light & stress mode) ==")
    calc_task = platform.kernel.lookup("CALC00")

    calc_task.stats.latency.clear()
    platform.run_for(4 * SEC)
    light = calc_task.stats.latency.summary()

    loads = apply_stress(platform.kernel)
    calc_task.stats.latency.clear()
    platform.run_for(4 * SEC)
    stress = calc_task.stats.latency.summary()
    remove_loads(platform.kernel, loads)

    print("scheduling latency of the 1000 Hz task (ns), HRC model:")
    print_latency_row("light mode", light)
    print_latency_row("stress mode", stress)
    print("  (paper, HRC: light avg=-1334.9 avedev=3760.0;"
          " stress avg=-21083.7 avedev=338.9)")

    misses = calc_task.stats.deadline_misses
    print("deadline misses across the whole run:", misses)
    print("Linux throughput under stress: %.1f ms of CPU work"
          % (platform.kernel.linux_work_ns() / 1e6))

    platform.shutdown()


if __name__ == "__main__":
    main()
