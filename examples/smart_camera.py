#!/usr/bin/env python3
"""ARFLEX-style smart camera with a custom implementation (section 2.3).

The paper's Figure-2 camera "can return regions of interests (subsets
from a frame image data) on demand".  This example shows the
user-facing implementation API:

* a **camera** component grabs frames and publishes a region of
  interest into the ``IMAGES`` shared-memory port; the region size is a
  live component property (``roi``);
* a **tracker** component consumes the region and estimates motion;
* an **adaptation manager** watches the tracker's status and shrinks
  the camera's ROI when the tracker starts missing deadlines -- the
  paper's "adjust the parameter ... according to current available
  resources" loop, implemented purely against the management services
  in the OSGi registry.

Run:  python examples/smart_camera.py
"""

from repro import build_platform
from repro.core import (
    AdaptationManager,
    AlwaysAcceptPolicy,
    PropertyTuningRule,
)
from repro.hybrid import RTImplementation, make_container_factory
from repro.hybrid.implementation import ImplementationRegistry
from repro.sim.engine import MSEC, SEC

CAMERA_XML = """<?xml version="1.0" encoding="UTF-8"?>
<drt:component name="camera" desc="smart camera controller"
               type="periodic" enabled="true" cpuusage="0.10">
  <implementation bincode="arflex.Camera"/>
  <periodictask frequence="100" runoncpu="0" priority="2"/>
  <outport name="IMAGES" interface="RTAI.SHM" type="Byte" size="400"/>
  <property name="roi" type="Integer" value="400"/>
</drt:component>
"""

TRACKER_XML = """<?xml version="1.0" encoding="UTF-8"?>
<drt:component name="tracker" desc="estimates target motion"
               type="periodic" enabled="true" cpuusage="0.45">
  <implementation bincode="arflex.Tracker"/>
  <periodictask frequence="100" runoncpu="0" priority="3" deadline_ns="5000000"/>
  <inport name="IMAGES" interface="RTAI.SHM" type="Byte" size="400"/>
  <property name="estimate" type="Integer" value="0"/>
</drt:component>
"""


class Camera(RTImplementation):
    """Grabs a frame and publishes the configured region of interest."""

    def init(self, ctx):
        self._frame_counter = 0

    def execute(self, ctx):
        self._frame_counter += 1
        roi = min(int(ctx.get_property("roi", 400)), 400)
        # The ROI pixels carry the frame number; the rest stays stale.
        frame = [self._frame_counter % 256] * roi + [0] * (400 - roi)
        ctx.write_outport("IMAGES", frame)


class Tracker(RTImplementation):
    """Consumes the ROI; its work scales with the ROI the camera sends,
    so an over-large ROI overruns its budget."""

    def init(self, ctx):
        self._last_pixel = 0

    def compute_ns(self, ctx):
        # Processing cost: 16 us per ROI pixel; at ROI=400 the job
        # takes 6.4 ms, past the 5 ms deadline -> misses until the
        # ROI shrinks (200 -> 3.2 ms, comfortably inside).
        roi = self._sensed_roi(ctx)
        return int(roi * 16_000)

    def execute(self, ctx):
        frame = ctx.read_inport("IMAGES")
        self._last_pixel = frame[0]
        ctx.properties["estimate"] = self._last_pixel

    @staticmethod
    def _sensed_roi(ctx):
        frame = ctx.read_inport("IMAGES")
        roi = 0
        for value in reversed(frame):
            if value != 0:
                roi = frame.index(0) if 0 in frame else len(frame)
                break
        return roi or len(frame)


def main():
    registry = ImplementationRegistry()
    registry.register("arflex.Camera", Camera)
    registry.register("arflex.Tracker", Tracker)

    platform = build_platform(
        seed=7,
        internal_policy=AlwaysAcceptPolicy(),  # let the overrun happen
        container_factory=make_container_factory(registry))
    platform.start_timer(1 * MSEC)

    for name, xml in (("arflex.camera", CAMERA_XML),
                      ("arflex.tracker", TRACKER_XML)):
        platform.install_and_start(
            {"Bundle-SymbolicName": name,
             "RT-Component": "OSGI-INF/c.xml"},
            resources={"OSGI-INF/c.xml": xml})

    def tracker_misses(status):
        task = status.get("task")
        return bool(task) and task["stats"]["deadline_misses"] > 5

    # When the tracker misses deadlines, shrink the camera's ROI.
    manager = AdaptationManager(platform.framework, rules=[
        PropertyTuningRule(
            predicate=lambda status: (status["name"] == "camera"
                                      and any(tracker_misses(s)
                                              for s in manager_statuses)),
            property_name="roi", new_value=200),
    ])
    manager_statuses = []

    tracker_task = platform.drcr.component("tracker").container.task
    print("running with ROI=400 (tracker blows its 5 ms deadline):")
    for cycle in range(6):
        platform.run_for(250 * MSEC)
        manager_statuses[:] = manager.statuses()
        actions = manager.poll()
        print("  t=%4dms  tracker misses=%-4d overruns=%-4d %s"
              % (platform.now // MSEC,
                 tracker_task.stats.deadline_misses,
                 tracker_task.stats.overruns,
                 "| adaptation: %s" % actions if actions else ""))

    misses_after_adaptation = tracker_task.stats.deadline_misses
    platform.run_for(1 * SEC)
    print("after ROI shrunk to 200: %d new misses in the next second"
          % (tracker_task.stats.deadline_misses
             - misses_after_adaptation))

    camera = platform.drcr.component("camera")
    print("camera live properties:",
          camera.container.get_status()["properties"])
    tracker = platform.drcr.component("tracker")
    print("tracker estimate property:",
          tracker.container.get_property("estimate"))
    manager.close()
    platform.shutdown()


if __name__ == "__main__":
    main()
