#!/usr/bin/env python3
"""The paper's motivating scenario: a Set-Top Box (section 1).

"An example is given by the Set-Top Boxes needed to decode/encode media
data, which has typical soft real-time characteristics."

The box runs on one CPU:

* **decode** -- the 50 Hz video decoder (high importance, priority 1),
* **osd** -- the 25 Hz on-screen display reading the decoder's frame
  port (medium importance),
* **rec** -- a second decode chain for background recording that a
  user switches on mid-flight (continuous deployment!),
* **epg** -- an electronic-program-guide indexer, aperiodic, low
  importance.

The demonstration:

1. the DRCR's admission control (RM response-time analysis) protects
   the running decode pipeline when the recording chain arrives -- the
   overloaded configuration is simply *not admitted*;
2. with a relaxed budget the recorder is admitted, pressure appears,
   and an importance-shedding adaptation manager suspends the least
   important component instead of letting the decoder miss frames;
3. Linux-side stress (the JVM's garbage collector, downloads) never
   touches the decode latency -- the dual-kernel guarantee.

Run:  python examples/adaptive_settopbox.py
"""

from repro import build_platform
from repro.core import (
    AdaptationManager,
    ComponentState,
    ImportanceShedding,
    ResponseTimeAnalysisPolicy,
    UtilizationBoundPolicy,
)
from repro.rtos.load import JVMGarbageCollectorLoad, apply_stress
from repro.sim.engine import MSEC, SEC


def component_xml(name, frequency, priority, cpuusage, importance,
                  outports="", inports=""):
    return """<?xml version="1.0" encoding="UTF-8"?>
<drt:component name="%s" type="periodic" enabled="true" cpuusage="%s">
  <implementation bincode="stb.%s"/>
  <periodictask frequence="%s" runoncpu="0" priority="%d"/>
  %s%s
  <property name="importance" type="Integer" value="%d"/>
</drt:component>""" % (name, cpuusage, name, frequency, priority,
                       outports, inports, importance)


DECODE_XML = component_xml(
    "DECODE", 50, 1, 0.40, importance=10,
    outports='<outport name="FRAME0" interface="RTAI.SHM" type="Byte" '
             'size="128"/>')
OSD_XML = component_xml(
    "OSD000", 25, 2, 0.15, importance=5,
    inports='<inport name="FRAME0" interface="RTAI.SHM" type="Byte" '
            'size="128"/>')
REC_XML = component_xml("REC000", 50, 3, 0.35, importance=3)
EPG_XML = component_xml("EPG000", 5, 4, 0.20, importance=1)


def deploy(platform, name, xml):
    return platform.install_and_start(
        {"Bundle-SymbolicName": "stb.%s" % name.lower(),
         "RT-Component": "OSGI-INF/c.xml"},
        resources={"OSGI-INF/c.xml": xml})


def states(platform, *names):
    return {name: platform.drcr.component_state(name).value
            for name in names}


def main():
    print("== phase 1: admission control protects the pipeline ==")
    platform = build_platform(
        seed=31, internal_policy=ResponseTimeAnalysisPolicy())
    platform.start_timer(1 * MSEC)
    deploy(platform, "DECODE", DECODE_XML)
    deploy(platform, "OSD000", OSD_XML)
    deploy(platform, "EPG000", EPG_XML)
    platform.run_for(500 * MSEC)
    print("baseline:", states(platform, "DECODE", "OSD000", "EPG000"))

    # The user hits 'record': a fourth chain arrives at run time.
    deploy(platform, "REC000", REC_XML)
    print("recorder deployed:", states(platform, "REC000"))
    print("  reason:", platform.drcr.component("REC000").status_reason)
    platform.run_for(1 * SEC)
    decode_task = platform.kernel.lookup("DECODE")
    print("decoder misses with admission control: %d"
          % decode_task.stats.deadline_misses)
    platform.shutdown()

    print("\n== phase 2: admission disabled + importance shedding ==")
    # An operator who *insists* on the recorder can turn admission off;
    # the adaptation manager then keeps the box alive by shedding the
    # least important component instead.
    from repro.core import AlwaysAcceptPolicy
    platform = build_platform(
        seed=31, internal_policy=AlwaysAcceptPolicy())
    platform.start_timer(1 * MSEC)
    deploy(platform, "DECODE", DECODE_XML)
    deploy(platform, "OSD000", OSD_XML)
    deploy(platform, "EPG000", EPG_XML)
    deploy(platform, "REC000", REC_XML)  # demand now 1.10: overload
    print("all four deployed:",
          states(platform, "DECODE", "OSD000", "EPG000", "REC000"))

    last_counts = {}

    def pressure(statuses):
        # Pressure = NEW misses/overruns since the previous poll, so
        # shedding stops once the remaining set runs clean.
        pressed = False
        for status in statuses:
            stats = status.get("task", {}).get("stats", {})
            count = (stats.get("deadline_misses", 0)
                     + stats.get("overruns", 0))
            if count > last_counts.get(status["name"], 0):
                pressed = True
            last_counts[status["name"]] = count
        return pressed

    manager = AdaptationManager(platform.framework,
                                rules=[ImportanceShedding(pressure)])
    for _ in range(8):
        platform.run_for(250 * MSEC)
        actions = manager.poll()
        if actions:
            print("  adaptation:", actions)
            # Absorb the misses that accrued before the shed took
            # effect, so one shed gets a full window to prove itself.
            platform.run_for(50 * MSEC)
            pressure(manager.statuses())
    print("after shedding:",
          states(platform, "DECODE", "OSD000", "EPG000", "REC000"))
    decode_task = platform.kernel.lookup("DECODE")
    print("decoder misses:", decode_task.stats.deadline_misses)

    print("\n== phase 3: Linux load cannot hurt the decoder ==")
    decode_task.stats.latency.clear()
    platform.run_for(2 * SEC)
    quiet = decode_task.stats.latency.summary()
    platform.kernel.register_load(JVMGarbageCollectorLoad(demand=0.3))
    apply_stress(platform.kernel)
    decode_task.stats.latency.clear()
    platform.run_for(2 * SEC)
    stressed = decode_task.stats.latency.summary()
    print("decode latency, quiet Linux : avg=%8.1f ns avedev=%7.1f ns"
          % (quiet["average"], quiet["avedev"]))
    print("decode latency, GC + stress: avg=%8.1f ns avedev=%7.1f ns"
          % (stressed["average"], stressed["avedev"]))
    print("decoder misses total:", decode_task.stats.deadline_misses)
    manager.close()
    platform.shutdown()


if __name__ == "__main__":
    main()
