#!/usr/bin/env python3
"""Quickstart: deploy the paper's smart-camera component and watch the
DRCR manage it.

This is the 5-minute tour of the public API:

1. build a platform (simulator + RTAI-like kernel + OSGi + DRCR),
2. start the hardware timer,
3. install a bundle carrying a DRCom XML descriptor (the paper's
   Figure 2, verbatim),
4. run simulated time and read the component's status through the
   management service registered in the OSGi service registry.

Run:  python examples/quickstart.py
"""

from repro import build_platform
from repro.core import MANAGEMENT_SERVICE_INTERFACE
from repro.sim.engine import MSEC, SEC

#: The paper's Figure 2 descriptor -- a 100 Hz smart camera claiming
#: 10% of CPU 0 at priority 2, publishing image data in shared memory.
CAMERA_XML = """<?xml version="1.0" encoding="UTF-8"?>
<drt:component name="camera" desc="this is a smart camera controller"
               type="periodic" enabled="true" cpuusage="0.1">
  <implementation bincode="ua.pats.demo.smartcamera.RTComponent"/>
  <periodictask frequence="100" runoncup="0" priority="2"/>
  <outport name="images" interface="RTAI.SHM" type="Byte" size="400"/>
  <property name="prox00" type="Integer" value="6"/>
</drt:component>
"""


def main():
    # 1. The platform: everything wired together.
    platform = build_platform(seed=42)

    # 2. Periodic components need the hardware timer (RTAI rule).
    platform.start_timer(1 * MSEC)

    # 3. Continuous deployment: install + start a bundle.  The DRCR
    #    notices the RT-Component header, parses the descriptor,
    #    resolves constraints and activates the component.
    platform.install_and_start(
        {
            "Bundle-SymbolicName": "ua.pats.demo.smartcamera",
            "Bundle-Version": "1.0.0",
            "RT-Component": "OSGI-INF/camera.xml",
        },
        resources={"OSGI-INF/camera.xml": CAMERA_XML},
    )
    print("deployed: camera ->", platform.drcr.component_state("camera"))

    # 4. Let one simulated second elapse.
    platform.run_for(1 * SEC)

    # 5. Find the camera's management service in the OSGi registry --
    #    this is how any module (an adaptation manager, a UI) would.
    reference = platform.framework.registry.get_reference(
        MANAGEMENT_SERVICE_INTERFACE, "(drcom.name=camera)")
    management = platform.framework.registry.get_service(reference)

    status = management.get_status()
    stats = status["task"]["stats"]
    print("after 1 s of simulated time:")
    print("  lifecycle state :", status["state"])
    print("  jobs completed  :", stats["completions"])
    print("  deadline misses :", stats["deadline_misses"])
    print("  scheduling latency (ns):",
          {k: round(v, 1) for k, v in stats["latency"].items()})
    print("  prox00 property :", management.get_property("prox00"))

    # 6. The management interface: suspend, reconfigure, resume.
    management.suspend()
    print("suspended ->", platform.drcr.component_state("camera"))
    management.set_property("prox00", 12)
    management.resume()
    platform.run_for(100 * MSEC)
    print("resumed  ->", platform.drcr.component_state("camera"),
          "| prox00 =", management.get_property("prox00"))

    # 7. The shared-memory outport is a first-class kernel object.
    images = platform.kernel.lookup("IMAGES")
    print("IMAGES segment: %d writes, last writer %s"
          % (images.write_count, images.last_writer))

    platform.shutdown()
    print("platform shut down cleanly")


if __name__ == "__main__":
    main()
