#!/usr/bin/env python3
"""Exporting real-time data to user space through an RTAI FIFO.

The paper's Display task "will display the scheduling latency ... by
reading the shared memory" -- but an actual on-screen display lives in
Linux user space, and the classic RTAI route there is a FIFO
(``/dev/rtfN``).  This example adds the missing last hop and measures
the asymmetry the dual-kernel design implies:

* the RT producer (`rtf_put`) never blocks and never misses a beat,
  loaded or not;
* the *user-space consumer's* wakeup goes through the ordinary Linux
  scheduler, so its delivery latency balloons under the stress
  workload -- stress can't hurt the RT side, but it absolutely hurts
  how fast Linux gets to see the data.

Run:  python examples/fifo_export.py
"""

from repro import build_platform
from repro.core import AlwaysAcceptPolicy
from repro.hybrid import RTImplementation, make_container_factory
from repro.hybrid.implementation import ImplementationRegistry
from repro.rtos.load import apply_stress, remove_loads
from repro.sim.engine import MSEC, SEC

MONITOR_XML = """<?xml version="1.0" encoding="UTF-8"?>
<drt:component name="LATMON" desc="latency monitor, exports via FIFO"
               type="periodic" enabled="true" cpuusage="0.02">
  <implementation bincode="demo.LatencyMonitor"/>
  <periodictask frequence="1000" runoncpu="0" priority="2"/>
  <outport name="LATFIF" interface="RTAI.FIFO" type="Integer"
           size="4096"/>
</drt:component>
"""


class LatencyMonitor(RTImplementation):
    """Publishes each job's scheduling latency into the FIFO."""

    def execute(self, ctx):
        ctx.write_outport("LATFIF", ctx.last_latency)


def measure(platform, fifo, label, window_ns):
    fifo.delivery_latencies_ns.clear()
    platform.run_for(window_ns)
    latencies = fifo.delivery_latencies_ns
    mean = sum(latencies) / len(latencies)
    print("  %-18s user-space delivery: mean=%8.3f ms  max=%8.3f ms  "
          "(%d samples)" % (label, mean / 1e6, max(latencies) / 1e6,
                            len(latencies)))
    return mean


def main():
    registry = ImplementationRegistry()
    registry.register("demo.LatencyMonitor", LatencyMonitor)
    platform = build_platform(
        seed=99,
        internal_policy=AlwaysAcceptPolicy(),
        container_factory=make_container_factory(registry))
    platform.start_timer(1 * MSEC)
    platform.install_and_start(
        {"Bundle-SymbolicName": "demo.latmon",
         "RT-Component": "OSGI-INF/mon.xml"},
        resources={"OSGI-INF/mon.xml": MONITOR_XML})

    # The user-space side: a handler the simulated Linux scheduler
    # wakes up whenever data is pending.
    fifo = platform.kernel.lookup("LATFIF")
    received = []
    fifo.set_user_handler(received.extend)

    task = platform.kernel.lookup("LATMON")

    print("RT -> user-space export through RTAI FIFO 'LATFIF':")
    quiet = measure(platform, fifo, "quiet Linux", 2 * SEC)
    loads = apply_stress(platform.kernel)
    stressed = measure(platform, fifo, "stress (100% CPU)", 2 * SEC)
    remove_loads(platform.kernel, loads)

    print("\nthe asymmetry, quantified:")
    print("  user-space delivery degraded %.0fx under stress"
          % (stressed / quiet))
    print("  RT producer deadline misses under stress: %d"
          % task.stats.deadline_misses)
    print("  FIFO drops (rtf_put never blocks): %d"
          % fifo.dropped_count)
    print("  samples delivered to user space: %d" % len(received))
    platform.shutdown()


if __name__ == "__main__":
    main()
