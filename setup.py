"""Legacy setup shim.

The execution environment has no network access and an older setuptools
without editable-wheel support, so ``pip install -e .`` needs the
``--no-use-pep517`` path, which requires this file.  All real metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
