"""Named, independently seeded random streams.

Every stochastic model in the repository (latency jitter, load bursts,
workload generators) draws from its own named stream.  Deriving each
stream's seed from ``(master_seed, name)`` means adding a new model never
changes the draws seen by existing ones -- runs stay comparable across
code revisions, which matters when calibrating the latency model against
the paper's Table 1.
"""

import hashlib
import random


def derive_seed(master_seed, name):
    """Derive a 64-bit child seed from a master seed and a stream name."""
    digest = hashlib.sha256(
        ("%d/%s" % (master_seed, name)).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A lazy dictionary of named :class:`random.Random` instances."""

    def __init__(self, master_seed=0):
        self._master_seed = master_seed
        self._streams = {}

    @property
    def master_seed(self):
        """The master seed the streams were derived from."""
        return self._master_seed

    def stream(self, name):
        """Return (creating on first use) the stream called ``name``."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self._master_seed, name))
            self._streams[name] = stream
        return stream

    def gauss(self, name, mu, sigma):
        """Draw one Gaussian sample from stream ``name``."""
        return self.stream(name).gauss(mu, sigma)

    def uniform(self, name, lo, hi):
        """Draw one uniform sample from stream ``name``."""
        return self.stream(name).uniform(lo, hi)

    def expovariate(self, name, rate):
        """Draw one exponential sample (mean ``1/rate``) from ``name``."""
        return self.stream(name).expovariate(rate)

    def randint(self, name, lo, hi):
        """Draw one integer in ``[lo, hi]`` from stream ``name``."""
        return self.stream(name).randint(lo, hi)

    def random(self, name):
        """Draw one float in ``[0, 1)`` from stream ``name``."""
        return self.stream(name).random()

    def choice(self, name, seq):
        """Pick one element of ``seq`` from stream ``name``."""
        return self.stream(name).choice(seq)

    def fork(self, name):
        """Return a new :class:`RandomStreams` rooted under ``name``.

        Useful for giving a sub-simulation (for example one benchmark
        repetition) its own namespace of streams.
        """
        return RandomStreams(derive_seed(self._master_seed, name))
