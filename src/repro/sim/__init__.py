"""Discrete-event simulation core.

This package provides the deterministic, nanosecond-resolution simulation
substrate on which the RTAI-like real-time kernel (:mod:`repro.rtos`) runs.
It contains:

* :class:`~repro.sim.engine.Simulator` -- the event loop,
* :class:`~repro.sim.events.Event` / :class:`~repro.sim.events.EventQueue`
  -- cancellable scheduled callbacks ordered by (time, priority, sequence),
* :class:`~repro.sim.rng.RandomStreams` -- named, independently seeded
  random streams so that adding a new source of randomness never perturbs
  existing ones,
* :class:`~repro.sim.trace.TraceRecorder` -- structured trace records,
* :class:`~repro.sim.stats.RunningStats` and
  :class:`~repro.sim.stats.SampleSeries` -- statistics used by the
  benchmark harness (including AVEDEV as reported in the paper's Table 1).
"""

from repro.sim.engine import Simulator
from repro.sim.errors import SimulationError, SchedulingInPastError
from repro.sim.events import Event, EventQueue
from repro.sim.rng import RandomStreams
from repro.sim.stats import RunningStats, SampleSeries, summarize
from repro.sim.trace import TraceRecord, TraceRecorder

__all__ = [
    "Event",
    "EventQueue",
    "RandomStreams",
    "RunningStats",
    "SampleSeries",
    "SchedulingInPastError",
    "SimulationError",
    "Simulator",
    "TraceRecord",
    "TraceRecorder",
    "summarize",
]
