"""Cancellable events and the time-ordered event queue.

Events are ordered by ``(time, priority, sequence)``.  The sequence number
makes ordering of same-time, same-priority events deterministic (FIFO in
scheduling order), which keeps every simulation run bit-reproducible for a
given seed.

Performance notes (see docs/PERFORMANCE.md)
-------------------------------------------
The heap stores ``(when, priority, seq, event)`` **tuples**, not the
:class:`Event` objects themselves.  Tuple comparison is a single C-level
operation, whereas comparing ``Event`` objects calls ``__lt__`` (and a
key-building helper) in Python for every sift step -- which profiling
showed was the single largest cost of the whole simulator (~1.7 million
``_sort_key`` calls for a 90k-event run).  ``seq`` is unique, so the
comparison never reaches the trailing event object, and the event class
needs no ordering methods at all on the hot path.  The tuple layout is
part of the internal contract with :meth:`repro.sim.engine.Simulator.run`,
which drains the heap in place instead of paying ``peek``/``pop`` method
pairs per event.
"""

from heapq import heappop, heappush

from repro.sim.errors import EventAlreadyCancelledError

#: Default event priority.  Lower values fire first at equal timestamps.
PRIORITY_NORMAL = 100
#: Priority used for hardware-level events (timer interrupts) that must be
#: observed before any same-instant software action.
PRIORITY_INTERRUPT = 0
#: Priority used for bookkeeping that must run after all same-instant work.
PRIORITY_LATE = 1000


class Event:
    """A scheduled callback.

    Instances are created by :meth:`repro.sim.engine.Simulator.schedule`;
    user code only cancels them or inspects their state.
    """

    __slots__ = ("when", "priority", "seq", "callback", "args", "label",
                 "_queue", "_cancelled", "_fired")

    def __init__(self, when, priority, seq, callback, args=(), label="",
                 queue=None):
        self.when = when
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.label = label
        self._queue = queue
        self._cancelled = False
        self._fired = False

    @property
    def cancelled(self):
        """Whether :meth:`cancel` was called before the event fired."""
        return self._cancelled

    @property
    def fired(self):
        """Whether the event's callback has already run."""
        return self._fired

    @property
    def pending(self):
        """Whether the event is still waiting to fire."""
        return not (self._cancelled or self._fired)

    def cancel(self):
        """Cancel the event.

        Cancelling an event that already fired or was already cancelled
        raises :class:`EventAlreadyCancelledError`; silently ignoring the
        second cancel would hide lifecycle bugs in the kernel code built on
        top of this queue.
        """
        if self._cancelled or self._fired:
            raise EventAlreadyCancelledError(
                "event %r already %s" %
                (self.label, "cancelled" if self._cancelled else "fired"))
        self._mark_cancelled()

    def cancel_if_pending(self):
        """Cancel the event if it is still pending; return whether it was."""
        if self.pending:
            self._mark_cancelled()
            return True
        return False

    def _mark_cancelled(self):
        self._cancelled = True
        if self._queue is not None:
            self._queue._live -= 1

    def _sort_key(self):
        return (self.when, self.priority, self.seq)

    def __lt__(self, other):
        # Not used by the queue (the heap compares tuples); kept so
        # explicitly sorting Event collections in tests keeps working.
        return (self.when, self.priority, self.seq) < \
            (other.when, other.priority, other.seq)

    def __repr__(self):
        state = ("cancelled" if self._cancelled
                 else "fired" if self._fired else "pending")
        return "Event(t=%d, prio=%d, label=%r, %s)" % (
            self.when, self.priority, self.label, state)


class EventQueue:
    """Min-heap of ``(when, priority, seq, event)`` tuples, lazy deletion.

    Cancelled events stay in the heap and are skipped on pop; this is the
    standard O(log n) cancellation strategy and keeps `cancel` cheap for
    the very frequent "cancel pending preemption/completion" pattern in the
    RT kernel.
    """

    __slots__ = ("_heap", "_seq", "_live", "_epoch")

    def __init__(self):
        self._heap = []
        self._seq = 0
        self._live = 0
        # Bumped by clear(); lets an in-flight run() window detect a
        # reset and discard its drained-but-unfired backlog.
        self._epoch = 0

    def __len__(self):
        return self._live

    def __bool__(self):
        return self._live > 0

    def push(self, when, callback, args=(), priority=PRIORITY_NORMAL,
             label=""):
        """Create, enqueue and return a new :class:`Event`."""
        seq = self._seq
        self._seq = seq + 1
        event = Event(when, priority, seq, callback, args, label,
                      queue=self)
        heappush(self._heap, (when, priority, seq, event))
        self._live += 1
        return event

    def push_batch(self, entries):
        """Enqueue many ``(when, callback, args, priority, label)`` rows.

        Returns the created events in input order.  Batching amortizes the
        attribute lookups of :meth:`push`; bulk schedule paths (fleet
        construction, fault plans) use it to keep per-event setup cost off
        the measured window.
        """
        heap = self._heap
        seq = self._seq
        events = []
        append = events.append
        for when, callback, args, priority, label in entries:
            event = Event(when, priority, seq, callback, args, label,
                          queue=self)
            heappush(heap, (when, priority, seq, event))
            seq += 1
            append(event)
        self._seq = seq
        self._live += len(events)
        return events

    def pop(self):
        """Remove and return the earliest live event.

        Returns ``None`` when the queue holds no live events.
        """
        heap = self._heap
        while heap:
            event = heappop(heap)[3]
            if event._cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self):
        """Return the timestamp of the earliest live event, or ``None``."""
        heap = self._heap
        while heap and heap[0][3]._cancelled:
            heappop(heap)
        if heap:
            return heap[0][0]
        return None

    def clear(self):
        """Drop every event (used for simulator reset)."""
        for entry in self._heap:
            entry[3]._queue = None
        self._heap.clear()
        self._live = 0
        self._epoch += 1
