"""Streaming statistics.

The paper's Table 1 reports AVERAGE, AVEDEV, MIN and MAX of scheduling
latency.  AVEDEV is the Excel-style *mean absolute deviation from the
mean*, which cannot be computed in one streaming pass; the benchmarks
therefore collect full sample series (:class:`SampleSeries`) for latency,
while long-running kernel counters use the cheap :class:`RunningStats`.
"""

import math


class RunningStats:
    """Single-pass mean/variance/min/max via Welford's algorithm."""

    __slots__ = ("count", "mean", "_m2", "minimum", "maximum")

    def __init__(self):
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value):
        """Fold one sample into the statistics."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def variance(self):
        """Population variance (0.0 until two samples arrive)."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def stdev(self):
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other):
        """Fold another :class:`RunningStats` into this one (Chan merge)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def __repr__(self):
        return ("RunningStats(n=%d, mean=%.2f, stdev=%.2f, min=%s, max=%s)"
                % (self.count, self.mean, self.stdev, self.minimum,
                   self.maximum))


class SampleSeries:
    """A stored sample series with the Table-1 summary statistics."""

    def __init__(self, values=()):
        self._values = list(values)

    def add(self, value):
        """Append one sample."""
        self._values.append(value)

    def extend(self, values):
        """Append many samples."""
        self._values.extend(values)

    def clear(self):
        """Drop all samples (start a fresh measurement window)."""
        self._values.clear()

    def __len__(self):
        return len(self._values)

    def __iter__(self):
        return iter(self._values)

    @property
    def values(self):
        """The raw samples, in arrival order (a copy)."""
        return list(self._values)

    @property
    def average(self):
        """Arithmetic mean (``nan`` when empty)."""
        if not self._values:
            return math.nan
        return sum(self._values) / len(self._values)

    @property
    def avedev(self):
        """Mean absolute deviation from the mean -- the paper's AVEDEV."""
        if not self._values:
            return math.nan
        mean = self.average
        return sum(abs(v - mean) for v in self._values) / len(self._values)

    @property
    def minimum(self):
        """Smallest sample (``nan`` when empty)."""
        return min(self._values) if self._values else math.nan

    @property
    def maximum(self):
        """Largest sample (``nan`` when empty)."""
        return max(self._values) if self._values else math.nan

    @property
    def stdev(self):
        """Population standard deviation."""
        if len(self._values) < 2:
            return 0.0
        mean = self.average
        return math.sqrt(
            sum((v - mean) ** 2 for v in self._values) / len(self._values))

    def percentile(self, q):
        """Linear-interpolated percentile, ``q`` in ``[0, 100]``."""
        if not self._values:
            return math.nan
        if not 0 <= q <= 100:
            raise ValueError("percentile out of range: %r" % (q,))
        ordered = sorted(self._values)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return ordered[low]
        frac = rank - low
        return ordered[low] * (1.0 - frac) + ordered[high] * frac

    def summary(self):
        """Return the Table-1 row: average / avedev / min / max."""
        return {
            "average": self.average,
            "avedev": self.avedev,
            "min": self.minimum,
            "max": self.maximum,
            "count": len(self._values),
        }


def summarize(values):
    """Shorthand: build a series from ``values`` and return its summary."""
    return SampleSeries(values).summary()
