"""Exceptions raised by the simulation core."""


class SimulationError(Exception):
    """Base class for all simulation-core errors."""


class SchedulingInPastError(SimulationError):
    """An event was scheduled at a time earlier than the current sim time."""

    def __init__(self, now, when):
        super().__init__(
            "cannot schedule event at t=%d ns: current time is t=%d ns"
            % (when, now)
        )
        self.now = now
        self.when = when


class EventAlreadyCancelledError(SimulationError):
    """A cancelled event was cancelled or rescheduled a second time."""


class SimulationLimitError(SimulationError):
    """The simulator hit its configured safety limit on processed events."""
