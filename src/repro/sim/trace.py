"""Structured trace recording.

The kernel, the DRCR runtime and the benchmarks all append typed records
to a :class:`TraceRecorder`.  Tests assert on exact record sequences
(for example the admit/deactivate order of the paper's section 4.3
dynamicity scenario), so records are plain, comparable data.
"""


class TraceRecord:
    """One trace record: a timestamp, a category, and free-form fields."""

    __slots__ = ("time", "category", "fields")

    def __init__(self, time, category, **fields):
        self.time = time
        self.category = category
        self.fields = fields

    def __getattr__(self, name):
        try:
            return self.fields[name]
        except KeyError:
            raise AttributeError(name) from None

    def __eq__(self, other):
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return (self.time == other.time
                and self.category == other.category
                and self.fields == other.fields)

    def __repr__(self):
        parts = ", ".join(
            "%s=%r" % (key, value) for key, value in self.fields.items())
        return "TraceRecord(t=%d, %s, %s)" % (self.time, self.category,
                                              parts)


class TraceRecorder:
    """Append-only list of :class:`TraceRecord` with category filters."""

    def __init__(self):
        self._records = []
        self._enabled = True

    def __len__(self):
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    @property
    def enabled(self):
        """Whether :meth:`record` currently stores anything."""
        return self._enabled

    def disable(self):
        """Stop recording (records already stored are kept)."""
        self._enabled = False

    def enable(self):
        """Resume recording."""
        self._enabled = True

    def record(self, time, category, **fields):
        """Append one record (no-op while disabled)."""
        if self._enabled:
            self._records.append(TraceRecord(time, category, **fields))

    def by_category(self, category):
        """Return all records with the given category, in order."""
        return [r for r in self._records if r.category == category]

    def categories(self):
        """Return the set of categories seen so far."""
        return {r.category for r in self._records}

    def last(self, category=None):
        """Return the most recent record (optionally of a category)."""
        if category is None:
            return self._records[-1] if self._records else None
        for record in reversed(self._records):
            if record.category == category:
                return record
        return None

    def clear(self):
        """Drop all stored records."""
        self._records.clear()
