"""The discrete-event simulator.

Time is an integer number of **nanoseconds** throughout the repository;
this matches the resolution RTAI reports scheduling latency in (the paper's
Table 1 is in nanoseconds) and avoids floating-point drift in long runs.

Performance notes (see docs/PERFORMANCE.md)
-------------------------------------------
:meth:`Simulator.run` drains events as a **sorted run**: at window
start the whole backlog is lifted out of the queue and sorted once
(Timsort over C-compared tuples), then consumed by a plain cursor --
O(1) per event instead of an O(log n) ``heappop`` against a large
heap.  Events scheduled *during* the window land in a fresh (small)
side heap; each iteration takes whichever of cursor-head and heap-head
is earlier with a single tuple comparison, so the fired order is
identical to the seed's pop-per-event order -- ``seq`` strictly
increases, ties resolve FIFO.  The loop also folds the per-event
``sim.events_total`` increment into one batched add per run window.
The scheduling entry points (:meth:`schedule`, :meth:`schedule_at`,
:meth:`schedule_interrupt`, :meth:`call_soon`) delegate to one shared
``_push`` that builds the heap entry and the :class:`Event` record
inline -- two frames per scheduled event where the seed chained
through ``schedule_at`` + ``EventQueue.push`` + ``Event.__init__``.
:meth:`step` keeps the original one-event-at-a-time contract for
callers that need it; both paths fire events in the identical
``(time, priority, seq)`` order.
"""

from heapq import heapify as _heapify
from heapq import heappop as _heappop
from heapq import heappush as _heappush

from repro.sim.errors import SchedulingInPastError, SimulationLimitError
from repro.sim.events import (
    PRIORITY_INTERRUPT,
    PRIORITY_LATE,
    PRIORITY_NORMAL,
    Event,
    EventQueue,
)

_new_event = Event.__new__
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceRecorder
from repro.telemetry.metrics import Telemetry

#: One microsecond / millisecond / second in simulation ticks.
USEC = 1000
MSEC = 1000 * USEC
SEC = 1000 * MSEC


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for the named random streams.  Two simulators built
        with the same seed and fed the same schedule produce identical
        traces.
    max_events:
        Safety valve: :meth:`run` raises :class:`SimulationLimitError`
        after this many events, catching accidental infinite loops in
        kernel code (a stuck periodic timer, for instance).
    telemetry:
        The platform-wide :class:`~repro.telemetry.metrics.Telemetry`.
        The simulator owns it (every other subsystem reaches it via
        ``sim.telemetry``); pass ``Telemetry(enabled=False)`` to turn
        all metric collection off.
    """

    def __init__(self, seed=0, max_events=50_000_000, telemetry=None):
        self._now = 0
        self._queue = EventQueue()
        self._rng = RandomStreams(seed)
        self._trace = TraceRecorder()
        self._max_events = max_events
        self._processed = 0
        self._running = False
        self._telemetry = telemetry if telemetry is not None \
            else Telemetry()
        registry = self._telemetry.registry("sim")
        self._m_events = registry.counter("events_total")
        self._m_windows = registry.counter("run_windows_total")
        self._m_pending = registry.gauge("pending_events")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def now(self):
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def rng(self):
        """The simulator's :class:`~repro.sim.rng.RandomStreams`."""
        return self._rng

    @property
    def trace(self):
        """The simulator's :class:`~repro.sim.trace.TraceRecorder`."""
        return self._trace

    @property
    def telemetry(self):
        """The platform-wide :class:`~repro.telemetry.metrics.Telemetry`."""
        return self._telemetry

    @property
    def pending_events(self):
        """Number of live (not cancelled, not fired) events."""
        return len(self._queue)

    @property
    def processed_events(self):
        """Number of events whose callbacks have run so far."""
        return self._processed

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    # Each entry point builds its heap entry inline (single frame, no
    # ``push`` delegation) -- see the module performance notes.
    def _push(self, when, priority, callback, args, label):
        queue = self._queue
        seq = queue._seq
        queue._seq = seq + 1
        event = _new_event(Event)
        event.when = when
        event.priority = priority
        event.seq = seq
        event.callback = callback
        event.args = args
        event.label = label
        event._queue = queue
        event._cancelled = False
        event._fired = False
        _heappush(queue._heap, (when, priority, seq, event))
        queue._live += 1
        return event

    def schedule(self, delay, callback, *args, priority=PRIORITY_NORMAL,
                 label=""):
        """Schedule ``callback(*args)`` to run ``delay`` ns from now."""
        when = self._now + delay
        if when < self._now:
            raise SchedulingInPastError(self._now, when)
        return self._push(when, priority, callback, args, label)

    def schedule_at(self, when, callback, *args, priority=PRIORITY_NORMAL,
                    label=""):
        """Schedule ``callback(*args)`` at absolute time ``when`` ns."""
        if when < self._now:
            raise SchedulingInPastError(self._now, when)
        return self._push(when, priority, callback, args, label)

    def schedule_interrupt(self, when, callback, *args, label=""):
        """Schedule a hardware-priority event at absolute time ``when``."""
        if when < self._now:
            raise SchedulingInPastError(self._now, when)
        return self._push(when, PRIORITY_INTERRUPT, callback, args, label)

    def call_soon(self, callback, *args, label=""):
        """Run ``callback`` at the current instant, after pending
        same-instant events of lower or equal priority already queued."""
        return self._push(self._now, PRIORITY_LATE, callback, args, label)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self):
        """Fire the single earliest event.

        Returns ``True`` if an event fired, ``False`` if the queue was
        empty.
        """
        event = self._queue.pop()
        if event is None:
            return False
        self._now = event.when
        event._fired = True
        self._processed += 1
        self._m_events.inc()
        if self._processed > self._max_events:
            raise SimulationLimitError(
                "exceeded max_events=%d at t=%d ns" %
                (self._max_events, self._now))
        event.callback(*event.args)
        return True

    def run(self, until=None):
        """Run until the queue drains or time reaches ``until`` (ns).

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fires earlier, so back-to-back ``run``
        windows tile the timeline seamlessly.
        """
        self._running = True
        self._m_windows.inc()
        # Hot loop: sorted-run drain (module performance notes).  The
        # backlog is sorted once and consumed by cursor; events pushed
        # during the window go to a fresh side heap and are merged in
        # order with one tuple comparison per event.  Heap entries are
        # (when, priority, seq, event) tuples -- see repro.sim.events.
        queue = self._queue
        epoch = queue._epoch
        backlog = queue._heap
        backlog.sort()
        queue._heap = heap = []
        cursor = 0
        n_backlog = len(backlog)
        heappop = _heappop
        bound = float("inf") if until is None else until
        max_events = self._max_events
        fired = 0
        try:
            while self._running:
                if cursor < n_backlog:
                    entry = backlog[cursor]
                    if heap and heap[0] < entry:
                        entry = heap[0]
                        if entry[0] > bound:
                            break
                        heappop(heap)
                    else:
                        if entry[0] > bound:
                            break
                        cursor += 1
                elif heap:
                    entry = heap[0]
                    if entry[0] > bound:
                        break
                    heappop(heap)
                else:
                    break
                event = entry[3]
                if event._cancelled:
                    continue
                queue._live -= 1
                self._now = entry[0]
                event._fired = True
                fired += 1
                self._processed += 1
                if self._processed > max_events:
                    raise SimulationLimitError(
                        "exceeded max_events=%d at t=%d ns" %
                        (max_events, self._now))
                event.callback(*event.args)
        finally:
            self._running = False
            if queue._epoch == epoch:
                # Fold the unfired backlog tail back into the queue.
                if cursor < n_backlog:
                    if cursor:
                        del backlog[:cursor]
                    if heap:
                        backlog.extend(heap)
                        _heapify(backlog)
                    queue._heap = backlog
            else:
                # reset() ran inside a callback: the queue was cleared
                # while we held the backlog, so drop the tail the same
                # way clear() would have.
                for index in range(cursor, n_backlog):
                    backlog[index][3]._queue = None
            if fired:
                self._m_events.inc(fired)
            self._m_pending.set(queue._live)
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def run_for(self, duration):
        """Run for ``duration`` ns of simulated time from now."""
        return self.run(until=self._now + duration)

    def stop(self):
        """Request that a :meth:`run` in progress return after the current
        event (usable from inside event callbacks)."""
        self._running = False

    def reset(self):
        """Drop all pending events and rewind the clock to zero.

        Random streams are *not* reseeded; build a fresh simulator for a
        statistically independent run.
        """
        self._queue.clear()
        self._trace.clear()
        self._now = 0
        self._processed = 0
        self._running = False
        self._m_pending.set(len(self._queue))
