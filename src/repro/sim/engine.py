"""The discrete-event simulator.

Time is an integer number of **nanoseconds** throughout the repository;
this matches the resolution RTAI reports scheduling latency in (the paper's
Table 1 is in nanoseconds) and avoids floating-point drift in long runs.
"""

from repro.sim.errors import SchedulingInPastError, SimulationLimitError
from repro.sim.events import (
    PRIORITY_INTERRUPT,
    PRIORITY_LATE,
    PRIORITY_NORMAL,
    EventQueue,
)
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceRecorder
from repro.telemetry.metrics import Telemetry

#: One microsecond / millisecond / second in simulation ticks.
USEC = 1000
MSEC = 1000 * USEC
SEC = 1000 * MSEC


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for the named random streams.  Two simulators built
        with the same seed and fed the same schedule produce identical
        traces.
    max_events:
        Safety valve: :meth:`run` raises :class:`SimulationLimitError`
        after this many events, catching accidental infinite loops in
        kernel code (a stuck periodic timer, for instance).
    telemetry:
        The platform-wide :class:`~repro.telemetry.metrics.Telemetry`.
        The simulator owns it (every other subsystem reaches it via
        ``sim.telemetry``); pass ``Telemetry(enabled=False)`` to turn
        all metric collection off.
    """

    def __init__(self, seed=0, max_events=50_000_000, telemetry=None):
        self._now = 0
        self._queue = EventQueue()
        self._rng = RandomStreams(seed)
        self._trace = TraceRecorder()
        self._max_events = max_events
        self._processed = 0
        self._running = False
        self._telemetry = telemetry if telemetry is not None \
            else Telemetry()
        registry = self._telemetry.registry("sim")
        self._m_events = registry.counter("events_total")
        self._m_windows = registry.counter("run_windows_total")
        self._m_pending = registry.gauge("pending_events")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def now(self):
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def rng(self):
        """The simulator's :class:`~repro.sim.rng.RandomStreams`."""
        return self._rng

    @property
    def trace(self):
        """The simulator's :class:`~repro.sim.trace.TraceRecorder`."""
        return self._trace

    @property
    def telemetry(self):
        """The platform-wide :class:`~repro.telemetry.metrics.Telemetry`."""
        return self._telemetry

    @property
    def pending_events(self):
        """Number of live (not cancelled, not fired) events."""
        return len(self._queue)

    @property
    def processed_events(self):
        """Number of events whose callbacks have run so far."""
        return self._processed

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay, callback, *args, priority=PRIORITY_NORMAL,
                 label=""):
        """Schedule ``callback(*args)`` to run ``delay`` ns from now."""
        return self.schedule_at(self._now + delay, callback, *args,
                                priority=priority, label=label)

    def schedule_at(self, when, callback, *args, priority=PRIORITY_NORMAL,
                    label=""):
        """Schedule ``callback(*args)`` at absolute time ``when`` ns."""
        if when < self._now:
            raise SchedulingInPastError(self._now, when)
        return self._queue.push(when, callback, args, priority=priority,
                                label=label)

    def schedule_interrupt(self, when, callback, *args, label=""):
        """Schedule a hardware-priority event at absolute time ``when``."""
        return self.schedule_at(when, callback, *args,
                                priority=PRIORITY_INTERRUPT, label=label)

    def call_soon(self, callback, *args, label=""):
        """Run ``callback`` at the current instant, after pending
        same-instant events of lower or equal priority already queued."""
        return self.schedule_at(self._now, callback, *args,
                                priority=PRIORITY_LATE, label=label)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self):
        """Fire the single earliest event.

        Returns ``True`` if an event fired, ``False`` if the queue was
        empty.
        """
        event = self._queue.pop()
        if event is None:
            return False
        self._now = event.when
        event._fired = True
        self._processed += 1
        self._m_events.inc()
        if self._processed > self._max_events:
            raise SimulationLimitError(
                "exceeded max_events=%d at t=%d ns" %
                (self._max_events, self._now))
        event.callback(*event.args)
        return True

    def run(self, until=None):
        """Run until the queue drains or time reaches ``until`` (ns).

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fires earlier, so back-to-back ``run``
        windows tile the timeline seamlessly.
        """
        self._running = True
        self._m_windows.inc()
        try:
            while self._running:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
        finally:
            self._running = False
            self._m_pending.set(len(self._queue))
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def run_for(self, duration):
        """Run for ``duration`` ns of simulated time from now."""
        return self.run(until=self._now + duration)

    def stop(self):
        """Request that a :meth:`run` in progress return after the current
        event (usable from inside event callbacks)."""
        self._running = False

    def reset(self):
        """Drop all pending events and rewind the clock to zero.

        Random streams are *not* reseeded; build a fresh simulator for a
        statistically independent run.
        """
        self._queue.clear()
        self._trace.clear()
        self._now = 0
        self._processed = 0
        self._running = False
        self._m_pending.set(len(self._queue))
