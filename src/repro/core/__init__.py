"""The paper's contribution: the DRCom model and the DRCR runtime.

Public surface:

* :class:`~repro.core.descriptor.ComponentDescriptor` -- parsed DRCom
  XML (section 2.3),
* :class:`~repro.core.drcr.DRCR` -- the runtime (sections 1, 2.2),
* :class:`~repro.core.component.DRComComponent` and the Figure-1
  lifecycle in :mod:`repro.core.lifecycle`,
* the management interface (section 2.4) in
  :mod:`repro.core.management`,
* resolving services and built-in policies in
  :mod:`repro.core.resolving` / :mod:`repro.core.policies`,
* adaptation managers in :mod:`repro.core.adaptation`.
"""

from repro.core.adaptation import (
    AdaptationManager,
    AdaptationRule,
    BudgetOveruseRule,
    ImportanceShedding,
    PropertyTuningRule,
    SuspendOnDeadlineMisses,
)
from repro.core.application import ApplicationDescriptor
from repro.core.component import DRComComponent, LifecycleToken
from repro.core.contracts import RealTimeContract
from repro.core.descriptor import ComponentDescriptor, ComponentProperty
from repro.core.drcr import DRCR, DRCR_SERVICE_INTERFACE
from repro.core.errors import (
    AdmissionError,
    ContractError,
    DescriptorError,
    DRComError,
    DuplicateComponentError,
    LifecycleError,
    NotManagedByDRCRError,
    PortError,
    UnknownComponentError,
)
from repro.core.events import (
    ComponentEvent,
    ComponentEventLog,
    ComponentEventType,
)
from repro.core.lifecycle import (
    INSTANTIATED_STATES,
    TRANSITIONS,
    ComponentState,
    can_transition,
    reachable_states,
)
from repro.core.management import (
    MANAGEMENT_SERVICE_INTERFACE,
    ComponentManagementService,
    RTComponentManagement,
    management_service_properties,
)
from repro.core.policies import (
    AlwaysAcceptPolicy,
    AlwaysRejectPolicy,
    CompositePolicy,
    EDFPolicy,
    LiuLaylandPolicy,
    PriorityBandPolicy,
    ResponseTimeAnalysisPolicy,
    UtilizationBoundPolicy,
)
from repro.core.inspection import system_report
from repro.core.placement import (
    BestFitPlacement,
    FirstFitPlacement,
    PinnedPlacement,
    PlacementService,
)
from repro.core.ports import (
    PORT_DATA_TYPES,
    PortBinding,
    PortDirection,
    PortInterface,
    PortSpec,
)
from repro.core.registry import ComponentRegistry
from repro.core.snapshot import export_state, restore_state
from repro.core.resolving import (
    RESOLVING_SERVICE_INTERFACE,
    Decision,
    GlobalView,
    ResolvingService,
)

__all__ = [
    "AdaptationManager",
    "ApplicationDescriptor",
    "BestFitPlacement",
    "BudgetOveruseRule",
    "AdaptationRule",
    "AdmissionError",
    "AlwaysAcceptPolicy",
    "AlwaysRejectPolicy",
    "can_transition",
    "ComponentDescriptor",
    "ComponentEvent",
    "ComponentEventLog",
    "ComponentEventType",
    "ComponentManagementService",
    "ComponentProperty",
    "ComponentRegistry",
    "ComponentState",
    "CompositePolicy",
    "ContractError",
    "Decision",
    "DescriptorError",
    "DRComComponent",
    "DRComError",
    "DRCR",
    "DRCR_SERVICE_INTERFACE",
    "DuplicateComponentError",
    "EDFPolicy",
    "GlobalView",
    "ImportanceShedding",
    "INSTANTIATED_STATES",
    "LifecycleError",
    "LifecycleToken",
    "LiuLaylandPolicy",
    "MANAGEMENT_SERVICE_INTERFACE",
    "management_service_properties",
    "NotManagedByDRCRError",
    "PortBinding",
    "PortDirection",
    "PortError",
    "PortInterface",
    "FirstFitPlacement",
    "PinnedPlacement",
    "PlacementService",
    "PortSpec",
    "PORT_DATA_TYPES",
    "PriorityBandPolicy",
    "PropertyTuningRule",
    "reachable_states",
    "RealTimeContract",
    "RESOLVING_SERVICE_INTERFACE",
    "ResolvingService",
    "ResponseTimeAnalysisPolicy",
    "RTComponentManagement",
    "SuspendOnDeadlineMisses",
    "export_state",
    "restore_state",
    "system_report",
    "TRANSITIONS",
    "UnknownComponentError",
    "UtilizationBoundPolicy",
]
