"""The DRCom management interface (paper section 2.4).

"Each compatible real-time component is required to implement the
real-time component management interface.  This interface will be
registered as management service by DRCR together with the component's
properties in the service registry of OSGi. ... The current management
interface defines the methods to suspend, resume, get/set properties and
get status of a real-time task."

Note the deliberate omission: "although the component implement the init
and uninit methods, they are not exposed in the component's interface"
-- creation and destruction stay with the DRCR so the global view stays
accurate.  Accordingly, suspend/resume here route *through* the DRCR
(which updates the component's lifecycle state), never straight to the
kernel task.
"""

from repro.core.errors import LifecycleError

#: OSGi service interface the management services register under.
MANAGEMENT_SERVICE_INTERFACE = "drcom.management.RTComponentManagement"


class RTComponentManagement:
    """The abstract management interface (section 2.4).

    Exactly: suspend, resume, get/set property, get status.  No init,
    no uninit.
    """

    def suspend(self):
        """Freeze the component's real-time task (keeps admission)."""
        raise NotImplementedError

    def resume(self):
        """Unfreeze a suspended task."""
        raise NotImplementedError

    def get_property(self, name):
        """Read one component property."""
        raise NotImplementedError

    def set_property(self, name, value):
        """Write one component property (reconfiguration hook)."""
        raise NotImplementedError

    def get_status(self):
        """Status snapshot: lifecycle state, contract, task counters."""
        raise NotImplementedError


class ComponentManagementService(RTComponentManagement):
    """The concrete management service DRCR registers per component."""

    def __init__(self, drcr, component):
        self._drcr = drcr
        self._component = component

    @property
    def component_name(self):
        """The managed component's name."""
        return self._component.name

    def suspend(self):
        """Suspend via the DRCR (lifecycle ACTIVE -> SUSPENDED)."""
        self._drcr.suspend_component(self._component.name)

    def resume(self):
        """Resume via the DRCR (lifecycle SUSPENDED -> ACTIVE)."""
        self._drcr.resume_component(self._component.name)

    def get_property(self, name):
        """Read a property from the live container (falls back to the
        descriptor default when not instantiated)."""
        container = self._component.container
        if container is not None:
            return container.get_property(name)
        return self._component.descriptor.property_value(name)

    def set_property(self, name, value):
        """Write a property on the live container."""
        container = self._component.container
        if container is None:
            raise LifecycleError(
                "component %s is not instantiated; cannot set property"
                % self._component.name)
        container.set_property(name, value)

    def get_status(self):
        """Component snapshot merged with live task statistics."""
        status = self._component.snapshot()
        container = self._component.container
        if container is not None:
            status["task"] = container.get_status()
        return status

    def __repr__(self):
        return "ComponentManagementService(%s)" % self._component.name


def management_service_properties(component):
    """The properties DRCR registers alongside the management service:
    the component's own properties (so "general component's user[s] can
    locate the individual component" by filtering on them) plus
    identity/contract attributes."""
    properties = dict(component.descriptor.property_dict())
    properties.update({
        "drcom.name": component.name,
        "drcom.task": component.descriptor.task_name,
        "drcom.type": component.contract.task_type.value,
        "drcom.cpuusage": component.contract.cpu_usage,
        "drcom.priority": component.contract.priority,
    })
    return properties
