"""DRCR component events.

The DRCR emits one event per lifecycle decision; benchmarks and the
section-4.3 dynamicity scenario assert on exact event sequences.
"""

import enum

from repro.osgi.events import ListenerList


class ComponentEventType(enum.Enum):
    """Kinds of DRCR component events."""

    REGISTERED = "registered"
    ENABLED = "enabled"
    DISABLED = "disabled"
    SATISFIED = "satisfied"
    UNSATISFIED = "unsatisfied"
    ACTIVATED = "activated"
    DEACTIVATED = "deactivated"
    SUSPENDED = "suspended"
    RESUMED = "resumed"
    ADMISSION_REJECTED = "admission_rejected"
    DISPOSED = "disposed"


class ComponentEvent:
    """One DRCR decision about one component."""

    __slots__ = ("time", "event_type", "component", "reason")

    def __init__(self, time, event_type, component, reason=""):
        self.time = time
        self.event_type = event_type
        self.component = component
        self.reason = reason

    def __repr__(self):
        extra = " (%s)" % self.reason if self.reason else ""
        return "ComponentEvent(t=%d, %s, %s%s)" % (
            self.time, self.event_type.value, self.component, extra)


class ComponentEventLog:
    """Append-only event log plus listener fan-out."""

    def __init__(self):
        self._events = []
        self.listeners = ListenerList()

    def emit(self, time, event_type, component, reason=""):
        """Record and deliver one event."""
        event = ComponentEvent(time, event_type, component, reason)
        self._events.append(event)
        self.listeners.deliver(event)
        return event

    def __len__(self):
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def of_type(self, event_type):
        """All events of one type, in order."""
        return [e for e in self._events if e.event_type is event_type]

    def for_component(self, name):
        """All events about one component, in order."""
        return [e for e in self._events if e.component == name]

    def sequence(self, component=None):
        """The (event_type, component) sequence -- what scenario tests
        assert on; optionally filtered to one component."""
        events = self._events if component is None \
            else self.for_component(component)
        return [(e.event_type, e.component) for e in events]

    def clear(self):
        """Drop recorded events (listeners stay subscribed)."""
        self._events.clear()
