"""Built-in resolving services (admission policies).

"This system allows itself to be easily extended with other constraint
resolving policies to fit different context" (abstract) -- these are the
policies shipped in the box, all implementing
:class:`repro.core.resolving.ResolvingService`:

==========================  ==============================================
Policy                      Accepts a candidate when...
==========================  ==============================================
AlwaysAcceptPolicy          always (the no-admission baseline, ablation A1)
AlwaysRejectPolicy          never (fail-closed mode)
UtilizationBoundPolicy      declared cpuusage on its CPU stays <= cap
LiuLaylandPolicy            RM utilization bound holds for the CPU's set
ResponseTimeAnalysisPolicy  exact fixed-priority RTA passes
EDFPolicy                   EDF demand criterion passes
PriorityBandPolicy          contract priority lies within [lo, hi]
CompositePolicy             every child policy accepts
==========================  ==============================================
"""

from repro.analysis import (
    TaskSpec,
    edf_processor_demand_test,
    edf_utilization_test,
    liu_layland_test,
    rta_schedulable,
)
from repro.core.resolving import Decision, ResolvingService


def _periodic_specs(view, cpu, candidate_contract=None):
    """TaskSpecs of admitted periodic contracts on ``cpu`` (+candidate)."""
    contracts = list(view.admitted_contracts(cpu))
    if candidate_contract is not None and candidate_contract.cpu == cpu:
        contracts.append(candidate_contract)
    return [TaskSpec.from_contract(c) for c in contracts
            if c.is_rate_bound]


class AlwaysAcceptPolicy(ResolvingService):
    """Admit everything: the 'no global admission' baseline the paper
    argues against (ad-hoc solutions "lack of accurate global view",
    section 1).  Used by ablation A1."""

    name = "always-accept"

    def admit(self, candidate, view):
        return Decision.yes("admission disabled")


class AlwaysRejectPolicy(ResolvingService):
    """Reject everything (fail-closed maintenance mode)."""

    name = "always-reject"

    def admit(self, candidate, view):
        return Decision.no("admission closed")


class UtilizationBoundPolicy(ResolvingService):
    """Enforce the declared-cpuusage budget per CPU.

    This is the paper's own admission currency: "using [the cpuusage]
    attribute, the component can specify how much CPU it will claim to
    guarantee its real-time characteristics" (section 2.3), with the
    budget "'enforced' by a central scheme rather than by each single
    bundle" (section 2.1).
    """

    name = "utilization-bound"

    def __init__(self, cap=1.0):
        if not 0.0 < cap <= 1.0:
            raise ValueError("cap must be in (0, 1], got %r" % (cap,))
        self.cap = cap

    def admit(self, candidate, view):
        cpu = candidate.contract.cpu
        total = view.declared_utilization(cpu, include_candidate=True)
        if total <= self.cap + 1e-12:
            return Decision.yes(
                "cpu%d utilization %.3f <= cap %.3f"
                % (cpu, total, self.cap))
        return Decision.no(
            "cpu%d utilization %.3f would exceed cap %.3f"
            % (cpu, total, self.cap))

    def revalidate(self, component, view):
        cpu = component.contract.cpu
        total = view.declared_utilization(cpu, include_candidate=False)
        if total <= self.cap + 1e-12:
            return Decision.yes("within cap")
        return Decision.no(
            "cpu%d utilization %.3f exceeds cap %.3f after change"
            % (cpu, total, self.cap))


class LiuLaylandPolicy(ResolvingService):
    """Sufficient rate-monotonic bound on each CPU's periodic set."""

    name = "liu-layland"

    def admit(self, candidate, view):
        if not candidate.contract.is_rate_bound:
            return Decision.yes("aperiodic: no RM bound applies")
        specs = _periodic_specs(view, candidate.contract.cpu,
                                candidate.contract)
        if liu_layland_test(specs):
            return Decision.yes("RM bound holds for %d tasks" % len(specs))
        return Decision.no(
            "RM utilization bound violated with %d tasks" % len(specs))


class ResponseTimeAnalysisPolicy(ResolvingService):
    """Exact fixed-priority response-time analysis per CPU."""

    name = "rm-rta"

    def admit(self, candidate, view):
        if not candidate.contract.is_rate_bound:
            return Decision.yes("aperiodic: RTA not applicable")
        specs = _periodic_specs(view, candidate.contract.cpu,
                                candidate.contract)
        ok, responses = rta_schedulable(specs)
        if ok:
            return Decision.yes("RTA passes for %d tasks" % len(specs))
        failing = sorted(name for name, r in responses.items()
                         if r is None)
        return Decision.no("RTA fails (unbounded response: %s)"
                           % ", ".join(failing) if failing
                           else "RTA fails (deadline overrun)")


class EDFPolicy(ResolvingService):
    """EDF schedulability (utilization test for implicit deadlines,
    demand criterion when any deadline is constrained)."""

    name = "edf"

    def admit(self, candidate, view):
        if not candidate.contract.is_rate_bound:
            return Decision.yes("aperiodic: EDF test not applicable")
        specs = _periodic_specs(view, candidate.contract.cpu,
                                candidate.contract)
        constrained = any(s.deadline_ns < s.period_ns for s in specs)
        if not constrained:
            if edf_utilization_test(specs):
                return Decision.yes("EDF utilization <= 1")
            return Decision.no("EDF utilization exceeds 1")
        ok, violation = edf_processor_demand_test(specs)
        if ok:
            return Decision.yes("EDF demand criterion holds")
        return Decision.no("EDF demand exceeds supply at t=%dns"
                           % violation)


class PriorityBandPolicy(ResolvingService):
    """Only admit contracts whose priority lies in a configured band.

    An example of the *application-specific* constraint resolving the
    paper motivates ("the requirements of real-time applications are
    normally very complex and application specific", section 2.1) --
    e.g. reserving priorities 0-1 for the platform.
    """

    name = "priority-band"

    def __init__(self, lowest_allowed=0, highest_allowed=255):
        if lowest_allowed > highest_allowed:
            raise ValueError("empty priority band")
        self.lowest_allowed = lowest_allowed
        self.highest_allowed = highest_allowed

    def admit(self, candidate, view):
        priority = candidate.contract.priority
        if self.lowest_allowed <= priority <= self.highest_allowed:
            return Decision.yes("priority %d within band [%d, %d]"
                                % (priority, self.lowest_allowed,
                                   self.highest_allowed))
        return Decision.no("priority %d outside band [%d, %d]"
                           % (priority, self.lowest_allowed,
                              self.highest_allowed))


class CompositePolicy(ResolvingService):
    """All child policies must accept (first rejection wins)."""

    name = "composite"

    def __init__(self, policies):
        self.policies = list(policies)
        if not self.policies:
            raise ValueError("composite needs at least one policy")

    def admit(self, candidate, view):
        for policy in self.policies:
            decision = policy.admit(candidate, view)
            if not decision:
                return Decision.no("%s: %s" % (policy.name,
                                               decision.reason))
        return Decision.yes("all %d policies accept" % len(self.policies))

    def revalidate(self, component, view):
        for policy in self.policies:
            decision = policy.revalidate(component, view)
            if not decision:
                return Decision.no("%s: %s" % (policy.name,
                                               decision.reason))
        return Decision.yes("all policies keep admission")
