"""The managed declarative real-time component.

A :class:`DRComComponent` is the DRCR's record of one deployed DRCom:
descriptor + lifecycle state + (when instantiated) the hybrid container
executing it and the port bindings connecting it.  Mutating the
lifecycle requires the DRCR's capability token; everything else is
read-only from outside, enforcing the paper's central-management rule
(section 2.2).
"""

from repro.core.errors import LifecycleError, NotManagedByDRCRError
from repro.core.lifecycle import (
    INSTANTIATED_STATES,
    ComponentState,
    can_transition,
)


class LifecycleToken:
    """Capability object proving the caller is the owning DRCR."""

    __slots__ = ("owner",)

    def __init__(self, owner):
        self.owner = owner


class DRComComponent:
    """One deployed declarative real-time component."""

    def __init__(self, descriptor, bundle, token):
        self.descriptor = descriptor
        self.bundle = bundle
        self._token = token
        #: Back-reference set by the owning ComponentRegistry so state
        #: changes keep its per-state index current.
        self._registry = None
        self._state = ComponentState.INSTALLED
        #: The hybrid container while instantiated, else None.
        self.container = None
        #: PortBindings where this component is the requirer.
        self.bindings = []
        #: OSGi registration of the management service while active.
        self.management_registration = None
        #: Why the component is currently unsatisfied/rejected.
        self.status_reason = ""

    # ------------------------------------------------------------------
    # identity / views
    # ------------------------------------------------------------------
    @property
    def state(self):
        """Current lifecycle state (Figure 1)."""
        return self._state

    @state.setter
    def state(self, value):
        # Every assignment -- _transition or a test shortcut -- funnels
        # through here so the registry's state index never goes stale.
        old = self._state
        self._state = value
        if self._registry is not None and old is not value:
            self._registry._state_changed(self, old, value)

    @property
    def name(self):
        """The component's globally unique name."""
        return self.descriptor.name

    @property
    def contract(self):
        """The component's real-time contract."""
        return self.descriptor.contract

    @property
    def enabled(self):
        """Whether the component may be resolved (not DISABLED)."""
        return self.state not in (ComponentState.DISABLED,
                                  ComponentState.DISPOSED)

    @property
    def is_active(self):
        """Whether the RT task is running under contract."""
        return self.state is ComponentState.ACTIVE

    @property
    def is_instantiated(self):
        """Whether the RT task exists in the kernel at all."""
        return self.state in INSTANTIATED_STATES

    @property
    def provides(self):
        """Outport signatures this component offers when active."""
        return [port.signature() for port in self.descriptor.outports]

    @property
    def requires(self):
        """Inport signatures this component needs to activate."""
        return [port.signature() for port in self.descriptor.inports]

    def bound_providers(self):
        """Names of components currently feeding this one's inports."""
        return sorted({binding.provider for binding in self.bindings})

    def snapshot(self):
        """Plain-data status (used by the management interface)."""
        return {
            "name": self.name,
            "state": self.state.value,
            "bundle": self.bundle.symbolic_name if self.bundle else None,
            "contract": self.contract.as_dict(),
            "properties": self.descriptor.property_dict(),
            "providers": self.bound_providers(),
            "reason": self.status_reason,
        }

    # ------------------------------------------------------------------
    # lifecycle (DRCR-only)
    # ------------------------------------------------------------------
    def _transition(self, token, target, reason=""):
        """Move to ``target``; only the owning DRCR's token is accepted.

        Raises :class:`NotManagedByDRCRError` for a foreign/missing
        token and :class:`LifecycleError` for an illegal edge.
        """
        if token is not self._token:
            raise NotManagedByDRCRError(
                "component %s lifecycle is owned by its DRCR; direct "
                "transitions are not allowed" % self.name)
        if not can_transition(self.state, target):
            raise LifecycleError(
                "illegal transition %s -> %s for component %s"
                % (self.state.value, target.value, self.name))
        self.state = target
        self.status_reason = reason

    def __repr__(self):
        return "DRComComponent(%s, %s)" % (self.name, self.state.value)
