"""Adaptation managers (paper sections 2.4, 5).

"General or application specific adaptation managers can monitor the
tasks status and adjust the parameter or even change the application
structure according to current available resources and system
requirements."  An adaptation manager is a *client* of the management
services DRCR registers: it discovers them through the OSGi registry,
polls their status, and acts through the same narrow interface
(suspend / resume / set_property) -- it holds no private channel into
the kernel, which is the whole point of the design.
"""

from repro.core.management import MANAGEMENT_SERVICE_INTERFACE
from repro.osgi.tracker import ServiceTracker


class AdaptationRule:
    """One monitor-and-react rule.

    Subclasses implement :meth:`apply`, returning a short action string
    when they acted and ``None`` otherwise.
    """

    #: Rule name for the adaptation log.
    name = "rule"

    def apply(self, status, management, manager):
        """Inspect ``status`` (the management service's get_status
        snapshot) and optionally act through ``management``."""
        raise NotImplementedError


class SuspendOnDeadlineMisses(AdaptationRule):
    """Suspend a component once its task misses too many deadlines.

    The blunt but safe reaction: a component violating its own contract
    is frozen (its admission is retained) until an operator or another
    rule resumes it.
    """

    name = "suspend-on-misses"

    def __init__(self, max_misses=10):
        self.max_misses = max_misses

    def apply(self, status, management, manager):
        task = status.get("task")
        if task is None or status.get("state") != "active":
            return None
        misses = task.get("stats", {}).get("deadline_misses", 0)
        if misses > self.max_misses:
            management.suspend()
            return "suspended %s (%d deadline misses)" % (
                status["name"], misses)
        return None


class PropertyTuningRule(AdaptationRule):
    """Set a property when a predicate on the status holds.

    The "adjust the parameter" form of adaptation: e.g. lower a camera's
    resolution property when its task overruns.
    """

    name = "property-tuning"

    def __init__(self, predicate, property_name, new_value, once=True):
        self.predicate = predicate
        self.property_name = property_name
        self.new_value = new_value
        self.once = once
        self._applied = set()

    def apply(self, status, management, manager):
        name = status["name"]
        if self.once and name in self._applied:
            return None
        if status.get("state") != "active":
            return None
        if not self.predicate(status):
            return None
        management.set_property(self.property_name, self.new_value)
        self._applied.add(name)
        return "set %s.%s = %r" % (name, self.property_name,
                                   self.new_value)


class BudgetOveruseRule(AdaptationRule):
    """Suspend components that exceed their *declared* CPU budget.

    Admission trusts the descriptor's ``cpuusage`` claim; this rule
    closes the loop at run time -- "the resource budget should be
    'enforced' by a central scheme rather than by each single bundle"
    (section 2.1).  A component whose measured utilisation exceeds its
    declared claim by more than ``tolerance`` (relative) for at least
    ``min_cpu_time_ns`` of accumulated run time is suspended.
    """

    name = "budget-enforcement"

    def __init__(self, tolerance=0.25, min_cpu_time_ns=10_000_000):
        self.tolerance = tolerance
        self.min_cpu_time_ns = min_cpu_time_ns

    def apply(self, status, management, manager):
        if status.get("state") != "active":
            return None
        task = status.get("task")
        if task is None:
            return None
        cpu_time = task.get("stats", {}).get("cpu_time_ns", 0)
        if cpu_time < self.min_cpu_time_ns:
            return None
        declared = status.get("contract", {}).get("cpuusage", 1.0)
        measured = task.get("measured_utilization")
        if measured is None:
            return None
        if measured > declared * (1.0 + self.tolerance) + 1e-9:
            management.suspend()
            return ("suspended %s (measured %.1f%% > declared %.1f%%)"
                    % (status["name"], measured * 100, declared * 100))
        return None


class ImportanceShedding(AdaptationRule):
    """Suspend the least-important active component under pressure.

    Components declare an ``importance`` property (higher = more
    important).  When the predicate reports system pressure (for
    example, any deadline miss in the set), the active component with
    the lowest importance is suspended -- "change the application
    structure according to current available resources".
    """

    name = "importance-shedding"

    def __init__(self, pressure_predicate):
        self.pressure_predicate = pressure_predicate

    def apply(self, status, management, manager):
        # Evaluated once per poll via the manager (not per component).
        return None

    def shed(self, manager):
        """Called by the manager once per poll."""
        statuses = manager.statuses()
        if not self.pressure_predicate(statuses):
            return None
        victims = sorted(
            (s for s in statuses if s.get("state") == "active"),
            key=lambda s: (manager.importance_of(s), s["name"]))
        for victim in victims:
            manager.management_for(victim["name"]).suspend()
            return "shed %s (importance %s)" % (
                victim["name"], manager.importance_of(victim))
        return None


class AdaptationManager:
    """Polls every registered management service and applies rules."""

    def __init__(self, framework, rules=()):
        self.framework = framework
        self.rules = list(rules)
        self.log = []
        self._tracker = ServiceTracker(
            framework, clazz=MANAGEMENT_SERVICE_INTERFACE)
        self._tracker.open()
        self._poll_event = None
        self._poll_sim = None
        self._poll_period_ns = None

    def close(self):
        """Stop tracking management services and any periodic polling."""
        self.stop_periodic_polling()
        self._tracker.close()

    # ------------------------------------------------------------------
    # simulated-time polling (the manager as a Linux-side activity)
    # ------------------------------------------------------------------
    def start_periodic_polling(self, sim, period_ns):
        """Run :meth:`poll` every ``period_ns`` of *simulated* time.

        This is how the paper's adaptation managers actually live: as
        ordinary (non-RT) activities inside the running system, not as
        test code between simulation windows.
        """
        if period_ns <= 0:
            raise ValueError("poll period must be positive")
        self.stop_periodic_polling()
        self._poll_sim = sim
        self._poll_period_ns = int(period_ns)
        self._arm_poll()

    def stop_periodic_polling(self):
        """Cancel periodic polling (no-op when not armed)."""
        if self._poll_event is not None:
            self._poll_event.cancel_if_pending()
            self._poll_event = None
        self._poll_sim = None
        self._poll_period_ns = None

    def _arm_poll(self):
        self._poll_event = self._poll_sim.schedule(
            self._poll_period_ns, self._on_poll_tick,
            label="adaptation-poll")

    def _on_poll_tick(self):
        self._poll_event = None
        sim = self._poll_sim
        self.poll()
        # poll() may have triggered stop_periodic_polling via a rule.
        if self._poll_sim is sim and self._poll_event is None:
            self._arm_poll()

    # ------------------------------------------------------------------
    def services(self):
        """Currently discovered management services."""
        return self._tracker.get_services()

    def statuses(self):
        """Fresh status snapshots from every management service."""
        return [service.get_status() for service in self.services()]

    def management_for(self, component_name):
        """The management service of one component (None on miss)."""
        for service in self.services():
            if service.component_name == component_name:
                return service
        return None

    @staticmethod
    def importance_of(status):
        """A component's declared ``importance`` property (default 0)."""
        return status.get("properties", {}).get("importance", 0)

    # ------------------------------------------------------------------
    def poll(self):
        """One adaptation cycle; returns the actions taken."""
        actions = []
        for service in self.services():
            status = service.get_status()
            for rule in self.rules:
                action = rule.apply(status, service, self)
                if action:
                    actions.append((rule.name, action))
        for rule in self.rules:
            shed = getattr(rule, "shed", None)
            if shed is not None:
                action = shed(self)
                if action:
                    actions.append((rule.name, action))
        self.log.extend(actions)
        return actions
