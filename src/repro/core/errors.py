"""Exceptions raised by the DRCom/DRCR core."""


class DRComError(Exception):
    """Base class for all core-layer errors."""


class DescriptorError(DRComError):
    """A DRCom XML descriptor is malformed or inconsistent."""


class PortError(DRComError):
    """A port specification or binding is invalid."""


class ContractError(DRComError):
    """A real-time contract is invalid (bad cpuusage, frequency...)."""


class LifecycleError(DRComError):
    """An illegal component lifecycle transition was attempted."""


class NotManagedByDRCRError(LifecycleError):
    """Code other than the DRCR tried to drive a component's lifecycle.

    The paper is explicit that bypassing the runtime loses the global
    view: "allowing each component to be created or destroyed by its own
    proprietary interfaces/methods, the system would lose track of the
    deployed components' state" (section 2.2).
    """


class DuplicateComponentError(DRComError):
    """A component with that (globally unique) name already exists."""


class UnknownComponentError(DRComError):
    """Lookup of a component by name failed."""


class AdmissionError(DRComError):
    """Admission control rejected an activation."""
