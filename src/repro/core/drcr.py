"""The Declarative Real-time Component Runtime (DRCR).

The paper's central contribution (sections 1, 2.2): a runtime service
that

* parses DRCom descriptors when bundles arrive ("the DRCR service will
  automatically parse its real-time component configuration and store
  these data into its internal registry"),
* owns every component lifecycle transition ("component configurations
  are activated and deactivated under the full control of DRCR which
  holds the global view of all real-time components"),
* resolves **functional constraints** (inports must have an active,
  port-compatible provider) and **non-functional constraints** (the
  internal resolving service *and* every customized resolving service
  registered in OSGi must accept -- "when both services return positive
  results ... the DRCR will create and activate the component
  instance", section 4.3),
* reacts to run-time departure ("if component Calcuation is stopped, the
  DRCR gets notified about this event and consults its ... resolving
  service[s] again to check for possible unsatisfied component
  instances"), cascading deactivation to dependents without touching the
  contracts of unaffected components,
* registers a management service per component (section 2.4).

Because components arrive and depart *during operation* (section 1),
resolution cost is a steady-state tax.  Reconfiguration is therefore
**incremental**: every lifecycle event seeds a *dirty set* of component
names, and each fixpoint pass visits only the dirty components,
propagating along the registry's port-dependency graph (a departure
dirties its waiting consumers and the components its freed budget could
admit; an activation dirties its waiting consumers).  A full sweep of
the global view stays reachable -- :meth:`DRCR.reconfigure` (used for
out-of-band context changes such as a lowered degradation cap),
resolver arrival/departure, and the ``--full-reconfigure`` CLI flag all
force one -- and ``incremental = False`` restores the historical
sweep-everything behavior wholesale.  :meth:`DRCR.batch` coalesces
event storms (bundle deploys, fleet rollouts) into a single
reconfiguration round.
"""

from contextlib import contextmanager

from repro.core.component import DRComComponent, LifecycleToken
from repro.core.descriptor import ComponentDescriptor
from repro.core.errors import DescriptorError, LifecycleError
from repro.core.events import ComponentEventLog, ComponentEventType
from repro.core.lifecycle import ComponentState, state_metric_name
from repro.core.management import (
    MANAGEMENT_SERVICE_INTERFACE,
    ComponentManagementService,
    management_service_properties,
)
from repro.core.policies import UtilizationBoundPolicy
from repro.core.ports import PortBinding
from repro.core.registry import ComponentRegistry
from repro.core.resolving import (
    RESOLVING_SERVICE_INTERFACE,
    Decision,
    GlobalView,
)
from repro.osgi.events import BundleEventType
from repro.osgi.tracker import ServiceTracker

#: OSGi service interface the DRCR registers itself under.
DRCR_SERVICE_INTERFACE = "drcom.drcr.DeclarativeRTComponentRuntime"

#: Safety cap on reconfiguration fixpoint iterations.
_MAX_RECONFIGURE_PASSES = 100


class DRCR:
    """The runtime.  One instance per (framework, kernel) pair.

    Parameters
    ----------
    framework:
        The :class:`repro.osgi.Framework` to attach to.
    kernel:
        The :class:`repro.rtos.RTKernel` real-time substrate.
    internal_policy:
        The internal resolving service (default:
        :class:`~repro.core.policies.UtilizationBoundPolicy` with cap
        1.0 -- the declared-cpuusage budget of section 2.3).
    container_factory:
        ``factory(component, drcr) -> container``; defaults to the
        hybrid split container of :mod:`repro.hybrid`.
    """

    def __init__(self, framework, kernel, internal_policy=None,
                 container_factory=None, placement_service=None):
        self.framework = framework
        self.kernel = kernel
        self.registry = ComponentRegistry()
        self.events = ComponentEventLog()
        self.internal_policy = internal_policy or UtilizationBoundPolicy()
        #: Optional :class:`~repro.core.placement.PlacementService`
        #: consulted before admission to re-pin candidates to a CPU.
        self.placement_service = placement_service
        if container_factory is None:
            from repro.hybrid.container import default_container_factory
            container_factory = default_container_factory
        self._container_factory = container_factory
        #: Optional :class:`~repro.faults.recovery.QuarantinePolicy`.
        #: When set, a faulting component is automatically re-enabled
        #: after the cool-down (until ``max_failures``); when None the
        #: quarantine is permanent until an operator intervenes.
        self.recovery_policy = None
        #: Optional hook ``(xml_text, bundle, path) -> xml_text``
        #: applied to RT-Component resources before parsing (the
        #: fault-injection subsystem's descriptor-corruption seam).
        self.descriptor_filter = None
        self._token = LifecycleToken(self)
        self._reconfiguring = False
        #: Incremental (dirty-set) reconfiguration.  ``False`` restores
        #: the historical full-sweep-per-event behavior
        #: (``--full-reconfigure`` on the CLI).
        self.incremental = True
        #: Completed reconfiguration rounds (mirrors the
        #: ``drcr.reconfigurations_total`` counter; plain attribute so
        #: tests can assert coalescing without telemetry enabled).
        self.reconfigurations = 0
        # Dirty-set bookkeeping: names touched by events that arrive
        # while a round is running fold into the running fixpoint.
        self._pending_dirty = set()
        self._pending_full = False
        # Components whose activation *attempt* crashed (as opposed to
        # being vetoed).  A full sweep retried them on any later event;
        # incremental rounds merge them into the first pass to match.
        self._retry_failed = set()
        # Batch bookkeeping: while a batch() is open, events accumulate
        # here instead of triggering a round each.
        self._batch_depth = 0
        self._batch_dirty = set()
        self._batch_full = False
        self._attached = False
        self._registration = None
        self._applications = {}
        self._resolving_tracker = ServiceTracker(
            framework, clazz=RESOLVING_SERVICE_INTERFACE,
            on_added=self._on_resolving_service_change,
            on_removed=self._on_resolving_service_change)
        # Telemetry instruments (no-ops when telemetry is disabled).
        self._metrics = kernel.sim.telemetry.registry("drcr")
        self._m_reconfigurations = self._metrics.counter(
            "reconfigurations_total")
        self._m_passes = self._metrics.counter(
            "reconfiguration_passes_total")
        self._m_admissions = self._metrics.counter("admissions_total")
        self._m_rejections = self._metrics.counter(
            "admission_rejections_total")
        self._m_revocations = self._metrics.counter(
            "admissions_revoked_total")
        self._m_quarantines = self._metrics.counter("quarantines_total")
        self._m_readmissions = self._metrics.counter(
            "quarantine_readmissions_total")
        self._m_quarantine_permanent = self._metrics.counter(
            "quarantine_permanent_total")
        self._m_descriptor_errors = self._metrics.counter(
            "descriptor_errors_total")
        self._m_resolver_errors = self._metrics.counter(
            "resolving_service_errors_total")
        self._m_deactivation_errors = self._metrics.counter(
            "deactivation_errors_total")
        self._m_dirty_set_size = self._metrics.gauge("dirty_set_size")
        self._m_components_skipped = self._metrics.counter(
            "components_skipped_total")
        self._m_full_passes = self._metrics.counter(
            "full_sweep_passes_total")
        self._state_gauges = {
            state: self._metrics.gauge(state_metric_name(state))
            for state in ComponentState
        }

    # ------------------------------------------------------------------
    # attachment to the OSGi framework
    # ------------------------------------------------------------------
    def attach(self):
        """Start operating: subscribe to bundle events, publish the DRCR
        service, and deploy components from already-active bundles."""
        if self._attached:
            return
        self._attached = True
        self.framework.bundle_listeners.add(self._on_bundle_event)
        self.kernel.on_task_fault = self._on_task_fault
        self._resolving_tracker.open()
        self._registration = self.framework.registry.register(
            DRCR_SERVICE_INTERFACE, self)
        for bundle in self.framework.get_bundles():
            if bundle.is_active:
                self._deploy_bundle(bundle)

    def detach(self):
        """Stop operating: dispose every component, unsubscribe."""
        if not self._attached:
            return
        for component in list(self.registry.all()):
            self._dispose(component, "DRCR detaching")
        self.framework.bundle_listeners.remove(self._on_bundle_event)
        if self.kernel.on_task_fault is self._on_task_fault:
            self.kernel.on_task_fault = None
        self._resolving_tracker.close()
        if self._registration is not None \
                and not self._registration.unregistered:
            self._registration.unregister()
        self._registration = None
        self._attached = False
        # Everything is disposed; pending dirt refers to nothing now.
        self._pending_dirty = set()
        self._pending_full = False
        self._batch_dirty = set()
        self._batch_full = False

    def _on_bundle_event(self, event):
        if event.event_type is BundleEventType.STARTED:
            self._deploy_bundle(event.bundle)
        elif event.event_type is BundleEventType.STOPPING:
            self._undeploy_bundle(event.bundle)

    def _on_task_fault(self, task, error):
        """A component implementation raised inside its RT task.

        The component is quarantined to DISABLED; its dependents
        cascade to UNSATISFIED and the freed budget is redistributed --
        the rest of the system keeps its contracts.  Without a
        :attr:`recovery_policy` the quarantine is permanent until an
        operator calls ``enableRTComponent``; with one, re-admission is
        scheduled after the cool-down (see :meth:`_quarantine`).
        """
        component = self.registry.by_task_name(task.name)
        if component is None or not component.is_instantiated:
            return
        reason = "implementation fault: %r" % (error,)
        if self.recovery_policy is not None:
            self._quarantine(component, reason)
        else:
            self._deactivate(component, ComponentState.DISABLED, reason)
            self._emit(ComponentEventType.DISABLED, component, reason)
        # _deactivate already seeded the dirty set (dependents, freed
        # budget); run the round over it.
        self._reconfigure(dirty=())

    def set_recovery_policy(self, policy):
        """Install (or clear, with ``None``) the quarantine policy."""
        self.recovery_policy = policy

    def _quarantine(self, component, reason):
        """Quarantine a faulting component under the recovery policy:
        DISABLED now, automatic re-enable after the cool-down, until
        the component exhausts ``max_failures``."""
        policy = self.recovery_policy
        failures = policy.record_failure(component.name)
        if policy.is_permanent(component.name):
            self._m_quarantine_permanent.inc()
            full_reason = ("%s; quarantined permanently after %d "
                           "faults" % (reason, failures))
            self._deactivate(component, ComponentState.DISABLED,
                             full_reason)
            self._emit(ComponentEventType.DISABLED, component,
                       full_reason)
            self.kernel.sim.trace.record(
                self.kernel.now, "quarantine", component=component.name,
                failures=failures, permanent=True)
            return
        self._m_quarantines.inc()
        full_reason = ("%s; quarantined (fault %d/%d), re-admission in "
                       "%d ns" % (reason, failures, policy.max_failures,
                                  policy.cooldown_ns))
        self._deactivate(component, ComponentState.DISABLED, full_reason)
        self._emit(ComponentEventType.DISABLED, component, full_reason)
        self.kernel.sim.trace.record(
            self.kernel.now, "quarantine", component=component.name,
            failures=failures, permanent=False,
            cooldown_ns=policy.cooldown_ns)
        self.kernel.sim.schedule(
            policy.cooldown_ns, self._release_quarantine, component.name,
            label="quarantine:%s" % component.name)

    def _release_quarantine(self, name):
        """Cool-down expired: re-enable the component (if it is still
        deployed, still DISABLED, and an operator has not intervened)."""
        component = self.registry.maybe_get(name)
        if component is None \
                or component.state is not ComponentState.DISABLED:
            return
        self._m_readmissions.inc()
        self.kernel.sim.trace.record(
            self.kernel.now, "quarantine_release", component=name)
        component._transition(self._token, ComponentState.UNSATISFIED,
                              "quarantine cool-down expired")
        self._emit(ComponentEventType.ENABLED, component,
                   "quarantine cool-down expired")
        self._reconfigure(dirty={name})

    def _on_resolving_service_change(self, reference, service):
        # A customized resolving service arrived or departed: it may
        # veto (or stop vetoing) *any* component, so both the pending
        # and the admitted sets need a full sweep.
        self._reconfigure()

    # ------------------------------------------------------------------
    # deployment
    # ------------------------------------------------------------------
    def _deploy_bundle(self, bundle):
        # One reconfiguration round per bundle, not per component.
        with self.batch():
            for path in bundle.manifest.rt_components:
                xml_text = self._require_resource(bundle, path,
                                                  "RT-Component")
                if self.descriptor_filter is not None:
                    xml_text = self.descriptor_filter(xml_text, bundle,
                                                      path)
                try:
                    descriptor = ComponentDescriptor.from_xml(xml_text)
                except DescriptorError as error:
                    # A corrupt descriptor must not take down the rest
                    # of the bundle (or the platform): count it, trace
                    # it, keep deploying the healthy components.
                    self._m_descriptor_errors.inc()
                    self.kernel.sim.trace.record(
                        self.kernel.now, "descriptor_error",
                        bundle=bundle.symbolic_name, path=path,
                        error=str(error))
                    continue
                self.register_component(descriptor, bundle)
        # Applications run outside the component batch: their all-or-
        # nothing check needs members actually activated.
        for path in bundle.manifest.rt_applications:
            from repro.core.application import ApplicationDescriptor
            xml_text = self._require_resource(bundle, path,
                                              "RT-Application")
            application = ApplicationDescriptor.from_xml(xml_text)
            self.register_application(application, bundle)

    @staticmethod
    def _require_resource(bundle, path, header):
        xml_text = bundle.get_resource(path)
        if xml_text is None:
            raise DescriptorError(
                "bundle %s declares %s %r but the resource is missing"
                % (bundle.symbolic_name, header, path))
        return xml_text

    def _undeploy_bundle(self, bundle):
        with self.batch():
            for component in self.registry.of_bundle(bundle):
                self._dispose(
                    component,
                    "bundle %s stopping" % bundle.symbolic_name)
            # Applications whose members are all gone are forgotten.
            for name, members in list(self._applications.items()):
                if not any(member in self.registry
                           for member in members):
                    del self._applications[name]

    def register_component(self, descriptor, bundle=None):
        """Deploy one component from a parsed descriptor.

        This is the programmatic path; bundle deployment funnels here.
        Returns the managed :class:`DRComComponent`.
        """
        component = DRComComponent(descriptor, bundle, self._token)
        self.registry.add(component)
        self._emit(ComponentEventType.REGISTERED, component)
        if descriptor.enabled:
            component._transition(self._token, ComponentState.UNSATISFIED,
                                  "awaiting resolution")
        else:
            component._transition(self._token, ComponentState.DISABLED,
                                  'descriptor enabled="false"')
            self._emit(ComponentEventType.DISABLED, component,
                       "disabled by descriptor")
        self._reconfigure(dirty={component.name})
        return component

    def unregister_component(self, name):
        """Undeploy one component by name (programmatic path)."""
        component = self.registry.get(name)
        self._dispose(component, "unregistered")
        self._reconfigure(dirty=())

    # ------------------------------------------------------------------
    # applications (grouped, atomic deployment)
    # ------------------------------------------------------------------
    def register_application(self, application, bundle=None):
        """Deploy an application atomically: all components activate or
        none stay deployed.

        Returns the list of managed components on success; raises
        :class:`~repro.core.errors.AdmissionError` (after rolling every
        member back out) when any member fails to activate.
        """
        from repro.core.errors import AdmissionError
        if self._batch_depth:
            raise LifecycleError(
                "register_application cannot run inside an open "
                "drcr.batch(): its all-or-nothing check needs members "
                "activated before it returns")
        deployed = []
        try:
            with self.batch():
                for descriptor in application.components:
                    deployed.append(
                        self.register_component(descriptor, bundle))
        except Exception:
            for component in deployed:
                self._dispose(component, "application rollback")
            self._reconfigure(dirty=())
            raise
        failures = {
            component.name: component.status_reason
            for component in deployed
            if component.state is not ComponentState.ACTIVE
        }
        if failures:
            for component in deployed:
                self._dispose(
                    component,
                    "application %s rolled back" % application.name)
            self._reconfigure(dirty=())
            raise AdmissionError(
                "application %s not admitted: %s"
                % (application.name,
                   "; ".join("%s (%s)" % item
                             for item in sorted(failures.items()))))
        self._applications[application.name] = \
            application.component_names()
        return deployed

    def unregister_application(self, name):
        """Undeploy every member of a previously registered
        application."""
        members = self._applications.pop(name, None)
        if members is None:
            raise LifecycleError("no application named %r" % (name,))
        for member in members:
            component = self.registry.maybe_get(member)
            if component is not None:
                self._dispose(component,
                              "application %s undeployed" % name)
        self._reconfigure(dirty=())

    def define_application(self, name, members):
        """Record an application grouping without the atomic-deployment
        path: ``name`` groups the ``members`` component names as
        intent.

        This is the public write API for callers that re-establish
        groupings from exported state -- snapshot restore
        (:func:`repro.core.snapshot.restore_state`) and cluster
        failover -- where the members deploy through their own
        admission decisions and the grouping is bookkeeping, not an
        all-or-nothing transaction (that is
        :meth:`register_application`).  Members need not be deployed
        yet.  Returns the recorded member list.
        """
        if not name:
            raise LifecycleError("application name must be non-empty")
        members = [str(member) for member in members]
        self._applications[name] = members
        return list(members)

    def applications(self):
        """Deployed applications: name -> member component names."""
        return {name: list(members)
                for name, members in self._applications.items()}

    # ------------------------------------------------------------------
    # management operations (section 2.4, routed via the DRCR)
    # ------------------------------------------------------------------
    def enable_component(self, name):
        """``enableRTComponent``: allow a disabled component to resolve."""
        component = self.registry.get(name)
        if component.state is not ComponentState.DISABLED:
            raise LifecycleError("component %s is not disabled" % name)
        component._transition(self._token, ComponentState.UNSATISFIED,
                              "enabled")
        self._emit(ComponentEventType.ENABLED, component)
        self._reconfigure(dirty={component.name})

    def disable_component(self, name):
        """``disableRTComponent``: deactivate (if needed) and hold."""
        component = self.registry.get(name)
        if component.state is ComponentState.DISABLED:
            return
        if component.is_instantiated:
            self._deactivate(component, ComponentState.DISABLED,
                             "disabled by management")
        else:
            component._transition(self._token, ComponentState.DISABLED,
                                  "disabled by management")
        self._emit(ComponentEventType.DISABLED, component)
        self._reconfigure(dirty=())

    def suspend_component(self, name):
        """Suspend an active component's RT task (admission retained)."""
        component = self.registry.get(name)
        if component.state is not ComponentState.ACTIVE:
            raise LifecycleError(
                "component %s is %s; only ACTIVE components can be "
                "suspended" % (name, component.state.value))
        component.container.suspend()
        component._transition(self._token, ComponentState.SUSPENDED,
                              "suspended by management")
        self._emit(ComponentEventType.SUSPENDED, component)

    def resume_component(self, name):
        """Resume a suspended component's RT task."""
        component = self.registry.get(name)
        if component.state is not ComponentState.SUSPENDED:
            raise LifecycleError(
                "component %s is %s; only SUSPENDED components can be "
                "resumed" % (name, component.state.value))
        component.container.resume()
        component._transition(self._token, ComponentState.ACTIVE,
                              "resumed by management")
        self._emit(ComponentEventType.RESUMED, component)

    def set_internal_policy(self, policy):
        """Swap the internal resolving service and reconfigure."""
        self.internal_policy = policy
        self._reconfigure()

    def reconfigure(self, full=True):
        """Trigger a reconfiguration round explicitly.

        Management path for out-of-band context changes the DRCR cannot
        observe itself -- for example after lowering a
        :class:`~repro.faults.recovery.GracefulDegradationService`
        cap at run time.  Such changes can affect *any* admitted
        component, so the round defaults to a full sweep; pass
        ``full=False`` for a cheap drain of any pending dirty set.
        """
        if full:
            self._reconfigure()
        else:
            self._reconfigure(dirty=())

    @contextmanager
    def batch(self):
        """Coalesce an event storm into one reconfiguration round.

        While the (re-entrant) context is open, lifecycle events that
        would each trigger a round -- ``register_component``, bundle
        deploy/undeploy, ``unregister_component`` -- only accumulate
        their dirty sets.  The outermost exit runs a single round over
        the union.  Bundle deployment uses this internally; fleet-scale
        callers (see :func:`repro.workloads.deploy_component_set`)
        should too.
        """
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0:
                full = self._batch_full
                dirty = self._batch_dirty
                self._batch_full = False
                self._batch_dirty = set()
                if full:
                    self._reconfigure()
                else:
                    self._reconfigure(dirty=dirty)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def component(self, name):
        """The managed component named ``name``."""
        return self.registry.get(name)

    def component_state(self, name):
        """Shorthand: the lifecycle state of ``name``."""
        return self.registry.get(name).state

    def global_view(self, candidate=None):
        """A :class:`GlobalView` snapshot (used by policies/tests)."""
        return GlobalView(self.registry, self.kernel, candidate)

    def customized_resolving_services(self):
        """Currently registered customized resolving services."""
        return self._resolving_tracker.get_services() \
            if self._attached else []

    # ==================================================================
    # the constraint-resolution engine
    # ==================================================================
    def _reconfigure(self, dirty=None, full=None):
        """Drive the configuration to a fixpoint.

        ``dirty`` is the set of component names the triggering event
        touched; ``None`` (or ``full=True``, or ``incremental=False``)
        means a full sweep of the global view.  Each pass (1)
        revalidates admitted components against the resolving services,
        deactivating any that lost their admission, then (2) tries to
        activate unsatisfied components -- but an incremental pass only
        visits the dirty components, and the changes it makes seed the
        next pass's dirty set (activation dirties waiting consumers;
        departure dirties dependents and budget-starved peers).
        Re-entrant triggers (events raised during a pass) and open
        :meth:`batch` contexts fold into the running/pending round.
        """
        if full is None:
            full = dirty is None
        if not self.incremental:
            full = True
        if self._reconfiguring:
            # Event raised mid-pass: fold into the running fixpoint.
            if full:
                self._pending_full = True
            elif dirty:
                self._pending_dirty.update(dirty)
            return
        if self._batch_depth:
            if full:
                self._batch_full = True
            elif dirty:
                self._batch_dirty.update(dirty)
            return
        self._reconfiguring = True
        self.reconfigurations += 1
        self._m_reconfigurations.inc()
        if full:
            self._pending_full = True
        elif dirty:
            self._pending_dirty.update(dirty)
        if self._retry_failed:
            self._pending_dirty.update(self._retry_failed)
            self._retry_failed.clear()
        try:
            for _ in range(_MAX_RECONFIGURE_PASSES):
                full_pass = self._pending_full
                work = self._pending_dirty
                self._pending_full = False
                self._pending_dirty = set()
                if not full_pass and not work:
                    return
                if full_pass:
                    targets = None
                    self._m_full_passes.inc()
                    self._m_dirty_set_size.set(len(self.registry))
                else:
                    targets = work
                    self._m_dirty_set_size.set(len(work))
                    self._m_components_skipped.inc(
                        max(0, len(self.registry) - len(work)))
                self._m_passes.inc()
                # One view per pass; the candidate slot is re-pointed
                # per consultation.
                view = GlobalView(self.registry, self.kernel, None)
                changed = self._revalidate_pass(view, targets)
                changed = self._activation_pass(view, targets) or changed
                if full_pass and changed:
                    # The classic fixpoint rule: a changed full sweep
                    # re-sweeps until quiescent.
                    self._pending_full = True
            raise LifecycleError(
                "reconfiguration did not converge in %d passes; a "
                "resolving service is oscillating"
                % _MAX_RECONFIGURE_PASSES)
        finally:
            self._reconfiguring = False
            self._pending_full = False
            self._pending_dirty = set()
            self._refresh_state_gauges()

    def _refresh_state_gauges(self):
        """Publish the per-state component population (Figure-1 view)
        in a single pass over the state index."""
        counts = self.registry.state_counts()
        for state, gauge in self._state_gauges.items():
            gauge.set(counts[state])

    def _revalidate_pass(self, view, targets=None):
        if targets is None:
            candidates = self.registry.active()
        else:
            candidates = self.registry.select(
                targets, ComponentState.ACTIVE, ComponentState.SUSPENDED)
        changed = False
        for component in candidates:
            if component.state not in (ComponentState.ACTIVE,
                                       ComponentState.SUSPENDED):
                continue  # deactivated by an earlier cascade this pass
            view.candidate = component
            decision = self._consult_revalidate(component, view)
            if not decision:
                self._m_revocations.inc()
                self._deactivate(component, ComponentState.UNSATISFIED,
                                 "admission revoked: %s" % decision.reason)
                self._emit(ComponentEventType.UNSATISFIED, component,
                           decision.reason)
                changed = True
        return changed

    def _activation_pass(self, view, targets=None):
        if targets is None:
            candidates = self.registry.unsatisfied()
        else:
            candidates = self.registry.select(
                targets, ComponentState.UNSATISFIED)
        changed = False
        for component in candidates:
            if component.state is not ComponentState.UNSATISFIED:
                continue
            if self._try_activate(component, view):
                changed = True
        return changed

    def _mark_departure_dirty(self, component):
        """Seed the dirty set with everything a departure can affect:
        waiting consumers of the departed provider (their status
        refreshes) and every waiting component (the freed budget may
        admit them -- the unsatisfied population is exactly what a full
        sweep's activation pass would visit)."""
        for peer in self.registry.unsatisfied():
            self._pending_dirty.add(peer.name)

    def _mark_activation_dirty(self, component):
        """Seed the dirty set after an activation: the newcomer itself
        (the next pass revalidates it, exactly like a full sweep would)
        and its waiting consumers (its outports may satisfy them)."""
        self._pending_dirty.add(component.name)
        for consumer in self.registry.consumers_of(
                component, states=(ComponentState.UNSATISFIED,)):
            self._pending_dirty.add(consumer.name)

    def _try_activate(self, component, view=None):
        """One admission + activation attempt.  Returns True on
        activation."""
        # -- functional constraints (port wiring) ----------------------
        bindings = self._resolve_ports(component)
        if bindings is None:
            return False
        # -- placement (optional re-pin before admission) ----------------
        if view is None:
            view = GlobalView(self.registry, self.kernel, component)
        view.candidate = component
        self._apply_placement(component, view)
        # -- non-functional constraints (resolving services) ------------
        decision = self._consult_admit(component, view)
        if not decision:
            self._m_rejections.inc()
            # Emit only when the rejection reason changes, so a
            # permanently rejected component does not flood the event
            # log on every reconfiguration pass.
            if component.status_reason != decision.reason:
                component.status_reason = decision.reason
                self._emit(ComponentEventType.ADMISSION_REJECTED,
                           component, decision.reason)
            return False
        # -- activation --------------------------------------------------
        component._transition(self._token, ComponentState.SATISFIED,
                              decision.reason)
        self._emit(ComponentEventType.SATISFIED, component,
                   decision.reason)
        component._transition(self._token, ComponentState.ACTIVATING)
        try:
            container = self._container_factory(component, self)
            container.activate(bindings)
        except Exception as error:
            component.container = None
            component.bindings = []
            component._transition(self._token, ComponentState.UNSATISFIED,
                                  "activation failed: %s" % error)
            self._emit(ComponentEventType.UNSATISFIED, component,
                       "activation failed: %s" % error)
            self._retry_failed.add(component.name)
            return False
        component.container = container
        component.bindings = bindings
        self.registry.note_wired(component)
        component._transition(self._token, ComponentState.ACTIVE)
        self._register_management(component)
        self._emit(ComponentEventType.ACTIVATED, component)
        self._mark_activation_dirty(component)
        return True

    def _resolve_ports(self, component):
        """Find an admitted provider for every inport.

        Returns the bindings, or ``None`` (with status_reason set) when
        a dependency is missing.  Deterministic choice: the earliest-
        registered active provider.
        """
        bindings = []
        for inport in component.descriptor.inports:
            providers = self.registry.providers_of(inport)
            if not providers:
                component.status_reason = (
                    "no active provider for inport %s" % inport.name)
                return None
            provider, outport = providers[0]
            bindings.append(PortBinding(
                component.name, inport, provider.name, outport,
                kernel_object=outport.name))
        return bindings

    def _apply_placement(self, component, view):
        """Let the placement service re-pin the candidate's CPU."""
        from repro.core.placement import component_is_pinned
        if self.placement_service is None:
            return
        if component_is_pinned(component):
            return
        cpu = self.placement_service.place(component, view)
        if cpu is None or cpu == component.contract.cpu:
            return
        if cpu < 0 or cpu >= self.kernel.config.num_cpus:
            raise LifecycleError(
                "placement service chose invalid CPU %r for %s"
                % (cpu, component.name))
        self._trace_placement(component, cpu)
        component.contract.cpu = cpu

    def _trace_placement(self, component, cpu):
        self.kernel.sim.trace.record(
            self.kernel.now, "placement", component=component.name,
            cpu=cpu, policy=self.placement_service.name)

    def set_placement_service(self, service):
        """Swap the placement service and reconfigure."""
        self.placement_service = service
        self._reconfigure()

    def _consult_admit(self, component, view):
        try:
            decision = self.internal_policy.admit(component, view)
        except Exception as error:  # noqa: BLE001 -- fail safe
            return self._resolver_failure(self.internal_policy, "admit",
                                          error)
        if not decision:
            self._count_rejection(self.internal_policy)
            return Decision.no("internal %s: %s"
                               % (self.internal_policy.name,
                                  decision.reason))
        for service in self.customized_resolving_services():
            try:
                decision = service.admit(component, view)
            except Exception as error:  # noqa: BLE001 -- fail safe
                return self._resolver_failure(service, "admit", error)
            if not decision:
                self._count_rejection(service)
                return Decision.no("customized %s: %s"
                                   % (service.name, decision.reason))
        self._m_admissions.inc()
        return Decision.yes("admitted")

    def _resolver_failure(self, service, phase, error):
        """A resolving service raised.  Admission **fails safe** (the
        error counts as a veto: an unresponsive resolver must not wave
        components through); revalidation **fails open** (the caller
        keeps already-admitted components admitted: a broken resolver
        must not evict healthy contract holders)."""
        name = str(getattr(service, "name", "anonymous"))
        self._m_resolver_errors.inc()
        if phase == "admit":
            # Attribute the veto (keeps the documented invariant:
            # sum(rejected_by.*) == admission_rejections_total).
            self._count_rejection(service)
        self.kernel.sim.trace.record(
            self.kernel.now, "resolver_error", service=name,
            phase=phase, error=repr(error))
        return Decision.no("resolving service %s failed during %s: %r"
                           % (name, phase, error))

    def _count_rejection(self, service):
        """Attribute one admission veto to the rejecting service."""
        if hasattr(service, "metric_name"):
            label = service.metric_name()
        else:  # duck-typed service objects registered in OSGi
            label = str(getattr(service, "name", "anonymous"))
        self._metrics.counter("rejected_by.%s" % label).inc()

    def _consult_revalidate(self, component, view):
        try:
            decision = self.internal_policy.revalidate(component, view)
        except Exception as error:  # noqa: BLE001 -- fail open
            self._resolver_failure(self.internal_policy, "revalidate",
                                   error)
            decision = Decision.yes("revalidation errored; admission "
                                    "retained")
        if not decision:
            return decision
        for service in self.customized_resolving_services():
            try:
                decision = service.revalidate(component, view)
            except Exception as error:  # noqa: BLE001 -- fail open
                self._resolver_failure(service, "revalidate", error)
                continue
            if not decision:
                return decision
        return Decision.yes("still admitted")

    # ------------------------------------------------------------------
    # deactivation / disposal
    # ------------------------------------------------------------------
    def _deactivate(self, component, target_state, reason):
        """Tear an instantiated component down to ``target_state``,
        cascading to dependents first (they become UNSATISFIED)."""
        if not component.is_instantiated:
            raise LifecycleError(
                "component %s is not instantiated" % component.name)
        for dependent in self.registry.dependents_of(component):
            self._deactivate(dependent, ComponentState.UNSATISFIED,
                             "provider %s departed" % component.name)
            self._emit(ComponentEventType.UNSATISFIED, dependent,
                       "provider %s departed" % component.name)
        component._transition(self._token, ComponentState.DEACTIVATING,
                              reason)
        self._unregister_management(component)
        if component.container is not None:
            try:
                component.container.deactivate()
            except Exception as error:  # noqa: BLE001 -- force teardown
                # A raising container must not wedge the lifecycle in
                # DEACTIVATING: reclaim the kernel resources ourselves
                # so the contract budget is really freed.
                self._m_deactivation_errors.inc()
                self.kernel.sim.trace.record(
                    self.kernel.now, "deactivation_error",
                    component=component.name, error=repr(error))
                self._force_teardown(component)
        self.registry.note_unwired(component)
        component.container = None
        component.bindings = []
        component._transition(self._token, target_state, reason)
        self._emit(ComponentEventType.DEACTIVATED, component, reason)
        # Seed the next incremental pass: the departed component (if it
        # is re-resolvable) is now in the unsatisfied population the
        # marker dirties.
        self._mark_departure_dirty(component)

    def _force_teardown(self, component):
        """Last-resort reclamation after ``container.deactivate``
        raised: delete the RT task and close the bridge directly so
        nothing keeps occupying the kernel."""
        task_name = component.descriptor.task_name
        if self.kernel.exists(task_name):
            try:
                self.kernel.delete_task(self.kernel.lookup(task_name))
            except Exception:  # noqa: BLE001 -- best effort
                pass
        bridge = getattr(component.container, "bridge", None)
        if bridge is not None:
            try:
                bridge.close()
            except Exception:  # noqa: BLE001 -- best effort
                pass

    def _dispose(self, component, reason):
        if component.state is ComponentState.DISPOSED:
            return
        if component.is_instantiated:
            self._deactivate(component, ComponentState.DISPOSED, reason)
        else:
            component._transition(self._token, ComponentState.DISPOSED,
                                  reason)
        self.registry.remove(component)
        self._retry_failed.discard(component.name)
        self._emit(ComponentEventType.DISPOSED, component, reason)

    # ------------------------------------------------------------------
    # management service plumbing
    # ------------------------------------------------------------------
    def _register_management(self, component):
        service = ComponentManagementService(self, component)
        component.management_registration = \
            self.framework.registry.register(
                MANAGEMENT_SERVICE_INTERFACE, service,
                management_service_properties(component),
                bundle=component.bundle)

    def _unregister_management(self, component):
        registration = component.management_registration
        if registration is not None and not registration.unregistered:
            registration.unregister()
        component.management_registration = None

    def _emit(self, event_type, component, reason=""):
        self._metrics.counter("events_%s_total" % event_type.value).inc()
        self.events.emit(self.kernel.now, event_type, component.name,
                         reason)

    def __repr__(self):
        return "DRCR(%d components, policy=%s)" % (
            len(self.registry), self.internal_policy.name)
