"""The Declarative Real-time Component Runtime (DRCR).

The paper's central contribution (sections 1, 2.2): a runtime service
that

* parses DRCom descriptors when bundles arrive ("the DRCR service will
  automatically parse its real-time component configuration and store
  these data into its internal registry"),
* owns every component lifecycle transition ("component configurations
  are activated and deactivated under the full control of DRCR which
  holds the global view of all real-time components"),
* resolves **functional constraints** (inports must have an active,
  port-compatible provider) and **non-functional constraints** (the
  internal resolving service *and* every customized resolving service
  registered in OSGi must accept -- "when both services return positive
  results ... the DRCR will create and activate the component
  instance", section 4.3),
* reacts to run-time departure ("if component Calcuation is stopped, the
  DRCR gets notified about this event and consults its ... resolving
  service[s] again to check for possible unsatisfied component
  instances"), cascading deactivation to dependents without touching the
  contracts of unaffected components,
* registers a management service per component (section 2.4).
"""

from repro.core.component import DRComComponent, LifecycleToken
from repro.core.descriptor import ComponentDescriptor
from repro.core.errors import DescriptorError, LifecycleError
from repro.core.events import ComponentEventLog, ComponentEventType
from repro.core.lifecycle import ComponentState, state_metric_name
from repro.core.management import (
    MANAGEMENT_SERVICE_INTERFACE,
    ComponentManagementService,
    management_service_properties,
)
from repro.core.policies import UtilizationBoundPolicy
from repro.core.ports import PortBinding
from repro.core.registry import ComponentRegistry
from repro.core.resolving import (
    RESOLVING_SERVICE_INTERFACE,
    Decision,
    GlobalView,
)
from repro.osgi.events import BundleEventType
from repro.osgi.tracker import ServiceTracker

#: OSGi service interface the DRCR registers itself under.
DRCR_SERVICE_INTERFACE = "drcom.drcr.DeclarativeRTComponentRuntime"

#: Safety cap on reconfiguration fixpoint iterations.
_MAX_RECONFIGURE_PASSES = 100


class DRCR:
    """The runtime.  One instance per (framework, kernel) pair.

    Parameters
    ----------
    framework:
        The :class:`repro.osgi.Framework` to attach to.
    kernel:
        The :class:`repro.rtos.RTKernel` real-time substrate.
    internal_policy:
        The internal resolving service (default:
        :class:`~repro.core.policies.UtilizationBoundPolicy` with cap
        1.0 -- the declared-cpuusage budget of section 2.3).
    container_factory:
        ``factory(component, drcr) -> container``; defaults to the
        hybrid split container of :mod:`repro.hybrid`.
    """

    def __init__(self, framework, kernel, internal_policy=None,
                 container_factory=None, placement_service=None):
        self.framework = framework
        self.kernel = kernel
        self.registry = ComponentRegistry()
        self.events = ComponentEventLog()
        self.internal_policy = internal_policy or UtilizationBoundPolicy()
        #: Optional :class:`~repro.core.placement.PlacementService`
        #: consulted before admission to re-pin candidates to a CPU.
        self.placement_service = placement_service
        if container_factory is None:
            from repro.hybrid.container import default_container_factory
            container_factory = default_container_factory
        self._container_factory = container_factory
        self._token = LifecycleToken(self)
        self._reconfiguring = False
        self._dirty = False
        self._attached = False
        self._registration = None
        self._applications = {}
        self._resolving_tracker = ServiceTracker(
            framework, clazz=RESOLVING_SERVICE_INTERFACE,
            on_added=self._on_resolving_service_change,
            on_removed=self._on_resolving_service_change)
        # Telemetry instruments (no-ops when telemetry is disabled).
        self._metrics = kernel.sim.telemetry.registry("drcr")
        self._m_reconfigurations = self._metrics.counter(
            "reconfigurations_total")
        self._m_passes = self._metrics.counter(
            "reconfiguration_passes_total")
        self._m_admissions = self._metrics.counter("admissions_total")
        self._m_rejections = self._metrics.counter(
            "admission_rejections_total")
        self._m_revocations = self._metrics.counter(
            "admissions_revoked_total")
        self._state_gauges = {
            state: self._metrics.gauge(state_metric_name(state))
            for state in ComponentState
        }

    # ------------------------------------------------------------------
    # attachment to the OSGi framework
    # ------------------------------------------------------------------
    def attach(self):
        """Start operating: subscribe to bundle events, publish the DRCR
        service, and deploy components from already-active bundles."""
        if self._attached:
            return
        self._attached = True
        self.framework.bundle_listeners.add(self._on_bundle_event)
        self.kernel.on_task_fault = self._on_task_fault
        self._resolving_tracker.open()
        self._registration = self.framework.registry.register(
            DRCR_SERVICE_INTERFACE, self)
        for bundle in self.framework.get_bundles():
            if bundle.is_active:
                self._deploy_bundle(bundle)

    def detach(self):
        """Stop operating: dispose every component, unsubscribe."""
        if not self._attached:
            return
        for component in list(self.registry.all()):
            self._dispose(component, "DRCR detaching")
        self.framework.bundle_listeners.remove(self._on_bundle_event)
        if self.kernel.on_task_fault is self._on_task_fault:
            self.kernel.on_task_fault = None
        self._resolving_tracker.close()
        if self._registration is not None \
                and not self._registration.unregistered:
            self._registration.unregister()
        self._registration = None
        self._attached = False

    def _on_bundle_event(self, event):
        if event.event_type is BundleEventType.STARTED:
            self._deploy_bundle(event.bundle)
        elif event.event_type is BundleEventType.STOPPING:
            self._undeploy_bundle(event.bundle)

    def _on_task_fault(self, task, error):
        """A component implementation raised inside its RT task.

        The component is quarantined to DISABLED (it will not be
        re-admitted until an operator calls ``enableRTComponent``);
        its dependents cascade to UNSATISFIED and the freed budget is
        redistributed -- the rest of the system keeps its contracts.
        """
        for component in self.registry.all():
            if component.descriptor.task_name == task.name \
                    and component.is_instantiated:
                reason = "implementation fault: %r" % (error,)
                self._deactivate(component, ComponentState.DISABLED,
                                 reason)
                self._emit(ComponentEventType.DISABLED, component,
                           reason)
                self._reconfigure()
                return

    def _on_resolving_service_change(self, reference, service):
        # A customized resolving service arrived or departed: both the
        # pending and the admitted sets may be affected.
        self._reconfigure()

    # ------------------------------------------------------------------
    # deployment
    # ------------------------------------------------------------------
    def _deploy_bundle(self, bundle):
        for path in bundle.manifest.rt_components:
            xml_text = self._require_resource(bundle, path,
                                              "RT-Component")
            descriptor = ComponentDescriptor.from_xml(xml_text)
            self.register_component(descriptor, bundle)
        for path in bundle.manifest.rt_applications:
            from repro.core.application import ApplicationDescriptor
            xml_text = self._require_resource(bundle, path,
                                              "RT-Application")
            application = ApplicationDescriptor.from_xml(xml_text)
            self.register_application(application, bundle)

    @staticmethod
    def _require_resource(bundle, path, header):
        xml_text = bundle.get_resource(path)
        if xml_text is None:
            raise DescriptorError(
                "bundle %s declares %s %r but the resource is missing"
                % (bundle.symbolic_name, header, path))
        return xml_text

    def _undeploy_bundle(self, bundle):
        for component in self.registry.of_bundle(bundle):
            self._dispose(component,
                          "bundle %s stopping" % bundle.symbolic_name)
        # Applications whose members are all gone are forgotten.
        for name, members in list(self._applications.items()):
            if not any(member in self.registry for member in members):
                del self._applications[name]
        self._reconfigure()

    def register_component(self, descriptor, bundle=None):
        """Deploy one component from a parsed descriptor.

        This is the programmatic path; bundle deployment funnels here.
        Returns the managed :class:`DRComComponent`.
        """
        component = DRComComponent(descriptor, bundle, self._token)
        self.registry.add(component)
        self._emit(ComponentEventType.REGISTERED, component)
        if descriptor.enabled:
            component._transition(self._token, ComponentState.UNSATISFIED,
                                  "awaiting resolution")
        else:
            component._transition(self._token, ComponentState.DISABLED,
                                  'descriptor enabled="false"')
            self._emit(ComponentEventType.DISABLED, component,
                       "disabled by descriptor")
        self._reconfigure()
        return component

    def unregister_component(self, name):
        """Undeploy one component by name (programmatic path)."""
        component = self.registry.get(name)
        self._dispose(component, "unregistered")
        self._reconfigure()

    # ------------------------------------------------------------------
    # applications (grouped, atomic deployment)
    # ------------------------------------------------------------------
    def register_application(self, application, bundle=None):
        """Deploy an application atomically: all components activate or
        none stay deployed.

        Returns the list of managed components on success; raises
        :class:`~repro.core.errors.AdmissionError` (after rolling every
        member back out) when any member fails to activate.
        """
        from repro.core.errors import AdmissionError
        deployed = []
        try:
            for descriptor in application.components:
                deployed.append(
                    self.register_component(descriptor, bundle))
        except Exception:
            for component in deployed:
                self._dispose(component, "application rollback")
            self._reconfigure()
            raise
        failures = {
            component.name: component.status_reason
            for component in deployed
            if component.state is not ComponentState.ACTIVE
        }
        if failures:
            for component in deployed:
                self._dispose(
                    component,
                    "application %s rolled back" % application.name)
            self._reconfigure()
            raise AdmissionError(
                "application %s not admitted: %s"
                % (application.name,
                   "; ".join("%s (%s)" % item
                             for item in sorted(failures.items()))))
        self._applications[application.name] = \
            application.component_names()
        return deployed

    def unregister_application(self, name):
        """Undeploy every member of a previously registered
        application."""
        members = self._applications.pop(name, None)
        if members is None:
            raise LifecycleError("no application named %r" % (name,))
        for member in members:
            component = self.registry.maybe_get(member)
            if component is not None:
                self._dispose(component,
                              "application %s undeployed" % name)
        self._reconfigure()

    def applications(self):
        """Deployed applications: name -> member component names."""
        return {name: list(members)
                for name, members in self._applications.items()}

    # ------------------------------------------------------------------
    # management operations (section 2.4, routed via the DRCR)
    # ------------------------------------------------------------------
    def enable_component(self, name):
        """``enableRTComponent``: allow a disabled component to resolve."""
        component = self.registry.get(name)
        if component.state is not ComponentState.DISABLED:
            raise LifecycleError("component %s is not disabled" % name)
        component._transition(self._token, ComponentState.UNSATISFIED,
                              "enabled")
        self._emit(ComponentEventType.ENABLED, component)
        self._reconfigure()

    def disable_component(self, name):
        """``disableRTComponent``: deactivate (if needed) and hold."""
        component = self.registry.get(name)
        if component.state is ComponentState.DISABLED:
            return
        if component.is_instantiated:
            self._deactivate(component, ComponentState.DISABLED,
                             "disabled by management")
        else:
            component._transition(self._token, ComponentState.DISABLED,
                                  "disabled by management")
        self._emit(ComponentEventType.DISABLED, component)
        self._reconfigure()

    def suspend_component(self, name):
        """Suspend an active component's RT task (admission retained)."""
        component = self.registry.get(name)
        if component.state is not ComponentState.ACTIVE:
            raise LifecycleError(
                "component %s is %s; only ACTIVE components can be "
                "suspended" % (name, component.state.value))
        component.container.suspend()
        component._transition(self._token, ComponentState.SUSPENDED,
                              "suspended by management")
        self._emit(ComponentEventType.SUSPENDED, component)

    def resume_component(self, name):
        """Resume a suspended component's RT task."""
        component = self.registry.get(name)
        if component.state is not ComponentState.SUSPENDED:
            raise LifecycleError(
                "component %s is %s; only SUSPENDED components can be "
                "resumed" % (name, component.state.value))
        component.container.resume()
        component._transition(self._token, ComponentState.ACTIVE,
                              "resumed by management")
        self._emit(ComponentEventType.RESUMED, component)

    def set_internal_policy(self, policy):
        """Swap the internal resolving service and reconfigure."""
        self.internal_policy = policy
        self._reconfigure()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def component(self, name):
        """The managed component named ``name``."""
        return self.registry.get(name)

    def component_state(self, name):
        """Shorthand: the lifecycle state of ``name``."""
        return self.registry.get(name).state

    def global_view(self, candidate=None):
        """A :class:`GlobalView` snapshot (used by policies/tests)."""
        return GlobalView(self.registry, self.kernel, candidate)

    def customized_resolving_services(self):
        """Currently registered customized resolving services."""
        return self._resolving_tracker.get_services() \
            if self._attached else []

    # ==================================================================
    # the constraint-resolution engine
    # ==================================================================
    def _reconfigure(self):
        """Drive the configuration to a fixpoint.

        Each pass (1) revalidates admitted components against the
        resolving services, deactivating any that lost their admission,
        then (2) tries to activate unsatisfied components.  Re-entrant
        triggers (events raised during the pass) fold into the loop.
        """
        if self._reconfiguring:
            self._dirty = True
            return
        self._reconfiguring = True
        self._m_reconfigurations.inc()
        try:
            for _ in range(_MAX_RECONFIGURE_PASSES):
                self._dirty = False
                self._m_passes.inc()
                changed = self._revalidate_pass()
                changed = self._activation_pass() or changed
                if not changed and not self._dirty:
                    return
            raise LifecycleError(
                "reconfiguration did not converge in %d passes; a "
                "resolving service is oscillating"
                % _MAX_RECONFIGURE_PASSES)
        finally:
            self._reconfiguring = False
            self._refresh_state_gauges()

    def _refresh_state_gauges(self):
        """Publish the per-state component population (Figure-1 view)."""
        for state, gauge in self._state_gauges.items():
            gauge.set(len(self.registry.in_state(state)))

    def _revalidate_pass(self):
        changed = False
        for component in list(self.registry.active()):
            view = GlobalView(self.registry, self.kernel, component)
            decision = self._consult_revalidate(component, view)
            if not decision:
                self._m_revocations.inc()
                self._deactivate(component, ComponentState.UNSATISFIED,
                                 "admission revoked: %s" % decision.reason)
                self._emit(ComponentEventType.UNSATISFIED, component,
                           decision.reason)
                changed = True
        return changed

    def _activation_pass(self):
        changed = False
        for component in list(self.registry.unsatisfied()):
            if self._try_activate(component):
                changed = True
        return changed

    def _try_activate(self, component):
        """One admission + activation attempt.  Returns True on
        activation."""
        # -- functional constraints (port wiring) ----------------------
        bindings = self._resolve_ports(component)
        if bindings is None:
            return False
        # -- placement (optional re-pin before admission) ----------------
        view = GlobalView(self.registry, self.kernel, component)
        self._apply_placement(component, view)
        # -- non-functional constraints (resolving services) ------------
        decision = self._consult_admit(component, view)
        if not decision:
            self._m_rejections.inc()
            # Emit only when the rejection reason changes, so a
            # permanently rejected component does not flood the event
            # log on every reconfiguration pass.
            if component.status_reason != decision.reason:
                component.status_reason = decision.reason
                self._emit(ComponentEventType.ADMISSION_REJECTED,
                           component, decision.reason)
            return False
        # -- activation --------------------------------------------------
        component._transition(self._token, ComponentState.SATISFIED,
                              decision.reason)
        self._emit(ComponentEventType.SATISFIED, component,
                   decision.reason)
        component._transition(self._token, ComponentState.ACTIVATING)
        try:
            container = self._container_factory(component, self)
            container.activate(bindings)
        except Exception as error:
            component.container = None
            component.bindings = []
            component._transition(self._token, ComponentState.UNSATISFIED,
                                  "activation failed: %s" % error)
            self._emit(ComponentEventType.UNSATISFIED, component,
                       "activation failed: %s" % error)
            return False
        component.container = container
        component.bindings = bindings
        component._transition(self._token, ComponentState.ACTIVE)
        self._register_management(component)
        self._emit(ComponentEventType.ACTIVATED, component)
        return True

    def _resolve_ports(self, component):
        """Find an admitted provider for every inport.

        Returns the bindings, or ``None`` (with status_reason set) when
        a dependency is missing.  Deterministic choice: the earliest-
        registered active provider.
        """
        bindings = []
        for inport in component.descriptor.inports:
            providers = self.registry.providers_of(inport)
            if not providers:
                component.status_reason = (
                    "no active provider for inport %s" % inport.name)
                return None
            provider, outport = providers[0]
            bindings.append(PortBinding(
                component.name, inport, provider.name, outport,
                kernel_object=outport.name))
        return bindings

    def _apply_placement(self, component, view):
        """Let the placement service re-pin the candidate's CPU."""
        from repro.core.placement import component_is_pinned
        if self.placement_service is None:
            return
        if component_is_pinned(component):
            return
        cpu = self.placement_service.place(component, view)
        if cpu is None or cpu == component.contract.cpu:
            return
        if cpu < 0 or cpu >= self.kernel.config.num_cpus:
            raise LifecycleError(
                "placement service chose invalid CPU %r for %s"
                % (cpu, component.name))
        self._trace_placement(component, cpu)
        component.contract.cpu = cpu

    def _trace_placement(self, component, cpu):
        self.kernel.sim.trace.record(
            self.kernel.now, "placement", component=component.name,
            cpu=cpu, policy=self.placement_service.name)

    def set_placement_service(self, service):
        """Swap the placement service and reconfigure."""
        self.placement_service = service
        self._reconfigure()

    def _consult_admit(self, component, view):
        decision = self.internal_policy.admit(component, view)
        if not decision:
            self._count_rejection(self.internal_policy)
            return Decision.no("internal %s: %s"
                               % (self.internal_policy.name,
                                  decision.reason))
        for service in self.customized_resolving_services():
            decision = service.admit(component, view)
            if not decision:
                self._count_rejection(service)
                return Decision.no("customized %s: %s"
                                   % (service.name, decision.reason))
        self._m_admissions.inc()
        return Decision.yes("admitted")

    def _count_rejection(self, service):
        """Attribute one admission veto to the rejecting service."""
        if hasattr(service, "metric_name"):
            label = service.metric_name()
        else:  # duck-typed service objects registered in OSGi
            label = str(getattr(service, "name", "anonymous"))
        self._metrics.counter("rejected_by.%s" % label).inc()

    def _consult_revalidate(self, component, view):
        decision = self.internal_policy.revalidate(component, view)
        if not decision:
            return decision
        for service in self.customized_resolving_services():
            decision = service.revalidate(component, view)
            if not decision:
                return decision
        return Decision.yes("still admitted")

    # ------------------------------------------------------------------
    # deactivation / disposal
    # ------------------------------------------------------------------
    def _deactivate(self, component, target_state, reason):
        """Tear an instantiated component down to ``target_state``,
        cascading to dependents first (they become UNSATISFIED)."""
        if not component.is_instantiated:
            raise LifecycleError(
                "component %s is not instantiated" % component.name)
        for dependent in self.registry.dependents_of(component):
            self._deactivate(dependent, ComponentState.UNSATISFIED,
                             "provider %s departed" % component.name)
            self._emit(ComponentEventType.UNSATISFIED, dependent,
                       "provider %s departed" % component.name)
        component._transition(self._token, ComponentState.DEACTIVATING,
                              reason)
        self._unregister_management(component)
        if component.container is not None:
            component.container.deactivate()
        component.container = None
        component.bindings = []
        component._transition(self._token, target_state, reason)
        self._emit(ComponentEventType.DEACTIVATED, component, reason)

    def _dispose(self, component, reason):
        if component.state is ComponentState.DISPOSED:
            return
        if component.is_instantiated:
            self._deactivate(component, ComponentState.DISPOSED, reason)
        else:
            component._transition(self._token, ComponentState.DISPOSED,
                                  reason)
        self.registry.remove(component)
        self._emit(ComponentEventType.DISPOSED, component, reason)

    # ------------------------------------------------------------------
    # management service plumbing
    # ------------------------------------------------------------------
    def _register_management(self, component):
        service = ComponentManagementService(self, component)
        component.management_registration = \
            self.framework.registry.register(
                MANAGEMENT_SERVICE_INTERFACE, service,
                management_service_properties(component),
                bundle=component.bundle)

    def _unregister_management(self, component):
        registration = component.management_registration
        if registration is not None and not registration.unregistered:
            registration.unregister()
        component.management_registration = None

    def _emit(self, event_type, component, reason=""):
        self._metrics.counter("events_%s_total" % event_type.value).inc()
        self.events.emit(self.kernel.now, event_type, component.name,
                         reason)

    def __repr__(self):
        return "DRCR(%d components, policy=%s)" % (
            len(self.registry), self.internal_policy.name)
