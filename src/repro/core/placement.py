"""Placement services: automatic CPU assignment for components.

The descriptor's ``runoncup``/``runoncpu`` attribute pins a component to
a processor chosen by the developer at design time.  On a multi-core
box (the paper's testbed was a duo-core T5500) a static pin wastes
capacity: two 60% components pinned to CPU 0 cannot both be admitted
even though CPU 1 idles.  A *placement service* closes that gap: the
DRCR consults it before admission and re-pins the candidate's contract
to the CPU the policy selects.

A descriptor can opt out per component with the property
``drcom.placement = "pinned"`` (the design-time pin is then honoured).
"""

class PlacementService:
    """Interface: choose a CPU for a candidate before admission."""

    #: Policy name for traces and benchmarks.
    name = "placement"

    def place(self, candidate, view):
        """Return the CPU number for ``candidate``, or ``None`` to
        keep its descriptor pin."""
        raise NotImplementedError


class PinnedPlacement(PlacementService):
    """Honour the descriptor pin (the paper's behaviour)."""

    name = "pinned"

    def place(self, candidate, view):
        return None


class FirstFitPlacement(PlacementService):
    """The first CPU whose declared budget still fits the candidate."""

    name = "first-fit"

    def __init__(self, cap=1.0):
        self.cap = cap

    def place(self, candidate, view):
        usage = candidate.contract.cpu_usage
        for cpu in range(view.num_cpus()):
            current = view.registry.declared_utilization(cpu)
            if current + usage <= self.cap + 1e-12:
                return cpu
        return None  # nowhere fits: leave the pin, admission decides


class BestFitPlacement(PlacementService):
    """The least-loaded CPU that fits (balances declared budgets)."""

    name = "best-fit"

    def __init__(self, cap=1.0):
        self.cap = cap

    def place(self, candidate, view):
        usage = candidate.contract.cpu_usage
        best_cpu = None
        best_load = None
        for cpu in range(view.num_cpus()):
            current = view.registry.declared_utilization(cpu)
            if current + usage > self.cap + 1e-12:
                continue
            if best_load is None or current < best_load:
                best_cpu = cpu
                best_load = current
        return best_cpu


def component_is_pinned(component):
    """Whether the descriptor opts out of automatic placement."""
    return component.descriptor.property_value(
        "drcom.placement") == "pinned"
