"""System inspection: human-readable views of the DRCR's global view.

The OSGi world lives on console introspection (Equinox's ``ss``, SCR's
``scr list``); this module provides the DRCom equivalents.  Everything
here is read-only and builds purely on public APIs, so it is also a
usage example of the management surface.
"""

from repro.core.lifecycle import ComponentState


def format_component_table(drcr):
    """An ``scr list``-style table of every deployed component."""
    rows = [("NAME", "STATE", "TYPE", "PRIO", "CPU", "USAGE",
             "PROVIDERS", "REASON")]
    for component in drcr.registry.all():
        contract = component.contract
        rows.append((
            component.name,
            component.state.value,
            contract.task_type.value,
            str(contract.priority),
            str(contract.cpu),
            "%.3f" % contract.cpu_usage,
            ",".join(component.bound_providers()) or "-",
            component.status_reason or "-",
        ))
    widths = [max(len(row[column]) for row in rows)
              for column in range(len(rows[0]))]
    lines = []
    for index, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)


def format_utilization(drcr):
    """Declared vs measured utilization per CPU."""
    lines = ["CPU  DECLARED  MEASURED"]
    for cpu in range(drcr.kernel.config.num_cpus):
        declared = drcr.registry.declared_utilization(cpu)
        measured = drcr.kernel.rt_utilization(cpu)
        lines.append("%3d  %7.1f%%  %7.1f%%"
                     % (cpu, declared * 100, measured * 100))
    return "\n".join(lines)


def format_kernel_objects(kernel):
    """Every named kernel object (tasks, SHM, mailboxes, ...)."""
    lines = []
    for name in sorted(kernel._registry):
        lines.append("%-8s %r" % (name, kernel._registry[name]))
    return "\n".join(lines) if lines else "(none)"


def format_event_tail(drcr, count=10):
    """The last ``count`` DRCR events."""
    events = list(drcr.events)[-count:]
    if not events:
        return "(no events)"
    return "\n".join(
        "t=%-12d %-20s %-10s %s"
        % (e.time, e.event_type.value, e.component, e.reason)
        for e in events)


def format_metrics_section(drcr):
    """The platform's telemetry counters (flat ``subsystem.metric``
    table; see ``docs/OBSERVABILITY.md`` for what each name means)."""
    from repro.telemetry.export import format_metrics
    return format_metrics(drcr.kernel.sim.telemetry)


def system_report(drcr, event_count=10, include_metrics=True):
    """The full operator report: components, budgets, events, metrics."""
    active = len(drcr.registry.in_state(ComponentState.ACTIVE))
    sections = [
        "=== DRCR system report (t=%d ns) ===" % drcr.kernel.now,
        "components: %d deployed, %d active, policy=%s"
        % (len(drcr.registry), active, drcr.internal_policy.name),
        "",
        format_component_table(drcr),
        "",
        format_utilization(drcr),
        "",
        "recent events:",
        format_event_tail(drcr, event_count),
    ]
    if include_metrics:
        sections.extend(["", "metrics:", format_metrics_section(drcr)])
    if drcr.applications():
        sections.insert(2, "applications: " + ", ".join(
            "%s[%s]" % (name, ",".join(members))
            for name, members in sorted(drcr.applications().items())))
    return "\n".join(sections)
