"""Application descriptors: grouped, atomically-admitted components.

The paper's future work (section 6) calls for "more powerful component
description language" and integration of "certain Architecture
Description Language into our DRCom".  This module adds the natural
next step: an ``<drt:application>`` document grouping several component
descriptors into one deployable unit with application-level semantics:

* **atomic admission** -- the whole group activates or none of it does
  (a vision pipeline with its tracker missing is not degraded, it is
  wrong);
* **internal-wiring validation** -- a ``complete="true"`` application
  must satisfy every inport from its own outports, catching
  architecture bugs at parse time instead of at deployment;
* **aggregate contract** -- the summed declared CPU per processor, the
  number the admission trial checks before touching the kernel.

Example::

    <drt:application name="vision" desc="camera pipeline"
                     complete="true">
      <drt:component name="camera" ...> ... </drt:component>
      <drt:component name="tracker" ...> ... </drt:component>
    </drt:application>
"""

import re
import xml.etree.ElementTree as ET

from repro.core.descriptor import ComponentDescriptor, _local
from repro.core.errors import DescriptorError

_UNBOUND_PREFIX = re.compile(r"(</?)drt:")


class ApplicationDescriptor:
    """A parsed, validated application document."""

    def __init__(self, name, components, description="", complete=False):
        if not name:
            raise DescriptorError("application name is required")
        if not components:
            raise DescriptorError(
                "application %r contains no components" % name)
        self.name = name
        self.description = description
        self.complete = complete
        self.components = list(components)
        self._check_unique_names()
        if complete:
            self._check_internal_wiring()

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _check_unique_names(self):
        seen = set()
        for descriptor in self.components:
            if descriptor.name in seen:
                raise DescriptorError(
                    "application %r declares component %r twice"
                    % (self.name, descriptor.name))
            seen.add(descriptor.name)

    def _check_internal_wiring(self):
        outports = [port for descriptor in self.components
                    for port in descriptor.outports]
        for descriptor in self.components:
            for inport in descriptor.inports:
                if not any(inport.compatible_with(outport)
                           for outport in outports):
                    raise DescriptorError(
                        "application %r is declared complete but "
                        "component %r inport %s has no internal "
                        "provider" % (self.name, descriptor.name,
                                      inport.name))

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def component_names(self):
        """The member component names, in document order."""
        return [descriptor.name for descriptor in self.components]

    def declared_utilization(self, cpu=None):
        """Summed declared cpuusage (optionally one CPU)."""
        return sum(
            descriptor.contract.cpu_usage
            for descriptor in self.components
            if cpu is None or descriptor.contract.cpu == cpu)

    def cpus_used(self):
        """The set of CPUs the application's contracts name."""
        return {descriptor.contract.cpu
                for descriptor in self.components}

    # ------------------------------------------------------------------
    # XML
    # ------------------------------------------------------------------
    @classmethod
    def from_xml(cls, text):
        """Parse an ``<drt:application>`` document."""
        root = _parse_root(text)
        if _local(root.tag) != "application":
            raise DescriptorError(
                "root element must be drt:application, got %r"
                % root.tag)
        name = root.attrib.get("name")
        if not name:
            raise DescriptorError("application element needs a name")
        complete = root.attrib.get("complete", "false") \
            .strip().lower() == "true"
        components = []
        for child in root:
            if _local(child.tag) != "component":
                raise DescriptorError(
                    "application %r: unexpected element <%s>"
                    % (name, _local(child.tag)))
            components.append(
                ComponentDescriptor.from_xml(ET.tostring(
                    child, encoding="unicode")))
        return cls(name, components,
                   description=root.attrib.get("desc", ""),
                   complete=complete)

    def to_xml(self):
        """Serialise back to application XML."""
        lines = ['<?xml version="1.0" encoding="UTF-8"?>']
        lines.append(
            '<drt:application xmlns:drt="http://pats.ua.ac.be/xmlns/'
            'drt/v1.0.0" name="%s" desc="%s" complete="%s">'
            % (self.name, self.description,
               "true" if self.complete else "false"))
        for descriptor in self.components:
            body = descriptor.to_xml().split("\n", 1)[1]  # drop <?xml?>
            lines.append(body)
        lines.append("</drt:application>")
        return "\n".join(lines)

    def __repr__(self):
        return "ApplicationDescriptor(%s, %d components)" % (
            self.name, len(self.components))


def _parse_root(text):
    text = text.strip().replace("<? xml", "<?xml", 1)
    try:
        return ET.fromstring(text)
    except ET.ParseError:
        stripped = _UNBOUND_PREFIX.sub(r"\1", text)
        try:
            return ET.fromstring(stripped)
        except ET.ParseError as error:
            raise DescriptorError(
                "application XML does not parse: %s" % error) from None
