"""The resolving-service contract (paper sections 1, 2.2, 4.3).

The DRCR consults *resolving services* for non-functional (real-time)
constraint decisions:

* its **internal resolving service** -- a configured admission policy
  from :mod:`repro.core.policies` -- is always consulted;
* **customized resolving services** registered in the OSGi service
  registry under :data:`RESOLVING_SERVICE_INTERFACE` are consulted as
  well ("a resolving service to provide customized real-time admission
  and adaptation service, which can be plugged into the DRCR runtime by
  using [the] OSGi service model").

A candidate is admitted only when *every* consulted service accepts,
mirroring section 4.3: "When both services return positive results ...
the DRCR will create and activate the component".

Every rejection is attributed: the DRCR counts, per resolving service,
how often that service vetoed a candidate (telemetry counters named
``drcr.rejected_by.<service>``; see :meth:`ResolvingService
.metric_name` and ``docs/OBSERVABILITY.md``), so an operator can tell
*which* policy is holding a component out, not just that one is.
"""

import re

#: OSGi service interface name customized resolving services register
#: under.
RESOLVING_SERVICE_INTERFACE = "drcom.resolving.ResolvingService"


class Decision:
    """An admission decision with a human-readable reason."""

    __slots__ = ("accept", "reason")

    def __init__(self, accept, reason=""):
        self.accept = bool(accept)
        self.reason = reason

    @classmethod
    def yes(cls, reason="ok"):
        """An accepting decision."""
        return cls(True, reason)

    @classmethod
    def no(cls, reason):
        """A rejecting decision (reason required)."""
        return cls(False, reason)

    def __bool__(self):
        return self.accept

    def __repr__(self):
        return "Decision(%s, %r)" % ("accept" if self.accept else "reject",
                                     self.reason)


class GlobalView:
    """Read-only snapshot of the system the DRCR hands to resolving
    services: the admitted contracts, per-CPU utilization, and kernel
    facts.  Policies must not mutate anything through it.

    The DRCR allocates one view per reconfiguration pass and re-points
    :attr:`candidate` per consultation, so policies must read the
    candidate from the view they are handed rather than capture it
    across calls."""

    __slots__ = ("registry", "kernel", "candidate")

    def __init__(self, registry, kernel, candidate):
        self.registry = registry
        self.kernel = kernel
        self.candidate = candidate

    def admitted_contracts(self, cpu=None):
        """Contracts currently under admission (optionally one CPU)."""
        return self.registry.admitted_contracts(cpu)

    def declared_utilization(self, cpu, include_candidate=True):
        """Declared utilization on ``cpu``; optionally adding the
        candidate's claim."""
        extra = self.candidate.contract if include_candidate else None
        return self.registry.declared_utilization(cpu, extra=extra)

    def num_cpus(self):
        """Number of CPUs in the kernel."""
        return self.kernel.config.num_cpus


class ResolvingService:
    """Interface for admission/adaptation policies.

    Subclass and implement :meth:`admit`; optionally override
    :meth:`revalidate` to veto components after a context change (DRCR
    calls it for every admitted component whenever the configuration
    changes -- the "check for possible unsatisfied component instances"
    pass of section 4.3).
    """

    #: Human-readable policy name (traces, benchmark tables).
    name = "resolving-service"

    def admit(self, candidate, view):
        """Decide whether ``candidate`` may be activated.

        Returns a :class:`Decision`.
        """
        raise NotImplementedError

    def revalidate(self, component, view):
        """Re-check an admitted component after a context change.

        The default keeps everything admitted; override to build
        load-shedding policies.
        """
        return Decision.yes("still admitted")

    def metric_name(self):
        """This service's identifier inside telemetry metric names.

        Derived from :attr:`name` with anything outside
        ``[A-Za-z0-9_.-]`` replaced by ``_`` so free-form policy names
        stay safe inside dotted metric identifiers.
        """
        return re.sub(r"[^0-9A-Za-z_.\-]", "_", self.name) or "anonymous"

    def __repr__(self):
        return "%s(%s)" % (type(self).__name__, self.name)
