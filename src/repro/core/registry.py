"""DRCR's internal component registry -- the *global view*.

"A general component real-time management interface is designed[;
descriptors] are used to maintain an accurate view of existing real-time
components' promised contracts" (abstract).  The registry indexes every
deployed component by name, by provided/required port signature, and
keeps the per-CPU utilization ledger admission policies read.
"""

from repro.core.errors import (
    DuplicateComponentError,
    UnknownComponentError,
)
from repro.core.lifecycle import ComponentState


class ComponentRegistry:
    """Name-unique registry of :class:`DRComComponent` with port
    indexes and a contract-utilization ledger."""

    def __init__(self):
        self._components = {}

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add(self, component):
        """Register a component; names are globally unique (paper
        section 2.3).

        The derived six-character RTAI *task* name must be unique too:
        two long component names that truncate to the same task name
        would collide in the kernel at activation, so the collision is
        rejected here, at deployment, with an actionable message.
        """
        if component.name in self._components:
            raise DuplicateComponentError(
                "component name %r already deployed (names are globally "
                "unique)" % component.name)
        task_name = component.descriptor.task_name
        for existing in self._components.values():
            if existing.descriptor.task_name == task_name:
                raise DuplicateComponentError(
                    "component %r derives RTAI task name %r, which "
                    "collides with deployed component %r; choose a "
                    "name that is distinct in its first characters"
                    % (component.name, task_name, existing.name))
        self._components[component.name] = component

    def remove(self, component):
        """Forget a component."""
        self._components.pop(component.name, None)

    def get(self, name):
        """Find a component by name (raises on miss)."""
        try:
            return self._components[name]
        except KeyError:
            raise UnknownComponentError("no component named %r"
                                        % (name,)) from None

    def maybe_get(self, name):
        """Find a component by name (None on miss)."""
        return self._components.get(name)

    def __contains__(self, name):
        return name in self._components

    def __len__(self):
        return len(self._components)

    def all(self):
        """All deployed components, in registration order."""
        return list(self._components.values())

    # ------------------------------------------------------------------
    # state-filtered views
    # ------------------------------------------------------------------
    def in_state(self, *states):
        """Components currently in any of ``states``."""
        return [c for c in self._components.values() if c.state in states]

    def active(self):
        """Components whose RT task runs under contract (ACTIVE or
        SUSPENDED -- a suspended task retains its admission)."""
        return self.in_state(ComponentState.ACTIVE,
                             ComponentState.SUSPENDED)

    def unsatisfied(self):
        """Components waiting on constraints."""
        return self.in_state(ComponentState.UNSATISFIED)

    def of_bundle(self, bundle):
        """Components deployed from one bundle."""
        return [c for c in self._components.values()
                if c.bundle is bundle]

    # ------------------------------------------------------------------
    # port indexes
    # ------------------------------------------------------------------
    def providers_of(self, inport, states=None):
        """Components offering an outport compatible with ``inport``.

        ``states`` restricts the provider's lifecycle state (default:
        the instantiated/admitted set -- ACTIVE and SUSPENDED).
        """
        if states is None:
            states = (ComponentState.ACTIVE, ComponentState.SUSPENDED)
        matches = []
        for component in self._components.values():
            if component.state not in states:
                continue
            for outport in component.descriptor.outports:
                if inport.compatible_with(outport):
                    matches.append((component, outport))
        return matches

    def dependents_of(self, provider):
        """Active/suspended components bound to ``provider``'s outports."""
        return [
            component for component in self.active()
            if provider.name in component.bound_providers()
        ]

    # ------------------------------------------------------------------
    # utilization ledger
    # ------------------------------------------------------------------
    def declared_utilization(self, cpu, extra=None):
        """Sum of declared ``cpuusage`` of admitted components on a CPU.

        ``extra`` (a contract) is added on top -- the admission check's
        "what if we admit this one too" view.
        """
        total = sum(
            component.contract.cpu_usage
            for component in self.active()
            if component.contract.cpu == cpu
        )
        if extra is not None and extra.cpu == cpu:
            total += extra.cpu_usage
        return total

    def admitted_contracts(self, cpu=None):
        """Contracts of admitted components (optionally one CPU)."""
        return [
            component.contract for component in self.active()
            if cpu is None or component.contract.cpu == cpu
        ]
