"""DRCR's internal component registry -- the *global view*.

"A general component real-time management interface is designed[;
descriptors] are used to maintain an accurate view of existing real-time
components' promised contracts" (abstract).  The registry indexes every
deployed component by name, by provided/required port signature, and
keeps the per-CPU utilization ledger admission policies read.

Reconfiguration is the steady-state hot path (components arrive and
depart *during operation*, section 1), so every query the DRCR issues
per lifecycle event is index-backed rather than a full scan:

* a **state index** (one bucket per lifecycle state, kept current by
  the :class:`~repro.core.component.DRComComponent` state setter), so
  ``in_state``/``active``/``unsatisfied`` and the per-state telemetry
  gauges cost O(answer), not O(fleet);
* a **port-dependency graph**: provider -> consumer edges at two
  levels -- *declared* edges keyed by port signature (who could bind
  whom: ``providers_of``/``consumers_of``) maintained on
  register/unregister, and *wired* edges for live bindings
  (``dependents_of``) maintained when the DRCR wires/unwires a
  component.  The DRCR's incremental reconfiguration propagates dirty
  sets along exactly these edges;
* a **task-name index** for O(1) duplicate detection and fault
  attribution.

``all()`` intentionally stays a plain walk of the name map -- it is the
oracle the property-based index-consistency tests compare every index
against (``tests/property/test_prop_registry_index.py``).
"""

import itertools

from repro.core.errors import (
    DuplicateComponentError,
    UnknownComponentError,
)
from repro.core.lifecycle import ComponentState

#: Lifecycle states whose components hold an admission (their RT task
#: runs, or is suspended, under contract).
_ADMITTED_STATES = (ComponentState.ACTIVE, ComponentState.SUSPENDED)


class ComponentRegistry:
    """Name-unique registry of :class:`DRComComponent` with state,
    port-graph and task-name indexes plus a contract-utilization
    ledger."""

    def __init__(self):
        self._components = {}
        #: name -> registration sequence number; all index-backed views
        #: return registration order, like the scans they replaced.
        self._order = {}
        self._sequence = itertools.count()
        #: RTAI task name -> component (uniqueness + fault attribution).
        self._task_names = {}
        #: lifecycle state -> {name: component} (insertion = the order
        #: components entered the state; views re-sort by ``_order``).
        self._by_state = {state: {} for state in ComponentState}
        #: outport signature -> [(component, outport)] in registration
        #: (and declared-port) order: the *declared* provider edges.
        self._providers = {}
        #: inport signature -> {name: component}: the *declared*
        #: consumer edges (who would bind a provider of this signature).
        self._consumers = {}
        #: provider name -> {dependent name: component}: the *wired*
        #: edges, maintained by :meth:`note_wired`/:meth:`note_unwired`.
        self._wired = {}
        #: bundle -> {name: component} for O(answer) bundle undeploys.
        self._by_bundle = {}

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add(self, component):
        """Register a component; names are globally unique (paper
        section 2.3).

        The derived six-character RTAI *task* name must be unique too:
        two long component names that truncate to the same task name
        would collide in the kernel at activation, so the collision is
        rejected here, at deployment, with an actionable message.
        """
        if component.name in self._components:
            raise DuplicateComponentError(
                "component name %r already deployed (names are globally "
                "unique)" % component.name)
        task_name = component.descriptor.task_name
        existing = self._task_names.get(task_name)
        if existing is not None:
            raise DuplicateComponentError(
                "component %r derives RTAI task name %r, which "
                "collides with deployed component %r; choose a "
                "name that is distinct in its first characters"
                % (component.name, task_name, existing.name))
        name = component.name
        self._components[name] = component
        self._order[name] = next(self._sequence)
        self._task_names[task_name] = component
        self._by_state[component.state][name] = component
        for outport in component.descriptor.outports:
            self._providers.setdefault(outport.signature(), []).append(
                (component, outport))
        for inport in component.descriptor.inports:
            self._consumers.setdefault(
                inport.signature(), {})[name] = component
        if component.bundle is not None:
            self._by_bundle.setdefault(
                component.bundle, {})[name] = component
        component._registry = self

    def remove(self, component):
        """Forget a component (and every index entry it owns)."""
        name = component.name
        if self._components.pop(name, None) is None:
            return
        component._registry = None
        self._order.pop(name, None)
        self._task_names.pop(component.descriptor.task_name, None)
        for bucket in self._by_state.values():
            bucket.pop(name, None)
        for outport in component.descriptor.outports:
            signature = outport.signature()
            entries = self._providers.get(signature)
            if entries is not None:
                entries[:] = [entry for entry in entries
                              if entry[0] is not component]
                if not entries:
                    del self._providers[signature]
        for inport in component.descriptor.inports:
            consumers = self._consumers.get(inport.signature())
            if consumers is not None:
                consumers.pop(name, None)
                if not consumers:
                    del self._consumers[inport.signature()]
        self._wired.pop(name, None)
        for dependents in self._wired.values():
            dependents.pop(name, None)
        if component.bundle is not None:
            members = self._by_bundle.get(component.bundle)
            if members is not None:
                members.pop(name, None)
                if not members:
                    del self._by_bundle[component.bundle]

    def get(self, name):
        """Find a component by name (raises on miss)."""
        try:
            return self._components[name]
        except KeyError:
            raise UnknownComponentError("no component named %r"
                                        % (name,)) from None

    def maybe_get(self, name):
        """Find a component by name (None on miss)."""
        return self._components.get(name)

    def by_task_name(self, task_name):
        """Find a component by its derived RTAI task name (None on
        miss)."""
        return self._task_names.get(task_name)

    def __contains__(self, name):
        return name in self._components

    def __len__(self):
        return len(self._components)

    def all(self):
        """All deployed components, in registration order."""
        return list(self._components.values())

    def _ordered(self, components):
        """Sort a component collection into registration order."""
        return sorted(components, key=lambda c: self._order[c.name])

    # ------------------------------------------------------------------
    # state index
    # ------------------------------------------------------------------
    def _state_changed(self, component, old_state, new_state):
        """Re-bucket one component (called by the component's state
        setter, so even test shortcuts that assign ``state`` directly
        keep the index consistent)."""
        name = component.name
        bucket = self._by_state[old_state]
        if bucket.pop(name, None) is not None:
            self._by_state[new_state][name] = component

    def in_state(self, *states):
        """Components currently in any of ``states``, in registration
        order."""
        if len(states) == 1:
            members = list(self._by_state[states[0]].values())
        else:
            members = [component
                       for state in states
                       for component in self._by_state[state].values()]
        return self._ordered(members)

    def state_counts(self):
        """``{state: live population}`` in one O(#states) pass."""
        return {state: len(bucket)
                for state, bucket in self._by_state.items()}

    def select(self, names, *states):
        """The subset of ``names`` currently deployed and in
        ``states``, in registration order (the DRCR's dirty-set
        materializer)."""
        members = []
        for name in names:
            component = self._components.get(name)
            if component is not None and component.state in states:
                members.append(component)
        return self._ordered(members)

    def active(self):
        """Components whose RT task runs under contract (ACTIVE or
        SUSPENDED -- a suspended task retains its admission)."""
        return self.in_state(*_ADMITTED_STATES)

    def unsatisfied(self):
        """Components waiting on constraints."""
        return self.in_state(ComponentState.UNSATISFIED)

    def of_bundle(self, bundle):
        """Components deployed from one bundle, in registration order."""
        members = self._by_bundle.get(bundle)
        if not members:
            return []
        return self._ordered(members.values())

    # ------------------------------------------------------------------
    # the port-dependency graph
    # ------------------------------------------------------------------
    def providers_of(self, inport, states=None):
        """Components offering an outport compatible with ``inport``.

        ``states`` restricts the provider's lifecycle state (default:
        the instantiated/admitted set -- ACTIVE and SUSPENDED).
        Registration order is preserved, so the DRCR's deterministic
        "earliest-registered active provider" choice is unchanged.
        """
        if states is None:
            states = _ADMITTED_STATES
        entries = self._providers.get(inport.signature(), ())
        return [(component, outport) for component, outport in entries
                if component.state in states]

    def consumers_of(self, provider, states=None):
        """Components declaring an inport compatible with any of
        ``provider``'s outports -- the *declared* provider -> consumer
        edges the incremental reconfiguration propagates along.

        ``states`` restricts the consumer's lifecycle state (default:
        no restriction).  Registration order.
        """
        matches = {}
        for outport in provider.descriptor.outports:
            consumers = self._consumers.get(outport.signature())
            if not consumers:
                continue
            for name, component in consumers.items():
                if component is provider:
                    continue
                if states is not None and component.state not in states:
                    continue
                matches[name] = component
        return self._ordered(matches.values())

    def note_wired(self, component):
        """Record the *wired* edges of a freshly activated component
        (one edge per bound provider)."""
        for provider_name in component.bound_providers():
            self._wired.setdefault(
                provider_name, {})[component.name] = component

    def note_unwired(self, component):
        """Drop the wired edges of a component about to lose its
        bindings."""
        for provider_name in component.bound_providers():
            dependents = self._wired.get(provider_name)
            if dependents is not None:
                dependents.pop(component.name, None)
                if not dependents:
                    del self._wired[provider_name]

    def dependents_of(self, provider):
        """Active/suspended components bound to ``provider``'s
        outports (wired edges), in registration order."""
        dependents = self._wired.get(provider.name)
        if not dependents:
            return []
        return self._ordered(
            component for component in dependents.values()
            if component.state in _ADMITTED_STATES)

    # ------------------------------------------------------------------
    # utilization ledger
    # ------------------------------------------------------------------
    def declared_utilization(self, cpu, extra=None):
        """Sum of declared ``cpuusage`` of admitted components on a CPU.

        ``extra`` (a contract) is added on top -- the admission check's
        "what if we admit this one too" view.
        """
        total = 0.0
        for state in _ADMITTED_STATES:
            for component in self._by_state[state].values():
                if component.contract.cpu == cpu:
                    total += component.contract.cpu_usage
        if extra is not None and extra.cpu == cpu:
            total += extra.cpu_usage
        return total

    def admitted_contracts(self, cpu=None):
        """Contracts of admitted components (optionally one CPU)."""
        return [
            component.contract for component in self.active()
            if cpu is None or component.contract.cpu == cpu
        ]
