"""The declarative real-time component lifecycle (paper Figure 1).

"As the Declarative Real-time Component model is based on the OSGi
bundle, its lifecycle is a sub life-cycle of [the] OSGi bundle.  ...
parts of lifecycle control are driven by external events such as
component deployment and destruction (which still need to go through
DRCR).  Some state changes are automatically managed by DRCR, such as
Unsatisfied and Active." (section 2.2)

The transition table below is the machine the DRCR drives.  Components
themselves expose no mutating lifecycle API: every transition goes
through :meth:`repro.core.component.DRComComponent._transition`, which
requires the DRCR's capability token -- the enforcement of the paper's
"component's real-time contracts are now guaranteed by the execution
environments rather than by each component itself".
"""

import enum


class ComponentState(enum.Enum):
    """DRCom lifecycle states."""

    #: Descriptor parsed and registered; not yet classified.
    INSTALLED = "installed"
    #: Explicitly disabled (``enabled="false"`` or disableRTComponent).
    DISABLED = "disabled"
    #: Enabled but functional or real-time constraints unmet.
    UNSATISFIED = "unsatisfied"
    #: Constraints met and admission granted; about to activate.
    SATISFIED = "satisfied"
    #: Instance creation / port binding / task start in progress.
    ACTIVATING = "activating"
    #: Real-time task running under contract.
    ACTIVE = "active"
    #: Management-suspended (task frozen, contract retained).
    SUSPENDED = "suspended"
    #: Teardown in progress.
    DEACTIVATING = "deactivating"
    #: Removed (bundle stopped/uninstalled); terminal.
    DISPOSED = "disposed"


#: Allowed transitions: state -> set of successor states.
TRANSITIONS = {
    ComponentState.INSTALLED: {
        ComponentState.UNSATISFIED,   # enabled at registration
        ComponentState.DISABLED,      # enabled="false"
        ComponentState.DISPOSED,      # bundle vanished before classify
    },
    ComponentState.DISABLED: {
        ComponentState.UNSATISFIED,   # enableRTComponent
        ComponentState.DISPOSED,
    },
    ComponentState.UNSATISFIED: {
        ComponentState.SATISFIED,     # resolver + admission accepted
        ComponentState.DISABLED,      # disableRTComponent
        ComponentState.DISPOSED,
    },
    ComponentState.SATISFIED: {
        ComponentState.ACTIVATING,    # DRCR proceeds to activation
        ComponentState.UNSATISFIED,   # context changed before activation
        ComponentState.DISABLED,
        ComponentState.DISPOSED,
    },
    ComponentState.ACTIVATING: {
        ComponentState.ACTIVE,        # instance up, task started
        ComponentState.UNSATISFIED,   # activation failed
        ComponentState.DISPOSED,
    },
    ComponentState.ACTIVE: {
        ComponentState.SUSPENDED,     # management suspend
        ComponentState.DEACTIVATING,  # dependency lost / disable / stop
    },
    ComponentState.SUSPENDED: {
        ComponentState.ACTIVE,        # management resume
        ComponentState.DEACTIVATING,
    },
    ComponentState.DEACTIVATING: {
        ComponentState.UNSATISFIED,   # still deployed, constraints unmet
        ComponentState.DISABLED,      # deactivated because disabled
        ComponentState.DISPOSED,      # deactivated because undeployed
    },
    ComponentState.DISPOSED: set(),   # terminal
}

#: States in which the component's RT task exists in the kernel.
INSTANTIATED_STATES = frozenset({
    ComponentState.ACTIVATING, ComponentState.ACTIVE,
    ComponentState.SUSPENDED, ComponentState.DEACTIVATING,
})

#: States from which the DRCR's resolve pass may try to activate.
RESOLVABLE_STATES = frozenset({ComponentState.UNSATISFIED})


def state_metric_name(state):
    """Telemetry gauge name for the live population of one state.

    The DRCR keeps one gauge per lifecycle state in its ``drcr``
    metrics registry (``components_active``, ``components_unsatisfied``,
    ...) and refreshes them after every reconfiguration, so operators
    see the Figure-1 population at a glance without walking the
    registry.
    """
    return "components_%s" % state.value


def can_transition(current, target):
    """Whether ``current -> target`` is a legal lifecycle edge."""
    return target in TRANSITIONS[current]


def reachable_states(origin):
    """All states reachable from ``origin`` (including itself)."""
    seen = {origin}
    frontier = [origin]
    while frontier:
        state = frontier.pop()
        for successor in TRANSITIONS[state]:
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return seen
