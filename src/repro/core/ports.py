"""DRCom ports: typed communication endpoints of real-time components.

The descriptor's ``inport``/``outport`` elements (paper section 2.3)
each carry:

* ``name`` -- also the communication reference; limited to six
  characters "because the underlying real time OS use the six character
  name to refer to the real time tasks";
* ``interface`` -- the transport: ``RTAI.SHM`` or ``RTAI.Mailbox``;
* ``type`` -- the element type (``Integer`` or ``Byte``; we additionally
  accept ``Float``);
* ``size`` -- the element count ("the multiple size of the data type's
  size").

"Together with the name attribute, these attributes are used to
determine the port compatibility between the provided and required
interfaces" -- i.e. an inport binds to an outport iff all four agree.
"""

import enum

from repro.core.errors import PortError
from repro.rtos import names as rtai_names
from repro.rtos.errors import InvalidTaskNameError


class PortDirection(enum.Enum):
    """Data flow direction, from the component's point of view."""

    IN = "inport"
    OUT = "outport"


class PortInterface(enum.Enum):
    """Supported transports.

    SHM and mailbox are the paper's prototype set (section 2.3); FIFO
    is the RT->user-space channel added from the future-work list
    (section 6, "limited communication support between real-time
    tasks").
    """

    RTAI_SHM = "RTAI.SHM"
    RTAI_MAILBOX = "RTAI.Mailbox"
    RTAI_FIFO = "RTAI.FIFO"

    @classmethod
    def parse(cls, text):
        """Parse the descriptor's ``interface`` attribute."""
        for member in cls:
            if member.value == text:
                return member
        raise PortError(
            "unsupported port interface %r (supported: %s)"
            % (text, ", ".join(m.value for m in cls)))


#: Element types a port may declare.
PORT_DATA_TYPES = ("Integer", "Byte", "Float")


class PortSpec:
    """One declared port of a component."""

    __slots__ = ("name", "direction", "interface", "data_type", "size",
                 "_signature")

    def __init__(self, name, direction, interface, data_type, size):
        try:
            self.name = rtai_names.validate_name(name)
        except InvalidTaskNameError as error:
            raise PortError("bad port name: %s" % error) from None
        if "$" in self.name:
            # The '$' namespace is reserved for kernel plumbing (the
            # hybrid bridge's anonymous mailboxes).
            raise PortError("port names may not contain '$': %r"
                            % (name,))
        self.direction = direction
        self.interface = (interface if isinstance(interface, PortInterface)
                          else PortInterface.parse(interface))
        if data_type not in PORT_DATA_TYPES:
            raise PortError(
                "unsupported port data type %r (supported: %s)"
                % (data_type, ", ".join(PORT_DATA_TYPES)))
        self.data_type = data_type
        size = int(size)
        if size <= 0:
            raise PortError("port size must be positive, got %r" % (size,))
        self.size = size
        # Ports are immutable after construction, so the compatibility
        # signature -- also the key of the registry's port-dependency
        # indexes -- is computed once.
        self._signature = (self.name, self.interface.value,
                           self.data_type, self.size)

    def compatible_with(self, other):
        """Port-compatibility predicate (paper section 2.3).

        Direction must be complementary; name, interface, type and size
        must all agree.
        """
        if not isinstance(other, PortSpec):
            return False
        if self.direction is other.direction:
            return False
        return self._signature == other._signature

    def signature(self):
        """The (name, interface, type, size) compatibility signature."""
        return self._signature

    def __eq__(self, other):
        if not isinstance(other, PortSpec):
            return NotImplemented
        return (self.direction is other.direction
                and self._signature == other._signature)

    def __hash__(self):
        return hash((self.direction,) + self._signature)

    def __repr__(self):
        return "PortSpec(%s %s %s %s[%d])" % (
            self.direction.value, self.name, self.interface.value,
            self.data_type, self.size)


class PortBinding:
    """A resolved connection: requirer's inport <- provider's outport.

    ``kernel_object`` is the name of the backing RTOS object (an SHM
    segment or a mailbox); inter-component data flows through it
    directly in the RT domain, never through the OSGi side (paper
    section 3.3).
    """

    __slots__ = ("inport", "outport", "requirer", "provider",
                 "kernel_object")

    def __init__(self, requirer, inport, provider, outport,
                 kernel_object=None):
        if inport.direction is not PortDirection.IN:
            raise PortError("binding requires an inport, got %r"
                            % (inport,))
        if outport.direction is not PortDirection.OUT:
            raise PortError("binding requires an outport, got %r"
                            % (outport,))
        if not inport.compatible_with(outport):
            raise PortError(
                "incompatible ports: %r cannot bind %r" % (inport, outport))
        self.requirer = requirer
        self.provider = provider
        self.inport = inport
        self.outport = outport
        self.kernel_object = kernel_object

    def __repr__(self):
        return "PortBinding(%s.%s <- %s.%s via %s)" % (
            self.requirer, self.inport.name, self.provider,
            self.outport.name, self.kernel_object)
