"""Real-time contracts.

A contract is the machine-checkable core of a DRCom descriptor: the
task's type, priority, CPU claim, rate and placement.  DRCR's global
view (paper section 2.2) is a view over these contracts, and admission
policies decide whether a new contract fits next to the already-admitted
ones.
"""

from repro.core.errors import ContractError
from repro.rtos.task import TaskType

_NS_PER_SEC = 1_000_000_000


class RealTimeContract:
    """The real-time promises/requirements of one component."""

    __slots__ = ("name", "task_type", "priority", "cpu_usage",
                 "frequency_hz", "period_ns", "deadline_ns", "cpu")

    def __init__(self, name, task_type, priority=0, cpu_usage=0.0,
                 frequency_hz=None, deadline_ns=None, cpu=0,
                 min_interarrival_ns=None):
        self.name = name
        if not isinstance(task_type, TaskType):
            raise ContractError("task_type must be a TaskType, got %r"
                                % (task_type,))
        self.task_type = task_type
        if priority < 0:
            raise ContractError("priority must be >= 0, got %r"
                                % (priority,))
        self.priority = int(priority)
        if not 0.0 <= cpu_usage <= 1.0:
            raise ContractError(
                "cpuusage must be a fraction in [0, 1], got %r"
                % (cpu_usage,))
        self.cpu_usage = float(cpu_usage)
        if task_type is TaskType.PERIODIC:
            if not frequency_hz or frequency_hz <= 0:
                raise ContractError(
                    "periodic contract %s needs a positive frequency"
                    % name)
            self.frequency_hz = float(frequency_hz)
            self.period_ns = int(round(_NS_PER_SEC / self.frequency_hz))
        elif task_type is TaskType.SPORADIC:
            if not min_interarrival_ns or min_interarrival_ns <= 0:
                raise ContractError(
                    "sporadic contract %s needs a positive minimum "
                    "inter-arrival time" % name)
            # The MIA plays the period's role: it bounds the demand and
            # feeds the same schedulability analyses.
            self.period_ns = int(min_interarrival_ns)
            self.frequency_hz = _NS_PER_SEC / self.period_ns
        else:
            self.frequency_hz = None
            self.period_ns = None
        if deadline_ns is not None and deadline_ns <= 0:
            raise ContractError("deadline must be positive, got %r"
                                % (deadline_ns,))
        self.deadline_ns = deadline_ns if deadline_ns is not None \
            else self.period_ns
        if cpu < 0:
            raise ContractError("cpu must be >= 0, got %r" % (cpu,))
        self.cpu = int(cpu)

    @property
    def is_periodic(self):
        """Whether the contract describes a periodic task."""
        return self.task_type is TaskType.PERIODIC

    @property
    def is_rate_bound(self):
        """Whether the contract bounds its demand rate (periodic period
        or sporadic minimum inter-arrival) -- i.e. whether it is
        analysable by the periodic schedulability tests."""
        return self.period_ns is not None

    @property
    def wcet_ns(self):
        """Derived worst-case execution time: cpuusage * period.

        ``None`` for aperiodic contracts (no period to scale by).
        """
        if self.period_ns is None:
            return None
        return int(self.cpu_usage * self.period_ns)

    def as_dict(self):
        """Plain-data view (management interface, traces, tests)."""
        return {
            "name": self.name,
            "type": self.task_type.value,
            "priority": self.priority,
            "cpuusage": self.cpu_usage,
            "frequency_hz": self.frequency_hz,
            "period_ns": self.period_ns,
            "deadline_ns": self.deadline_ns,
            "cpu": self.cpu,
        }

    def __eq__(self, other):
        if not isinstance(other, RealTimeContract):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __hash__(self):
        return hash((self.name, self.task_type, self.priority,
                     self.cpu_usage, self.frequency_hz, self.deadline_ns,
                     self.cpu))

    def __repr__(self):
        if self.is_periodic:
            return ("RealTimeContract(%s, periodic %.6gHz, prio=%d, "
                    "cpu=%d, usage=%.3f)" % (
                        self.name, self.frequency_hz, self.priority,
                        self.cpu, self.cpu_usage))
        return "RealTimeContract(%s, aperiodic, prio=%d, cpu=%d)" % (
            self.name, self.priority, self.cpu)
