"""Real-time contracts.

A contract is the machine-checkable core of a DRCom descriptor: the
task's type, priority, CPU claim, rate and placement.  DRCR's global
view (paper section 2.2) is a view over these contracts, and admission
policies decide whether a new contract fits next to the already-admitted
ones.

Beyond the paper's point estimates, a contract may carry an optional
:class:`StochasticContract` -- the descriptor's ``<stochastic>`` clause
declaring the *distributions* of inter-arrival and execution times
(Nandi et al.'s stochastic contracts; Beugnard's "level 4" QoS tier).
The runtime :mod:`repro.monitor` checks these declarations online.
"""

import math

from repro.core.errors import ContractError
from repro.rtos.task import TaskType

_NS_PER_SEC = 1_000_000_000

#: Default sim-time epoch (ns) on which the runtime contract monitor
#: evaluates goodness-of-fit checks.  Lives here (not in
#: :mod:`repro.monitor`) so the static verifier can reason about
#: sample-rate feasibility without importing the runtime layer.
DEFAULT_MONITOR_EPOCH_NS = 1_000_000_000


class DistributionSpec:
    """One declared distribution (family + parameters, all in ns).

    Families:

    ``exponential``
        ``mean_ns`` > 0.
    ``uniform``
        ``min_ns`` >= 0, ``max_ns`` > ``min_ns``.
    ``normal``
        ``mean_ns`` > 0, ``std_ns`` > 0.
    """

    __slots__ = ("family", "mean_ns", "min_ns", "max_ns", "std_ns")

    FAMILIES = ("exponential", "uniform", "normal")

    def __init__(self, family, mean_ns=None, min_ns=None, max_ns=None,
                 std_ns=None):
        if family not in self.FAMILIES:
            raise ContractError(
                "unknown distribution family %r (supported: %s)"
                % (family, ", ".join(self.FAMILIES)))
        self.family = family
        self.mean_ns = None if mean_ns is None else float(mean_ns)
        self.min_ns = None if min_ns is None else float(min_ns)
        self.max_ns = None if max_ns is None else float(max_ns)
        self.std_ns = None if std_ns is None else float(std_ns)
        if family == "exponential":
            if self.mean_ns is None or self.mean_ns <= 0:
                raise ContractError(
                    "exponential distribution needs mean_ns > 0, got %r"
                    % (mean_ns,))
        elif family == "uniform":
            if self.min_ns is None or self.max_ns is None \
                    or self.min_ns < 0 or self.max_ns <= self.min_ns:
                raise ContractError(
                    "uniform distribution needs 0 <= min_ns < max_ns, "
                    "got min_ns=%r max_ns=%r" % (min_ns, max_ns))
        else:  # normal
            if self.mean_ns is None or self.mean_ns <= 0 \
                    or self.std_ns is None or self.std_ns <= 0:
                raise ContractError(
                    "normal distribution needs mean_ns > 0 and "
                    "std_ns > 0, got mean_ns=%r std_ns=%r"
                    % (mean_ns, std_ns))

    @property
    def mean(self):
        """The distribution's expected value (ns)."""
        if self.family == "uniform":
            return (self.min_ns + self.max_ns) / 2.0
        return self.mean_ns

    def cdf(self, x):
        """P(X <= x)."""
        if self.family == "exponential":
            if x <= 0:
                return 0.0
            return 1.0 - math.exp(-x / self.mean_ns)
        if self.family == "uniform":
            if x <= self.min_ns:
                return 0.0
            if x >= self.max_ns:
                return 1.0
            return (x - self.min_ns) / (self.max_ns - self.min_ns)
        # normal
        return 0.5 * (1.0 + math.erf(
            (x - self.mean_ns) / (self.std_ns * math.sqrt(2.0))))

    def quantile(self, p):
        """Inverse CDF (ns) for p in (0, 1)."""
        if not 0.0 < p < 1.0:
            raise ContractError("quantile needs p in (0, 1), got %r"
                                % (p,))
        if self.family == "exponential":
            return -self.mean_ns * math.log(1.0 - p)
        if self.family == "uniform":
            return self.min_ns + p * (self.max_ns - self.min_ns)
        # normal: bisect the CDF (monotone; no closed-form erfinv in
        # the stdlib).  10 * std brackets anything the monitor asks for.
        lo = self.mean_ns - 10.0 * self.std_ns
        hi = self.mean_ns + 10.0 * self.std_ns
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if self.cdf(mid) < p:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def as_dict(self):
        data = {"family": self.family}
        for key in ("mean_ns", "min_ns", "max_ns", "std_ns"):
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        return data

    def __eq__(self, other):
        if not isinstance(other, DistributionSpec):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __hash__(self):
        return hash((self.family, self.mean_ns, self.min_ns,
                     self.max_ns, self.std_ns))

    def __repr__(self):
        params = ", ".join("%s=%g" % (key, value)
                           for key, value in sorted(self.as_dict().items())
                           if key != "family")
        return "DistributionSpec(%s, %s)" % (self.family, params)


class StochasticContract:
    """The declared distributional promises of one component.

    At least one clause (``interarrival`` or ``exectime``) is required.
    ``tolerance`` is the significance level of the online
    goodness-of-fit test (a violation is declared when the p-value
    drops below it); ``min_samples`` is the fewest observations per
    epoch before a check is evaluated at all.
    """

    __slots__ = ("interarrival", "exectime", "tolerance", "min_samples")

    def __init__(self, interarrival=None, exectime=None, tolerance=0.01,
                 min_samples=32):
        if interarrival is None and exectime is None:
            raise ContractError(
                "stochastic contract needs at least one clause "
                "(interarrival or exectime)")
        for clause, spec in (("interarrival", interarrival),
                             ("exectime", exectime)):
            if spec is not None and not isinstance(spec, DistributionSpec):
                raise ContractError(
                    "%s clause must be a DistributionSpec, got %r"
                    % (clause, spec))
        self.interarrival = interarrival
        self.exectime = exectime
        tolerance = float(tolerance)
        if not 0.0 < tolerance <= 0.5:
            raise ContractError(
                "tolerance must be in (0, 0.5], got %r" % (tolerance,))
        self.tolerance = tolerance
        min_samples = int(min_samples)
        if min_samples < 8:
            raise ContractError(
                "min_samples must be >= 8, got %r" % (min_samples,))
        self.min_samples = min_samples

    def clauses(self):
        """The declared (name, DistributionSpec) pairs."""
        pairs = []
        if self.interarrival is not None:
            pairs.append(("interarrival", self.interarrival))
        if self.exectime is not None:
            pairs.append(("exectime", self.exectime))
        return pairs

    def as_dict(self):
        data = {"tolerance": self.tolerance,
                "min_samples": self.min_samples}
        for name, spec in self.clauses():
            data[name] = spec.as_dict()
        return data

    def __eq__(self, other):
        if not isinstance(other, StochasticContract):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __hash__(self):
        return hash((self.interarrival, self.exectime, self.tolerance,
                     self.min_samples))

    def __repr__(self):
        return "StochasticContract(%s, tolerance=%g, min_samples=%d)" % (
            "+".join(name for name, _ in self.clauses()),
            self.tolerance, self.min_samples)


class RealTimeContract:
    """The real-time promises/requirements of one component."""

    __slots__ = ("name", "task_type", "priority", "cpu_usage",
                 "frequency_hz", "period_ns", "deadline_ns", "cpu",
                 "stochastic")

    def __init__(self, name, task_type, priority=0, cpu_usage=0.0,
                 frequency_hz=None, deadline_ns=None, cpu=0,
                 min_interarrival_ns=None, stochastic=None):
        self.name = name
        if not isinstance(task_type, TaskType):
            raise ContractError("task_type must be a TaskType, got %r"
                                % (task_type,))
        self.task_type = task_type
        if priority < 0:
            raise ContractError("priority must be >= 0, got %r"
                                % (priority,))
        self.priority = int(priority)
        if not 0.0 <= cpu_usage <= 1.0:
            raise ContractError(
                "cpuusage must be a fraction in [0, 1], got %r"
                % (cpu_usage,))
        self.cpu_usage = float(cpu_usage)
        if task_type is TaskType.PERIODIC:
            if not frequency_hz or frequency_hz <= 0:
                raise ContractError(
                    "periodic contract %s needs a positive frequency"
                    % name)
            self.frequency_hz = float(frequency_hz)
            self.period_ns = int(round(_NS_PER_SEC / self.frequency_hz))
        elif task_type is TaskType.SPORADIC:
            if not min_interarrival_ns or min_interarrival_ns <= 0:
                raise ContractError(
                    "sporadic contract %s needs a positive minimum "
                    "inter-arrival time" % name)
            # The MIA plays the period's role: it bounds the demand and
            # feeds the same schedulability analyses.
            self.period_ns = int(min_interarrival_ns)
            self.frequency_hz = _NS_PER_SEC / self.period_ns
        else:
            self.frequency_hz = None
            self.period_ns = None
        if deadline_ns is not None and deadline_ns <= 0:
            raise ContractError("deadline must be positive, got %r"
                                % (deadline_ns,))
        self.deadline_ns = deadline_ns if deadline_ns is not None \
            else self.period_ns
        if cpu < 0:
            raise ContractError("cpu must be >= 0, got %r" % (cpu,))
        self.cpu = int(cpu)
        if stochastic is not None \
                and not isinstance(stochastic, StochasticContract):
            raise ContractError(
                "stochastic must be a StochasticContract, got %r"
                % (stochastic,))
        self.stochastic = stochastic

    @property
    def is_periodic(self):
        """Whether the contract describes a periodic task."""
        return self.task_type is TaskType.PERIODIC

    @property
    def is_rate_bound(self):
        """Whether the contract bounds its demand rate (periodic period
        or sporadic minimum inter-arrival) -- i.e. whether it is
        analysable by the periodic schedulability tests."""
        return self.period_ns is not None

    @property
    def wcet_ns(self):
        """Derived worst-case execution time: cpuusage * period.

        Rounded *up*: WCET is a demand bound, and truncating toward
        zero would let admission/RTA under-count by up to 1 ns per
        task.  ``None`` for aperiodic contracts (no period to scale
        by).
        """
        if self.period_ns is None:
            return None
        return int(math.ceil(self.cpu_usage * self.period_ns))

    def as_dict(self):
        """Plain-data view (management interface, traces, tests)."""
        data = {
            "name": self.name,
            "type": self.task_type.value,
            "priority": self.priority,
            "cpuusage": self.cpu_usage,
            "frequency_hz": self.frequency_hz,
            "period_ns": self.period_ns,
            "deadline_ns": self.deadline_ns,
            "cpu": self.cpu,
        }
        if self.stochastic is not None:
            data["stochastic"] = self.stochastic.as_dict()
        return data

    def __eq__(self, other):
        if not isinstance(other, RealTimeContract):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __hash__(self):
        return hash((self.name, self.task_type, self.priority,
                     self.cpu_usage, self.frequency_hz, self.deadline_ns,
                     self.cpu))

    def __repr__(self):
        if self.is_periodic:
            return ("RealTimeContract(%s, periodic %.6gHz, prio=%d, "
                    "cpu=%d, usage=%.3f)" % (
                        self.name, self.frequency_hz, self.priority,
                        self.cpu, self.cpu_usage))
        return "RealTimeContract(%s, aperiodic, prio=%d, cpu=%d)" % (
            self.name, self.priority, self.cpu)
