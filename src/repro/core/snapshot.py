"""DRCR state snapshot and warm restore.

The paper positions the framework for "downtime-free systems" (its
critique of Hartig & Zschaler's design is precisely that it has "no
formal design for how to deal with the dynamicity of component's
availability").  A production runtime also needs the complementary
capability: surviving a *framework* restart without losing the managed
configuration.  This module exports the DRCR's global view to plain
data (descriptor XML + lifecycle intent + live properties) and restores
it onto a fresh platform.

Restore semantics:

* components re-register from their descriptor XML;
* components that were DISABLED stay disabled; SUSPENDED components
  are re-activated and then re-suspended (their admission is retained,
  like before the restart);
* live property values (which may have drifted from descriptor
  defaults via set_property) are re-applied;
* admission is *re-decided* by the current policies -- a snapshot is
  a statement of intent, not a bypass of the resolving services.

Usage::

    from repro.core.snapshot import export_state, restore_state

    data = export_state(platform.drcr)       # plain dicts/lists/strs
    json.dump(data, open("state.json", "w")) # safe to persist/ship

    fresh = build_platform(seed=1)
    fresh.start_timer(1_000_000)
    report = restore_state(fresh.drcr, data)
    report["restored"]                       # re-admitted and active
    report["unsatisfied"]                    # intent the current
                                             # policies refused

The restore *report* is the interesting part: because admission is
re-decided, a snapshot taken on a 2-CPU platform may only partially
restore onto a 1-CPU one -- the report says exactly which components
made it (``restored``/``suspended``/``disabled``) and which did not
(``unsatisfied``, plus ``skipped`` for name collisions).
``SNAPSHOT_VERSION`` guards the format; incompatible payloads are
rejected, not guessed at.
"""

from repro.core.descriptor import ComponentDescriptor
from repro.core.lifecycle import ComponentState

#: Snapshot format version (bump on incompatible changes).
SNAPSHOT_VERSION = 1


def export_state(drcr):
    """Export the DRCR's managed configuration to a plain dict."""
    components = []
    for component in drcr.registry.all():
        entry = {
            "name": component.name,
            "descriptor_xml": component.descriptor.to_xml(),
            "state": component.state.value,
            "bundle": (component.bundle.symbolic_name
                       if component.bundle else None),
        }
        if component.container is not None:
            entry["properties"] = dict(
                component.container.ctx.properties)
        components.append(entry)
    return {
        "version": SNAPSHOT_VERSION,
        "time_ns": drcr.kernel.now,
        "policy": drcr.internal_policy.name,
        "components": components,
        "applications": drcr.applications(),
    }


def restore_state(drcr, state):
    """Re-deploy a snapshot onto (a possibly fresh) DRCR.

    Returns a report dict: which components were restored, which were
    not admitted under the current policies, and which names already
    existed.
    """
    if state.get("version") != SNAPSHOT_VERSION:
        raise ValueError("unsupported snapshot version: %r"
                         % (state.get("version"),))
    report = {"restored": [], "unsatisfied": [], "skipped": [],
              "disabled": [], "suspended": []}
    deferred = []
    for entry in state["components"]:
        name = entry["name"]
        if name in drcr.registry:
            report["skipped"].append(name)
            continue
        descriptor = ComponentDescriptor.from_xml(
            entry["descriptor_xml"])
        component = drcr.register_component(descriptor)
        deferred.append((component, entry))
    # Second pass: lifecycle intent and live properties, after the
    # whole population had its chance to resolve (chains!).
    for component, entry in deferred:
        saved_state = entry["state"]
        if saved_state == ComponentState.DISABLED.value:
            if component.state is not ComponentState.DISABLED:
                drcr.disable_component(component.name)
            report["disabled"].append(component.name)
            continue
        if component.state is ComponentState.ACTIVE:
            properties = entry.get("properties")
            if properties:
                component.container.ctx.properties.update(properties)
            if saved_state == ComponentState.SUSPENDED.value:
                drcr.suspend_component(component.name)
                report["suspended"].append(component.name)
            else:
                report["restored"].append(component.name)
        else:
            report["unsatisfied"].append(component.name)
    # Application groupings are remembered as intent.
    for app_name, members in state.get("applications", {}).items():
        drcr._applications[app_name] = list(members)
    return report
