"""DRCR state snapshot and warm restore.

The paper positions the framework for "downtime-free systems" (its
critique of Hartig & Zschaler's design is precisely that it has "no
formal design for how to deal with the dynamicity of component's
availability").  A production runtime also needs the complementary
capability: surviving a *framework* restart without losing the managed
configuration.  This module exports the DRCR's global view to plain
data (descriptor XML + lifecycle intent + live properties) and restores
it onto a fresh platform.  The same entry format is the unit of
transfer for cross-node component migration and failover
(:mod:`repro.cluster`).

Restore semantics:

* components re-register from their descriptor XML;
* components that were DISABLED stay disabled; SUSPENDED components
  are re-activated and then re-suspended (their admission is retained,
  like before the restart);
* live property values (which may have drifted from descriptor
  defaults via set_property) are re-applied **through the management
  path** (``container.set_property``), so the §3.2 command protocol
  and the implementation's ``on_command`` reconfiguration hook fire
  exactly as they would for an operator write -- the values land at
  the RT task's next command poll, not by mutating the property store
  behind its back;
* a component that is not ACTIVE after the restore pass (e.g. its
  provider arrives later) keeps its saved properties *stashed*: the
  moment the DRCR admits it, the stash applies them, so a
  late-resolving component comes back with its drifted values instead
  of descriptor defaults;
* admission is *re-decided* by the current policies -- a snapshot is
  a statement of intent, not a bypass of the resolving services.

Usage::

    from repro.core.snapshot import export_state, restore_state

    data = export_state(platform.drcr)       # plain dicts/lists/strs
    json.dump(data, open("state.json", "w")) # safe to persist/ship

    fresh = build_platform(seed=1)
    fresh.start_timer(1_000_000)
    report = restore_state(fresh.drcr, data)
    report["restored"]                       # re-admitted and active
    report["unsatisfied"]                    # intent the current
                                             # policies refused

The restore *report* is the interesting part: because admission is
re-decided, a snapshot taken on a 2-CPU platform may only partially
restore onto a 1-CPU one -- the report says exactly which components
made it (``restored``/``suspended``/``disabled``) and which did not
(``unsatisfied``, plus ``skipped`` for name collisions; ``deferred``
lists the unsatisfied components whose saved properties are stashed
for late admission).  ``SNAPSHOT_VERSION`` guards the format;
incompatible payloads are rejected, not guessed at.
"""

from repro.core.descriptor import ComponentDescriptor
from repro.core.events import ComponentEventType
from repro.core.lifecycle import ComponentState

#: Snapshot format version (bump on incompatible changes).
SNAPSHOT_VERSION = 1


def export_component_entry(component):
    """Export one managed component to a plain dict.

    The entry is the unit both :func:`export_state` and cross-node
    migration (:meth:`repro.cluster.Cluster.migrate`) ship around:
    descriptor XML, lifecycle intent, and the live property values.
    """
    entry = {
        "name": component.name,
        "descriptor_xml": component.descriptor.to_xml(),
        "state": component.state.value,
        "bundle": (component.bundle.symbolic_name
                   if component.bundle else None),
    }
    if component.container is not None:
        entry["properties"] = dict(component.container.ctx.properties)
    return entry


def export_state(drcr):
    """Export the DRCR's managed configuration to a plain dict."""
    return {
        "version": SNAPSHOT_VERSION,
        "time_ns": drcr.kernel.now,
        "policy": drcr.internal_policy.name,
        "components": [export_component_entry(component)
                       for component in drcr.registry.all()],
        "applications": drcr.applications(),
    }


def apply_live_properties(component, properties):
    """Apply saved property values through the management path.

    Routes every write through ``container.set_property`` (never the
    raw property store), so the asynchronous §3.2 command protocol and
    the implementation's ``on_command`` reconfiguration hook observe
    the restore exactly like an operator reconfiguration; the values
    become visible at the RT task's next command poll.
    """
    container = component.container
    for name, value in properties.items():
        container.set_property(name, value)


class PendingPropertyStash:
    """Saved properties waiting for their component's late admission.

    ``restore_state`` applies properties immediately for components
    the restore round admits, but a snapshot may contain components
    that only resolve later -- a consumer whose provider arrives in a
    future deployment, or a component the target's budget can only
    admit once something departs.  The stash subscribes to the DRCR's
    component-event log and applies the saved values through
    :func:`apply_live_properties` the moment the component is
    ACTIVATED, then forgets it; once empty it unsubscribes itself.
    """

    def __init__(self, drcr):
        self._drcr = drcr
        self._pending = {}
        self._subscribed = False

    def stash(self, name, properties):
        """Remember ``properties`` until ``name`` is next activated."""
        if not properties:
            return
        self._pending[name] = dict(properties)
        if not self._subscribed:
            self._drcr.events.listeners.add(self._on_event)
            self._subscribed = True

    def pending(self):
        """Names still waiting for admission, sorted."""
        return sorted(self._pending)

    def discard(self, name):
        """Forget one stashed component (e.g. it migrated away)."""
        self._pending.pop(name, None)
        self._maybe_unsubscribe()

    def _on_event(self, event):
        if event.event_type is not ComponentEventType.ACTIVATED:
            return
        properties = self._pending.pop(event.component, None)
        if properties is not None:
            component = self._drcr.registry.maybe_get(event.component)
            if component is not None \
                    and component.container is not None:
                apply_live_properties(component, properties)
        self._maybe_unsubscribe()

    def _maybe_unsubscribe(self):
        if self._subscribed and not self._pending:
            self._drcr.events.listeners.remove(self._on_event)
            self._subscribed = False

    def __repr__(self):
        return "PendingPropertyStash(%d pending)" % len(self._pending)


def restore_component_entry(drcr, entry, stash=None):
    """Re-deploy one exported entry onto ``drcr``.

    Returns the outcome bucket name (``"restored"``, ``"suspended"``,
    ``"disabled"``, ``"unsatisfied"`` or ``"skipped"``).  ``stash``
    (a :class:`PendingPropertyStash`) receives the saved properties
    when the component is not admitted right away; without one, a
    late-resolving component falls back to descriptor defaults.

    This is the single-component path cross-node migration and
    failover use; :func:`restore_state` drives it for whole snapshots.
    """
    name = entry["name"]
    if name in drcr.registry:
        return "skipped"
    descriptor = ComponentDescriptor.from_xml(entry["descriptor_xml"])
    component = drcr.register_component(descriptor)
    return _apply_entry_intent(drcr, component, entry, stash)


def _apply_entry_intent(drcr, component, entry, stash):
    """Second restore phase for one registered component: lifecycle
    intent plus live properties (immediately, or stashed)."""
    saved_state = entry["state"]
    if saved_state == ComponentState.DISABLED.value:
        if component.state is not ComponentState.DISABLED:
            drcr.disable_component(component.name)
        return "disabled"
    properties = entry.get("properties")
    if component.state is ComponentState.ACTIVE:
        if properties:
            apply_live_properties(component, properties)
        if saved_state == ComponentState.SUSPENDED.value:
            drcr.suspend_component(component.name)
            return "suspended"
        return "restored"
    if stash is not None:
        stash.stash(component.name, properties)
    return "unsatisfied"


def restore_entries(drcr, entries, stash=None):
    """Re-deploy a batch of exported entries in one coalesced round.

    Registration happens inside a single ``drcr.batch()`` (dependency
    chains resolve regardless of entry order); lifecycle intent and
    live properties apply in a second pass once the whole group has
    had its chance to resolve.  Returns the outcome report.  This is
    the group path cluster failover uses; :func:`restore_state` drives
    it for whole snapshots.
    """
    report = {"restored": [], "unsatisfied": [], "skipped": [],
              "disabled": [], "suspended": []}
    deferred = []
    with drcr.batch():
        for entry in entries:
            name = entry["name"]
            if name in drcr.registry:
                report["skipped"].append(name)
                continue
            descriptor = ComponentDescriptor.from_xml(
                entry["descriptor_xml"])
            component = drcr.register_component(descriptor)
            deferred.append((component, entry))
    for component, entry in deferred:
        outcome = _apply_entry_intent(drcr, component, entry, stash)
        report[outcome].append(component.name)
    return report


def restore_state(drcr, state):
    """Re-deploy a snapshot onto (a possibly fresh) DRCR.

    Returns a report dict: which components were restored, which were
    not admitted under the current policies (``unsatisfied``; those
    with saved properties are also listed ``deferred`` -- their values
    apply automatically on late admission), and which names already
    existed (``skipped``).
    """
    if state.get("version") != SNAPSHOT_VERSION:
        raise ValueError("unsupported snapshot version: %r"
                         % (state.get("version"),))
    stash = PendingPropertyStash(drcr)
    report = restore_entries(drcr, state["components"], stash=stash)
    report["deferred"] = stash.pending()
    # Application groupings are remembered as intent, through the
    # public API (the same one cluster failover uses).
    for app_name, members in state.get("applications", {}).items():
        drcr.define_application(app_name, members)
    return report
