"""DRCom XML descriptors (paper section 2.3, Figure 2).

"The distinguishing real-time aspect of DRCom is declared in an XML
document which describes the real-time related information" -- name,
task type, priority, frequency, CPU claim, ports and configuration
properties.  The reference sample (Figure 2)::

    <?xml version="1.0" encoding="UTF-8"?>
    <drt:component name="camera" desc="this is a smart camera controller"
                   type="periodic" enabled="true" cpuusage="0.1">
      <implementation bincode="ua.pats.demo.smartcamera.RTComponent"/>
      <periodictask frequence="100" runoncup="0" priority="2"/>
      <outport name="images" interface="RTAI.SHM" type="Byte" size="400"/>
      <inport name="xysize" interface="RTAI.SHM" type="Integer" size="400"/>
      <property name="prox00" type="Integer" value="6"/>
    </drt:component>

Parsing is tolerant of the paper's spelling quirks (``frequence`` /
``frequency``, ``runoncup`` / ``runoncpu``) and of the bare ``drt:``
prefix appearing without an ``xmlns:drt`` declaration, as in the paper's
own listing.
"""

import re
import xml.etree.ElementTree as ET

from repro.core.contracts import (DistributionSpec, RealTimeContract,
                                  StochasticContract)
from repro.core.errors import ContractError, DescriptorError
from repro.core.ports import PortDirection, PortSpec
from repro.rtos import names as rtai_names
from repro.rtos.errors import InvalidTaskNameError
from repro.rtos.task import TaskType

#: The descriptor namespace used when emitting XML.
DRT_NAMESPACE = "http://pats.ua.ac.be/xmlns/drt/v1.0.0"

_UNBOUND_PREFIX = re.compile(r"(</?)drt:")


class ComponentProperty:
    """One typed configuration property of a component."""

    __slots__ = ("name", "type_name", "value")

    _PARSERS = {
        "Integer": int,
        "Byte": int,
        "Long": int,
        "Float": float,
        "Double": float,
        "String": str,
        "Boolean": lambda text: str(text).strip().lower() == "true",
    }

    def __init__(self, name, type_name, raw_value):
        if type_name not in self._PARSERS:
            raise DescriptorError(
                "property %r has unsupported type %r (supported: %s)"
                % (name, type_name, ", ".join(sorted(self._PARSERS))))
        self.name = name
        self.type_name = type_name
        try:
            self.value = self._PARSERS[type_name](raw_value)
        except (TypeError, ValueError):
            raise DescriptorError(
                "property %r: cannot parse %r as %s"
                % (name, raw_value, type_name)) from None

    def __repr__(self):
        return "ComponentProperty(%s: %s = %r)" % (
            self.name, self.type_name, self.value)


class ComponentDescriptor:
    """Parsed, validated DRCom descriptor."""

    def __init__(self, name, implementation, task_type,
                 description="", enabled=True, cpu_usage=0.0,
                 frequency_hz=None, priority=0, cpu=0, deadline_ns=None,
                 min_interarrival_ns=None, ports=(), properties=(),
                 stochastic=None):
        if not name:
            raise DescriptorError("component name is required")
        self.name = name
        if not implementation:
            raise DescriptorError(
                "component %r: implementation bincode is required" % name)
        self.implementation = implementation
        self.description = description
        self.enabled = bool(enabled)
        self.ports = list(ports)
        self.properties = {prop.name: prop for prop in properties}
        if len(self.properties) != len(list(properties)):
            raise DescriptorError(
                "component %r declares a duplicate property" % name)
        self._check_ports()
        self.contract = RealTimeContract(
            self.task_name, task_type, priority=priority,
            cpu_usage=cpu_usage, frequency_hz=frequency_hz,
            deadline_ns=deadline_ns, cpu=cpu,
            min_interarrival_ns=min_interarrival_ns,
            stochastic=stochastic)

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def task_name(self):
        """The six-character RTAI task name for this component.

        "The name of a component must be globally unique because it is
        used as a task reference" (section 2.3); names longer than the
        RTAI limit are derived deterministically.
        """
        try:
            return rtai_names.validate_name(self.name)
        except InvalidTaskNameError:
            return rtai_names.derive_port_name(self.name, self.name)

    @property
    def task_type(self):
        """The contract's task type."""
        return self.contract.task_type

    @property
    def inports(self):
        """Declared inports (functional dependencies)."""
        return [p for p in self.ports if p.direction is PortDirection.IN]

    @property
    def outports(self):
        """Declared outports (provided data)."""
        return [p for p in self.ports if p.direction is PortDirection.OUT]

    def property_value(self, name, default=None):
        """A property's parsed value (or ``default``)."""
        prop = self.properties.get(name)
        return prop.value if prop is not None else default

    def property_dict(self):
        """All properties as a plain name -> value mapping."""
        return {name: prop.value for name, prop in self.properties.items()}

    def _check_ports(self):
        seen = set()
        for port in self.ports:
            key = (port.direction, port.name)
            if key in seen:
                raise DescriptorError(
                    "component %r declares duplicate %s %r"
                    % (self.name, port.direction.value, port.name))
            seen.add(key)

    # ------------------------------------------------------------------
    # XML
    # ------------------------------------------------------------------
    @classmethod
    def from_xml(cls, text):
        """Parse a descriptor document."""
        root = _parse_root(text)
        if _local(root.tag) != "component":
            raise DescriptorError(
                "root element must be drt:component, got %r" % root.tag)
        attrs = root.attrib
        name = attrs.get("name")
        if not name:
            raise DescriptorError("component element needs a name")
        task_type = _parse_task_type(attrs.get("type", "periodic"))
        enabled = attrs.get("enabled", "true").strip().lower() != "false"
        cpu_usage = _parse_float(attrs.get("cpuusage", "0"), "cpuusage")

        implementation = None
        frequency_hz = None
        min_interarrival_ns = None
        priority = 0
        cpu = 0
        deadline_ns = None
        ports = []
        properties = []
        stochastic = None
        for child in root:
            tag = _local(child.tag)
            if tag == "implementation":
                implementation = child.attrib.get("bincode")
            elif tag == "periodictask":
                if task_type is not TaskType.PERIODIC:
                    raise DescriptorError(
                        "component %r: periodictask element but type=%s"
                        % (name, task_type.value))
                frequency_hz = _parse_float(
                    _first(child.attrib, "frequence", "frequency"),
                    "frequence")
                cpu = int(_first(child.attrib, "runoncup", "runoncpu",
                                 default="0"))
                priority = int(child.attrib.get("priority", "0"))
                if "deadline_ns" in child.attrib:
                    deadline_ns = int(child.attrib["deadline_ns"])
            elif tag == "aperiodictask":
                if task_type is not TaskType.APERIODIC:
                    raise DescriptorError(
                        "component %r: aperiodictask element but type=%s"
                        % (name, task_type.value))
                cpu = int(_first(child.attrib, "runoncup", "runoncpu",
                                 default="0"))
                priority = int(child.attrib.get("priority", "0"))
                if "deadline_ns" in child.attrib:
                    deadline_ns = int(child.attrib["deadline_ns"])
            elif tag == "sporadictask":
                if task_type is not TaskType.SPORADIC:
                    raise DescriptorError(
                        "component %r: sporadictask element but type=%s"
                        % (name, task_type.value))
                min_interarrival_ns = int(_first(
                    child.attrib, "mininterarrival_ns",
                    "min_interarrival_ns"))
                cpu = int(_first(child.attrib, "runoncup", "runoncpu",
                                 default="0"))
                priority = int(child.attrib.get("priority", "0"))
                if "deadline_ns" in child.attrib:
                    deadline_ns = int(child.attrib["deadline_ns"])
            elif tag in ("inport", "outport"):
                direction = (PortDirection.IN if tag == "inport"
                             else PortDirection.OUT)
                ports.append(PortSpec(
                    child.attrib.get("name", ""),
                    direction,
                    child.attrib.get("interface", ""),
                    child.attrib.get("type", ""),
                    child.attrib.get("size", "0").strip(),
                ))
            elif tag == "property":
                properties.append(ComponentProperty(
                    child.attrib.get("name", ""),
                    child.attrib.get("type", "String"),
                    child.attrib.get("value", ""),
                ))
            elif tag == "stochastic":
                if stochastic is not None:
                    raise DescriptorError(
                        "component %r declares a duplicate stochastic "
                        "clause" % name)
                stochastic = _parse_stochastic(name, child)
            else:
                raise DescriptorError(
                    "component %r: unknown element <%s>" % (name, tag))
        if task_type is TaskType.PERIODIC and frequency_hz is None:
            raise DescriptorError(
                "periodic component %r needs a periodictask element"
                % name)
        if task_type is TaskType.SPORADIC \
                and min_interarrival_ns is None:
            raise DescriptorError(
                "sporadic component %r needs a sporadictask element"
                % name)
        return cls(
            name=name,
            implementation=implementation,
            task_type=task_type,
            description=attrs.get("desc", ""),
            enabled=enabled,
            cpu_usage=cpu_usage,
            frequency_hz=frequency_hz,
            priority=priority,
            cpu=cpu,
            deadline_ns=deadline_ns,
            min_interarrival_ns=min_interarrival_ns,
            ports=ports,
            properties=properties,
            stochastic=stochastic,
        )

    def to_xml(self):
        """Serialise back to descriptor XML (round-trips from_xml)."""
        lines = ['<?xml version="1.0" encoding="UTF-8"?>']
        lines.append(
            '<drt:component xmlns:drt="%s" name="%s" desc="%s" type="%s" '
            'enabled="%s" cpuusage="%s">' % (
                DRT_NAMESPACE, _xml_escape(self.name),
                _xml_escape(self.description),
                self.contract.task_type.value,
                "true" if self.enabled else "false",
                repr(self.contract.cpu_usage)))
        lines.append('  <implementation bincode="%s"/>'
                     % _xml_escape(self.implementation))
        if self.contract.is_periodic:
            deadline = ""
            if self.contract.deadline_ns != self.contract.period_ns:
                deadline = ' deadline_ns="%d"' % self.contract.deadline_ns
            lines.append(
                '  <periodictask frequence="%s" runoncpu="%d" '
                'priority="%d"%s/>' % (repr(self.contract.frequency_hz),
                                       self.contract.cpu,
                                       self.contract.priority, deadline))
        elif self.contract.task_type is TaskType.SPORADIC:
            deadline = ""
            if self.contract.deadline_ns != self.contract.period_ns:
                deadline = ' deadline_ns="%d"' % self.contract.deadline_ns
            lines.append(
                '  <sporadictask mininterarrival_ns="%d" runoncpu="%d" '
                'priority="%d"%s/>' % (self.contract.period_ns,
                                       self.contract.cpu,
                                       self.contract.priority, deadline))
        else:
            deadline = ""
            if self.contract.deadline_ns is not None:
                deadline = ' deadline_ns="%d"' % self.contract.deadline_ns
            lines.append(
                '  <aperiodictask runoncpu="%d" priority="%d"%s/>'
                % (self.contract.cpu, self.contract.priority, deadline))
        stochastic = self.contract.stochastic
        if stochastic is not None:
            lines.append(
                '  <stochastic tolerance="%s" min_samples="%d">'
                % (repr(stochastic.tolerance), stochastic.min_samples))
            for clause, spec in stochastic.clauses():
                params = "".join(
                    ' %s="%s"' % (key, repr(spec.as_dict()[key]))
                    for key in _DIST_PARAM_KEYS
                    if key in spec.as_dict())
                lines.append('    <%s dist="%s"%s/>'
                             % (clause, spec.family, params))
            lines.append('  </stochastic>')
        for port in self.ports:
            lines.append(
                '  <%s name="%s" interface="%s" type="%s" size="%d"/>'
                % (port.direction.value, port.name, port.interface.value,
                   port.data_type, port.size))
        for prop in self.properties.values():
            lines.append(
                '  <property name="%s" type="%s" value="%s"/>'
                % (_xml_escape(prop.name), prop.type_name,
                   _xml_escape(str(prop.value))))
        lines.append("</drt:component>")
        return "\n".join(lines)

    def __repr__(self):
        return "ComponentDescriptor(%s, %s, %d ports)" % (
            self.name, self.contract.task_type.value, len(self.ports))


# ----------------------------------------------------------------------
# parsing helpers
# ----------------------------------------------------------------------
def parse_descriptor_tree(text):
    """Parse descriptor XML to an ElementTree root, tolerating the
    paper's quirks (stray ``<? xml`` space, undeclared ``drt:``
    prefix) exactly like :meth:`ComponentDescriptor.from_xml`.

    Raw-tree access is what the static verifier
    (:mod:`repro.lint`) uses for schema checks the tolerant parser
    cannot express -- e.g. attributes it would silently ignore.
    """
    return _parse_root(text)


def local_tag(tag):
    """Public alias of the namespace-stripping helper (lint uses it to
    compare element names independent of the ``drt:`` prefix)."""
    return _local(tag)


def _parse_root(text):
    text = text.strip()
    # The paper's own listing starts "<? xml ...?>" (stray space) and
    # uses the drt: prefix without declaring it; tolerate both.
    text = text.replace("<? xml", "<?xml", 1)
    try:
        return ET.fromstring(text)
    except ET.ParseError:
        stripped = _UNBOUND_PREFIX.sub(r"\1", text)
        try:
            return ET.fromstring(stripped)
        except ET.ParseError as error:
            raise DescriptorError("descriptor XML does not parse: %s"
                                  % error) from None


def _local(tag):
    """Strip ``{namespace}`` and ``prefix:`` from a tag name."""
    if "}" in tag:
        tag = tag.rsplit("}", 1)[1]
    if ":" in tag:
        tag = tag.rsplit(":", 1)[1]
    return tag


_DIST_PARAM_KEYS = ("mean_ns", "min_ns", "max_ns", "std_ns")


def _parse_stochastic(component, element):
    """Parse a ``<stochastic>`` element into a StochasticContract."""
    clauses = {}
    for child in element:
        tag = _local(child.tag)
        if tag not in ("interarrival", "exectime"):
            raise DescriptorError(
                "component %r: unknown stochastic clause <%s>"
                % (component, tag))
        if tag in clauses:
            raise DescriptorError(
                "component %r declares a duplicate <%s> clause"
                % (component, tag))
        attrs = child.attrib
        family = attrs.get("dist")
        params = {}
        for key in _DIST_PARAM_KEYS:
            if key in attrs:
                params[key] = _parse_float(attrs[key], key)
        try:
            clauses[tag] = DistributionSpec(family, **params)
        except ContractError as error:
            raise DescriptorError(
                "component %r: bad <%s> clause: %s"
                % (component, tag, error)) from None
    tolerance = _parse_float(element.attrib.get("tolerance", "0.01"),
                             "tolerance")
    try:
        min_samples = int(element.attrib.get("min_samples", "32"))
    except ValueError:
        raise DescriptorError(
            "component %r: cannot parse min_samples=%r"
            % (component, element.attrib.get("min_samples"))) from None
    try:
        return StochasticContract(
            interarrival=clauses.get("interarrival"),
            exectime=clauses.get("exectime"),
            tolerance=tolerance, min_samples=min_samples)
    except ContractError as error:
        raise DescriptorError(
            "component %r: bad stochastic clause: %s"
            % (component, error)) from None


def _parse_task_type(text):
    for member in TaskType:
        if member.value == text:
            return member
    raise DescriptorError(
        "component type must be periodic or aperiodic, got %r" % (text,))


def _parse_float(text, what):
    try:
        return float(text)
    except (TypeError, ValueError):
        raise DescriptorError("cannot parse %s=%r" % (what, text)) \
            from None


def _first(attrib, *keys, default=None):
    for key in keys:
        if key in attrib:
            return attrib[key]
    if default is not None:
        return default
    raise DescriptorError("missing attribute (one of %s)"
                          % ", ".join(keys))


def _xml_escape(text):
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))
