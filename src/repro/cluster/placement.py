"""Cluster-level placement: from "which CPU" to "(node, CPU)".

:mod:`repro.core.placement` answers *which CPU* on one node; the
federation needs the outer question first: *which node*.  The
:class:`ClusterPlacementService` extends the same best-fit shape to
two dimensions -- it scans every (node, CPU) slot across the
membership, using each node's
:meth:`~repro.core.registry.ComponentRegistry.declared_utilization`
exactly like the single-node policies do, and returns the least-loaded
slot that still fits the candidate's declared budget.

The split of authority mirrors the single-node design: the cluster
picks the node (and *predicts* the CPU for reporting and capacity
math), then the chosen node's own placement service
(:class:`~repro.core.placement.BestFitPlacement` by default) re-pins
the CPU at admission, and its resolving services re-decide admission.
A placement choice here is a routing decision, never an admission
bypass.
"""

from repro.core.placement import component_is_pinned  # noqa: F401  (re-export)


class ClusterPlacementService:
    """Best-fit over every (node, CPU) slot in the membership."""

    #: Policy name for traces and reports.
    name = "cluster-best-fit"

    def __init__(self, cluster, cap=1.0):
        self.cluster = cluster
        self.cap = cap

    def choose(self, cpu_usage, exclude=(), extra_load=None):
        """The least-loaded ``(node_name, cpu)`` that fits
        ``cpu_usage``, or ``None`` when nothing does.

        ``exclude`` names nodes not to consider (the dead node during
        failover, the source during migration target choice).
        ``extra_load`` maps ``(node_name, cpu)`` to budget already
        promised but not yet visible in the registries -- failover
        plans a whole group before deploying any of it, and tallies
        its own choices there so the group spreads instead of piling
        onto one slot.
        """
        best = None
        best_load = None
        extra_load = extra_load or {}
        for node in self.cluster.alive_nodes():
            if node.name in exclude:
                continue
            registry = node.drcr.registry
            for cpu in range(node.kernel.config.num_cpus):
                load = registry.declared_utilization(cpu) \
                    + extra_load.get((node.name, cpu), 0.0)
                if load + cpu_usage > self.cap + 1e-12:
                    continue
                if best_load is None or load < best_load:
                    best = (node.name, cpu)
                    best_load = load
        return best

    def choose_node(self, cpu_usage, exclude=(), extra_load=None):
        """Node-name half of :meth:`choose` (or ``None``)."""
        slot = self.choose(cpu_usage, exclude=exclude,
                           extra_load=extra_load)
        return slot[0] if slot is not None else None

    def choose_node_for_group(self, total_usage, exclude=(),
                              extra_node_load=None):
        """The node with the most total headroom that fits a whole
        co-located group (a wired application: its ports resolve in
        one node's kernel, so the members must land together).

        Node capacity is ``num_cpus * cap``; the node's own placement
        service spreads the members over its CPUs at admission.
        ``extra_node_load`` maps node name to budget already promised
        to earlier groups in the same plan."""
        best = None
        best_load = None
        extra_node_load = extra_node_load or {}
        for node in self.cluster.alive_nodes():
            if node.name in exclude:
                continue
            registry = node.drcr.registry
            num_cpus = node.kernel.config.num_cpus
            load = sum(registry.declared_utilization(cpu)
                       for cpu in range(num_cpus)) \
                + extra_node_load.get(node.name, 0.0)
            if load + total_usage > num_cpus * self.cap + 1e-12:
                continue
            if best_load is None or load < best_load:
                best = node.name
                best_load = load
        return best

    def utilization_map(self):
        """Declared utilization per (node, CPU), for reports."""
        return {
            node.name: {
                cpu: node.drcr.registry.declared_utilization(cpu)
                for cpu in range(node.kernel.config.num_cpus)
            }
            for node in self.cluster.alive_nodes()
        }

    def __repr__(self):
        return "ClusterPlacementService(cap=%.2f)" % self.cap
