"""SWIM-style gossip membership and failure detection.

The PR-5 detector beat a full mesh: every node shipped its complete
component export to every peer every interval -- O(n²) messages that
top out at a few dozen nodes.  This module replaces it with the SWIM
shape (probe + indirect ping + epidemic dissemination, bounded
fanout), so per-interval traffic is O(n · fanout):

* **Probing.**  Each protocol period every live node probes
  ``probe_fanout`` peers chosen by a seeded shuffled round-robin
  (stream ``cluster/swim/<node>``, so runs reproduce exactly).  A
  probed node acks; probe and ack both ride the real transport, so
  latency, loss and partitions gate them like any other traffic.
* **Indirect ping.**  A probe that goes unacked for a full period is
  escalated: the prober asks ``indirect_fanout`` intermediaries to
  ping the target on its behalf (``ping_req`` -> ``ping`` ->
  ``ping_ack``, relayed back).  Only when the indirect round also
  comes back empty is the target marked **suspect**.
* **Suspicion, incarnation, refutation.**  Suspicion is gossiped
  epidemically: every probe/ack carries up to ``gossip_limit``
  piggybacked ``(subject, status, incarnation)`` updates with a
  retransmission budget.  A node that hears *itself* suspected at an
  incarnation at least its own refutes: it increments its incarnation
  and gossips ``alive``, which cancels the suspicion -- a briefly-slow
  node talks its way back in instead of being fenced.
* **Death.**  A node is declared dead only when it is suspect *and*
  no live peer has heard from it for ``miss_limit`` intervals (the
  same silence deadline as before), with the observer guard intact: a
  last survivor is never declared dead by its own deafness.  The
  terminal transitions are unchanged -- ``declare_dead`` hands the
  node to the cluster failover path, and a declared-dead node heard
  again is fenced.
* **Fencing retries.**  ``fence`` is no longer fire-and-forget: the
  coordinator re-sends it under a
  :class:`~repro.faults.recovery.BackoffPolicy` (capped exponential
  delay) until the node's undeploy-all ack arrives, counting attempts
  in ``cluster.fence_attempts_total``.

Snapshots left the heartbeat path entirely: probe traffic carries no
component state.  Replication is **pull-based anti-entropy** -- each
node versions its export, announces version changes to the coordinator
in a tiny ``digest`` message, and the coordinator pulls the full
snapshot only when its copy is stale (plus a slow one-node-per-tick
rotation that recovers lost digests).  See
:meth:`repro.cluster.federation.Cluster.pull_snapshot`.

One modelling note: the service is a single shared object (all nodes
live on one simulator), so member *state* -- incarnations, suspicion,
``last_seen`` -- is held once, as the converged view gossip would
reach.  Every *transition* of that state, though, is driven by a
message that actually traversed the transport: evidence of life is a
delivered probe/ack, suspicion spreads only on piggybacked gossip, a
refutation happens only when the suspect actually receives a message
carrying its own suspicion.  Partitions therefore behave exactly as
they would with per-node views: an isolated node can neither refresh
its ``last_seen`` nor hear the suspicion it would need to refute.
"""

from repro.faults.recovery import BackoffPolicy
from repro.sim.engine import MSEC

#: Member statuses carried in gossip updates.
ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"


class _MemberState:
    """One member's protocol state (converged gossip view)."""

    __slots__ = ("status", "incarnation", "suspected_at_ns")

    def __init__(self):
        self.status = ALIVE
        self.incarnation = 0
        self.suspected_at_ns = None

    def __repr__(self):
        return "_MemberState(%s, inc=%d)" % (self.status,
                                             self.incarnation)


class MembershipService:
    """The cluster-level SWIM prober, gossiper and failure detector."""

    def __init__(self, cluster, heartbeat_interval_ns=10 * MSEC,
                 miss_limit=3, probe_fanout=2, indirect_fanout=2,
                 gossip_limit=6, fence_backoff=None):
        if heartbeat_interval_ns <= 0:
            raise ValueError("heartbeat interval must be positive")
        if miss_limit < 1:
            raise ValueError("miss limit must be >= 1")
        if probe_fanout < 1 or indirect_fanout < 1:
            raise ValueError("fanouts must be >= 1")
        self.cluster = cluster
        self.sim = cluster.sim
        self.heartbeat_interval_ns = int(heartbeat_interval_ns)
        self.miss_limit = int(miss_limit)
        self.probe_fanout = int(probe_fanout)
        self.indirect_fanout = int(indirect_fanout)
        self.gossip_limit = int(gossip_limit)
        self.fence_backoff = fence_backoff or BackoffPolicy(
            initial_ns=self.heartbeat_interval_ns, factor=2.0,
            max_delay_ns=8 * self.heartbeat_interval_ns,
            max_attempts=64, jitter=0.1)
        self.last_seen = {}
        self.states = {}
        self.declared_dead = set()
        self._fenced = set()
        self._fence_acked = set()
        self._fence_attempts = {}
        self._started = False
        # The generation token: start() bumps it and every pending
        # callback carries the epoch it was scheduled under, so a
        # stop()/start() pair can never leave two live beat chains.
        self._epoch = 0
        self._pid = 0
        self._awaiting = {}       # pid -> [prober, target, mode, sent]
        self._probe_order = {}    # node -> shuffled peer list
        self._probe_pos = {}      # node -> cursor into its list
        self._gossip = {}         # node -> {subject: [status, inc, ttl]}
        self._notified_versions = {}   # node -> last digest version sent
        self._anti_entropy_ring = []   # rotation for coordinator pulls
        metrics = self.sim.telemetry.registry("cluster")
        self._m_sent = metrics.counter("heartbeats_sent_total")
        self._m_received = metrics.counter("heartbeats_received_total")
        self._m_probes = metrics.counter("probes_sent_total")
        self._m_acks = metrics.counter("probe_acks_total")
        self._m_indirect = metrics.counter("indirect_probes_total")
        self._m_suspicions = metrics.counter("suspicions_total")
        self._m_refutations = metrics.counter("refutations_total")
        self._m_gossip = metrics.counter("gossip_updates_total")
        self._m_rounds = metrics.counter("gossip_rounds_total")
        self._m_dead = metrics.counter("nodes_declared_dead_total")
        self._m_fenced = metrics.counter("nodes_fenced_total")
        self._m_fence_attempts = metrics.counter(
            "fence_attempts_total")
        self._m_alive = metrics.gauge("alive_nodes")
        self._m_suspected = metrics.gauge("suspected_nodes")

    @property
    def deadline_ns(self):
        """Silence longer than this, while suspect, is death."""
        return self.miss_limit * self.heartbeat_interval_ns

    def start(self):
        """Seed everyone as just-seen and start the protocol period."""
        if self._started:
            return self
        self._started = True
        self._epoch += 1
        now = self.sim.now
        for name in self.cluster.nodes:
            self.last_seen.setdefault(name, now)
            self._state(name)
        self._refresh_gauges()
        for name in sorted(self._fenced - self._fence_acked):
            # A restart killed the old epoch's retry chain; re-arm it.
            self.sim.schedule(self.heartbeat_interval_ns,
                              self._send_fence, name, self._epoch,
                              label="cluster:fence-retry")
        self.sim.schedule(self.heartbeat_interval_ns, self._tick,
                          self._epoch, label="cluster:gossip")
        return self

    def stop(self):
        """Stop probing and checking (pending ticks become no-ops)."""
        self._started = False

    # ------------------------------------------------------------------
    # observations
    # ------------------------------------------------------------------
    def is_dead(self, name):
        """Whether the detector has declared ``name`` dead."""
        return name in self.declared_dead

    def is_suspect(self, name):
        """Whether ``name`` is currently under (unrefuted) suspicion."""
        state = self.states.get(name)
        return state is not None and state.status == SUSPECT

    def incarnation(self, name):
        """``name``'s current incarnation number."""
        return self._state(name).incarnation

    def members(self):
        """Names currently in membership (not declared dead)."""
        return [name for name in self.cluster.nodes
                if name not in self.declared_dead]

    def note_join(self, name):
        """Seed a late joiner as just-seen.

        Without this, the first ``_check`` after a join would read the
        missing ``last_seen`` entry as silence-since-t0 and declare the
        newcomer dead on arrival."""
        self.last_seen[name] = self.sim.now
        self._state(name)
        self._enqueue_everywhere(name, ALIVE,
                                 self._state(name).incarnation)
        self._refresh_gauges()

    def readmit(self, name):
        """Operator override: let a fenced node back into membership
        (it starts empty; the failed-over components stay put)."""
        self.declared_dead.discard(name)
        self._fenced.discard(name)
        self._fence_acked.discard(name)
        self._fence_attempts.pop(name, None)
        self.last_seen[name] = self.sim.now
        state = self._state(name)
        state.status = ALIVE
        state.suspected_at_ns = None
        state.incarnation += 1
        self._enqueue_everywhere(name, ALIVE, state.incarnation)
        self._refresh_gauges()

    # ------------------------------------------------------------------
    # the protocol period
    # ------------------------------------------------------------------
    def _tick(self, epoch):
        if not self._started or epoch != self._epoch:
            return  # a stale chain from before a stop()/start()
        self._m_rounds.inc()
        now = self.sim.now
        nodes = self.cluster.nodes
        for name in nodes:
            if name not in self.last_seen:
                self.note_join(name)  # joined since the last tick
        self._escalate_pending(now)
        for name, node in nodes.items():
            # A declared-dead node that is actually still running does
            # not know it was declared dead -- it keeps probing, which
            # is exactly how a false positive gets noticed and fenced.
            if not node.alive:
                continue
            for target in self._probe_targets(name):
                self._send_probe(name, target, now)
        self._announce_digests(nodes)
        self._anti_entropy(nodes)
        self._check(now)
        self.sim.schedule(self.heartbeat_interval_ns, self._tick,
                          epoch, label="cluster:gossip")

    def _probe_targets(self, name):
        """``probe_fanout`` peers from ``name``'s shuffled round-robin
        rotation (rebuilt when membership changes)."""
        peers = [peer for peer in self.cluster.nodes
                 if peer != name and peer not in self.declared_dead]
        order = self._probe_order.get(name)
        if order is None or len(order) != len(peers) \
                or set(order) != set(peers):
            order = peers
            self._stream(name).shuffle(order)
            self._probe_order[name] = order
            self._probe_pos[name] = 0
        if not order:
            return ()
        targets = []
        pos = self._probe_pos[name]
        for _ in range(min(self.probe_fanout, len(order))):
            if pos >= len(order):
                self._stream(name).shuffle(order)
                pos = 0
            targets.append(order[pos])
            pos += 1
        self._probe_pos[name] = pos
        return targets

    def _send_probe(self, prober, target, now):
        self._pid += 1
        self._awaiting[self._pid] = [prober, target, "direct", now]
        self._m_probes.inc()
        self._m_sent.inc()
        self.cluster.transport.send(prober, target, "probe", {
            "pid": self._pid,
            "gossip": self._gossip_out(prober),
        })

    def _escalate_pending(self, now):
        """Unacked probes age into indirect pings, unacked indirect
        pings age into suspicion."""
        interval = self.heartbeat_interval_ns
        for pid in [pid for pid, entry in self._awaiting.items()
                    if now - entry[3] >= interval]:
            prober, target, mode, _ = self._awaiting.pop(pid)
            if target in self.declared_dead:
                continue
            prober_node = self.cluster.nodes.get(prober)
            if prober_node is None or not prober_node.alive:
                continue
            if mode == "direct" \
                    and self._send_indirect(prober, target, now):
                continue
            # The indirect round came back empty too (or nobody could
            # relay): suspect the target at its current incarnation.
            self._suspect(target, self._state(target).incarnation,
                          via=prober)

    def _send_indirect(self, prober, target, now):
        """Ask up to ``indirect_fanout`` intermediaries to ping
        ``target`` for ``prober``; False when nobody can relay."""
        candidates = [peer for peer in self.cluster.nodes
                      if peer not in (prober, target)
                      and peer not in self.declared_dead]
        if not candidates:
            return False
        self._stream(prober).shuffle(candidates)
        for relay in candidates[:self.indirect_fanout]:
            self._pid += 1
            self._awaiting[self._pid] = [prober, target, "indirect",
                                         now]
            self._m_indirect.inc()
            self._m_sent.inc()
            self.cluster.transport.send(prober, relay, "ping_req", {
                "pid": self._pid,
                "target": target,
                "gossip": self._gossip_out(prober),
            })
        return True

    # ------------------------------------------------------------------
    # wire handling (called from ClusterNode.handle_message)
    # ------------------------------------------------------------------
    def on_wire(self, receiver, message):
        """One delivered membership message (``probe``/``probe_ack``/
        ``ping_req``/``ping``/``ping_ack``)."""
        src = message.src
        payload = message.payload
        self._m_received.inc()
        if src in self.declared_dead:
            # A fenced node's traffic carries no authority -- but its
            # very existence means the death was a false positive.
            self._fence(src)
            return
        self.last_seen[src] = self.sim.now
        self._merge_gossip(receiver, payload.get("gossip") or ())
        transport = self.cluster.transport
        kind = message.kind
        if kind == "probe":
            self._m_sent.inc()
            transport.send(receiver, src, "probe_ack", {
                "pid": payload["pid"],
                "gossip": self._gossip_out(receiver),
            })
        elif kind == "probe_ack":
            self._on_ack(payload["pid"])
        elif kind == "ping_req":
            # receiver relays the probe on the origin's behalf.
            self._m_sent.inc()
            transport.send(receiver, payload["target"], "ping", {
                "pid": payload["pid"],
                "origin": src,
                "gossip": self._gossip_out(receiver),
            })
        elif kind == "ping":
            self._m_sent.inc()
            transport.send(receiver, src, "ping_ack", {
                "pid": payload["pid"],
                "origin": payload["origin"],
                "gossip": self._gossip_out(receiver),
            })
        elif kind == "ping_ack":
            # receiver relays the ack back to the origin; the origin
            # books it like a direct ack.
            self._m_sent.inc()
            transport.send(receiver, payload["origin"], "probe_ack", {
                "pid": payload["pid"],
                "gossip": self._gossip_out(receiver),
            })

    def _on_ack(self, pid):
        entry = self._awaiting.pop(pid, None)
        self._m_acks.inc()
        if entry is None:
            return  # late ack; already escalated or acked via a twin
        target = entry[1]
        if target not in self.declared_dead:
            # Indirect evidence counts: the target answered somebody.
            self.last_seen[target] = self.sim.now

    # ------------------------------------------------------------------
    # gossip dissemination
    # ------------------------------------------------------------------
    def _gossip_out(self, name):
        """Up to ``gossip_limit`` piggybacked updates from ``name``'s
        queue, spending one retransmission each."""
        queue = self._gossip.get(name)
        if not queue:
            return ()
        out = []
        for subject in list(queue)[:self.gossip_limit]:
            update = queue[subject]
            out.append([subject, update[0], update[1]])
            update[2] -= 1
            if update[2] <= 0:
                del queue[subject]
        self._m_gossip.inc(len(out))
        return out

    def _enqueue(self, name, subject, status, incarnation):
        """Queue one update for piggybacking on ``name``'s traffic."""
        queue = self._gossip.setdefault(name, {})
        current = queue.get(subject)
        if current is not None and current[0] == status \
                and current[1] >= incarnation:
            return
        queue[subject] = [status, incarnation, self._gossip_ttl()]

    def _enqueue_everywhere(self, subject, status, incarnation):
        """Seed an update into every live member's queue (used for the
        authoritative transitions: death, join, readmit)."""
        for name, node in self.cluster.nodes.items():
            if node.alive and name not in self.declared_dead:
                self._enqueue(name, subject, status, incarnation)

    def _gossip_ttl(self):
        """Retransmissions per update: ~log2(n) plus slack, the SWIM
        dissemination budget."""
        n = max(2, len(self.cluster.nodes))
        return max(3, n.bit_length() + 2)

    def _merge_gossip(self, receiver, updates):
        nodes = self.cluster.nodes
        for subject, status, incarnation in updates:
            if subject not in nodes:
                continue
            state = self._state(subject)
            if subject == receiver and status in (SUSPECT, DEAD):
                # Somebody thinks *we* are gone.  If we are alive and
                # unfenced, refute: bump the incarnation past theirs
                # and gossip the new life.
                node = nodes.get(receiver)
                if node is not None and node.alive \
                        and receiver not in self.declared_dead \
                        and incarnation >= state.incarnation:
                    state.incarnation = incarnation + 1
                    if state.status == SUSPECT:
                        state.status = ALIVE
                        state.suspected_at_ns = None
                        self._refresh_gauges()
                    self._m_refutations.inc()
                    self.sim.trace.record(
                        self.sim.now, "cluster", action="refute",
                        node=receiver, incarnation=state.incarnation)
                    self._enqueue(receiver, receiver, ALIVE,
                                  state.incarnation)
                continue
            if status == SUSPECT:
                if incarnation >= state.incarnation \
                        and state.status == ALIVE \
                        and subject not in self.declared_dead:
                    self._suspect(subject, incarnation, via=receiver)
                elif state.status == SUSPECT:
                    self._enqueue(receiver, subject, SUSPECT,
                                  incarnation)
            elif status == ALIVE:
                if incarnation > state.incarnation:
                    state.incarnation = incarnation
                    if state.status == SUSPECT:
                        state.status = ALIVE
                        state.suspected_at_ns = None
                        self._refresh_gauges()
                    self._enqueue(receiver, subject, ALIVE,
                                  incarnation)

    # ------------------------------------------------------------------
    # suspicion and death
    # ------------------------------------------------------------------
    def _suspect(self, name, incarnation, via):
        state = self._state(name)
        if state.status != ALIVE or name in self.declared_dead:
            return
        now = self.sim.now
        if now - self.last_seen.get(name, 0) \
                < self.heartbeat_interval_ns:
            return  # fresh contact beats a stale escalation
        state.status = SUSPECT
        state.suspected_at_ns = now
        self._m_suspicions.inc()
        self._refresh_gauges()
        self.sim.trace.record(now, "cluster", action="node_suspect",
                              node=name, by=via,
                              incarnation=incarnation)
        # The suspicion spreads from the suspector; en route it also
        # reaches the subject, which is its chance to refute.
        self._enqueue(via, name, SUSPECT, incarnation)

    def _check(self, now):
        observers = [name for name, node in self.cluster.nodes.items()
                     if node.alive and name not in self.declared_dead]
        deadline = self.deadline_ns
        for name in list(self.cluster.nodes):
            if name in self.declared_dead:
                continue
            if not any(peer != name for peer in observers):
                continue  # nobody left who could have heard it
            state = self.states.get(name)
            if state is None or state.status != SUSPECT:
                continue
            if now - self.last_seen.get(name, now) > deadline:
                self.declare_dead(name)

    def declare_dead(self, name):
        """Declare a node dead and trigger the cluster failover path."""
        if name in self.declared_dead:
            return
        self.declared_dead.add(name)
        state = self._state(name)
        state.status = DEAD
        state.suspected_at_ns = None
        self._m_dead.inc()
        self._refresh_gauges()
        self._enqueue_everywhere(name, DEAD, state.incarnation)
        self.sim.trace.record(self.sim.now, "cluster",
                              action="node_dead", node=name,
                              last_seen=self.last_seen.get(name, 0))
        self.cluster._on_node_dead(name, self.last_seen.get(name, 0))

    # ------------------------------------------------------------------
    # fencing (retried until acked)
    # ------------------------------------------------------------------
    def _fence(self, name):
        if name in self._fenced:
            return
        self._fenced.add(name)
        self._m_fenced.inc()
        self.sim.trace.record(self.sim.now, "cluster",
                              action="node_fenced", node=name)
        self._fence_attempts[name] = 0
        self._send_fence(name, self._epoch)

    def _send_fence(self, name, epoch):
        if not self._started or epoch != self._epoch \
                or name in self._fence_acked \
                or name not in self._fenced:
            return  # acked, readmitted, or the service moved on
        attempt = self._fence_attempts.get(name, 0) + 1
        self._fence_attempts[name] = attempt
        self._m_fence_attempts.inc()
        self.cluster.transport.send(
            self.cluster.coordinator_name, name, "fence",
            {"reply_to": self.cluster.coordinator_name})
        if attempt >= self.fence_backoff.max_attempts:
            return  # out of retries; the node stays untrusted anyway
        delay = self.fence_backoff.delay_ns(
            attempt, self.sim.rng.stream("cluster/fence"))
        self.sim.schedule(delay, self._send_fence, name, epoch,
                          label="cluster:fence-retry")

    def note_fence_ack(self, name):
        """The fenced node confirmed it dropped everything."""
        self._fence_acked.add(name)
        self._fence_attempts.pop(name, None)

    def fence_acked(self, name):
        """Whether ``name``'s undeploy-all ack has arrived."""
        return name in self._fence_acked

    # ------------------------------------------------------------------
    # replication announcements (pull-based anti-entropy)
    # ------------------------------------------------------------------
    def _announce_digests(self, nodes):
        """Each live member whose export version moved sends the
        coordinator a tiny digest; the coordinator pulls the snapshot
        only when its copy is stale."""
        for name, node in nodes.items():
            if not node.alive or name in self.declared_dead:
                continue
            version = node.snapshot_version()
            if self._notified_versions.get(name) != version:
                self._notified_versions[name] = version
                self._m_sent.inc()
                self.cluster.transport.send(
                    name, self.cluster.coordinator_name, "digest",
                    {"node": name, "version": version})

    def _anti_entropy(self, nodes):
        """One coordinator pull per tick, rotating over the members --
        recovers digests the loss gate ate, at O(1) per interval."""
        ring = self._anti_entropy_ring
        if not ring:
            ring = [name for name, node in nodes.items()
                    if node.alive and name not in self.declared_dead]
            if not ring:
                return
            self._anti_entropy_ring = ring
        name = ring.pop()
        node = nodes.get(name)
        if node is not None and node.alive \
                and name not in self.declared_dead:
            self.cluster.pull_snapshot(name)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _state(self, name):
        state = self.states.get(name)
        if state is None:
            state = self.states[name] = _MemberState()
        return state

    def _stream(self, name):
        return self.sim.rng.stream("cluster/swim/%s" % name)

    def _refresh_gauges(self):
        self._m_alive.set(len(self.members()))
        self._m_suspected.set(sum(
            1 for state in self.states.values()
            if state.status == SUSPECT))

    def __repr__(self):
        return "MembershipService(%d members, %d suspect, %d dead)" % (
            len(self.members()),
            sum(1 for s in self.states.values()
                if s.status == SUSPECT),
            len(self.declared_dead))
