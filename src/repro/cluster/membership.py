"""Heartbeat-based membership and failure detection.

The cluster learns about node death the only way a distributed system
can: silence.  Every heartbeat interval each live node beats to every
peer over the transport (so heartbeats are subject to the same
latency, jitter, drops and partitions as any other traffic); a peer
that receives a beat notes the sender as seen.  The detector -- one
periodic check in the :class:`~repro.rtos.watchdog.Watchdog` arm/check
style -- declares a node dead when *no* surviving peer has heard it
for ``miss_limit`` intervals, then hands the name to the cluster's
failover path.

Heartbeats double as the replication channel for snapshot-based
failover: each beat carries the sender's exported component entries
(:func:`repro.core.snapshot.export_component_entry` format) plus its
application groupings, so at declaration time the cluster holds a
recent copy of everything the dead node ran -- live property drift
included.  One export per node per beat; peers share the same payload
object.

A node declared dead that is heard again (a healed partition, i.e. a
false positive) is *fenced*: the cluster has already re-deployed its
components elsewhere, so the returnee is told to drop everything it
runs (``fence`` message -> :meth:`NodeManagementService.undeploy_all`)
and stays out of membership until an operator re-admits it
(:meth:`MembershipService.readmit`).
"""

from repro.sim.engine import MSEC


class MembershipService:
    """The cluster-level heartbeat emitter and failure detector."""

    def __init__(self, cluster, heartbeat_interval_ns=10 * MSEC,
                 miss_limit=3):
        if heartbeat_interval_ns <= 0:
            raise ValueError("heartbeat interval must be positive")
        if miss_limit < 1:
            raise ValueError("miss limit must be >= 1")
        self.cluster = cluster
        self.sim = cluster.sim
        self.heartbeat_interval_ns = int(heartbeat_interval_ns)
        self.miss_limit = int(miss_limit)
        self.last_seen = {}
        self.declared_dead = set()
        self._fenced = set()
        self._started = False
        metrics = self.sim.telemetry.registry("cluster")
        self._m_sent = metrics.counter("heartbeats_sent_total")
        self._m_received = metrics.counter("heartbeats_received_total")
        self._m_dead = metrics.counter("nodes_declared_dead_total")
        self._m_fenced = metrics.counter("nodes_fenced_total")
        self._m_alive = metrics.gauge("alive_nodes")

    @property
    def deadline_ns(self):
        """Silence longer than this is death."""
        return self.miss_limit * self.heartbeat_interval_ns

    def start(self):
        """Seed everyone as just-seen and start beating."""
        if self._started:
            return self
        self._started = True
        now = self.sim.now
        for name in self.cluster.nodes:
            self.last_seen.setdefault(name, now)
        self._refresh_alive_gauge()
        self.sim.schedule(self.heartbeat_interval_ns, self._beat,
                          label="cluster:heartbeat")
        return self

    def stop(self):
        """Stop beating and checking (pending beat becomes a no-op)."""
        self._started = False

    # ------------------------------------------------------------------
    # observations
    # ------------------------------------------------------------------
    def is_dead(self, name):
        """Whether the detector has declared ``name`` dead."""
        return name in self.declared_dead

    def members(self):
        """Names currently in membership (not declared dead)."""
        return [name for name in self.cluster.nodes
                if name not in self.declared_dead]

    def note_heartbeat(self, src, observer, payload):
        """A peer (``observer``) received ``src``'s heartbeat."""
        self._m_received.inc()
        self.last_seen[src] = self.sim.now
        if src in self.declared_dead:
            self._fence(src)
            return  # a fenced node's snapshot is stale by definition
        snapshot = payload.get("snapshot")
        if snapshot is not None:
            self.cluster.note_replica(src, snapshot)

    def readmit(self, name):
        """Operator override: let a fenced node back into membership
        (it starts empty; the failed-over components stay put)."""
        self.declared_dead.discard(name)
        self._fenced.discard(name)
        self.last_seen[name] = self.sim.now
        self._refresh_alive_gauge()

    # ------------------------------------------------------------------
    # the periodic beat (watchdog arm/check idiom)
    # ------------------------------------------------------------------
    def _beat(self):
        if not self._started:
            return
        transport = self.cluster.transport
        for node in self.cluster.nodes.values():
            # A declared-dead node that is actually still running does
            # not know it was declared dead -- it keeps beating, which
            # is exactly how a false positive gets noticed and fenced.
            if not node.alive:
                continue
            payload = {"snapshot": {
                "components": node.export_entries(),
                "applications": node.drcr.applications(),
            }}
            for peer_name in self.cluster.nodes:
                if peer_name == node.name:
                    continue
                transport.send(node.name, peer_name, "heartbeat",
                               payload)
                self._m_sent.inc()
        self._check()
        self.sim.schedule(self.heartbeat_interval_ns, self._beat,
                          label="cluster:heartbeat")

    def _check(self):
        now = self.sim.now
        observers = [name for name, node in self.cluster.nodes.items()
                     if node.alive and name not in self.declared_dead]
        for name in list(self.cluster.nodes):
            if name in self.declared_dead:
                continue
            if not any(peer != name for peer in observers):
                continue  # nobody left who could have heard it
            if now - self.last_seen.get(name, 0) > self.deadline_ns:
                self.declare_dead(name)

    def declare_dead(self, name):
        """Declare a node dead and trigger the cluster failover path."""
        if name in self.declared_dead:
            return
        self.declared_dead.add(name)
        self._m_dead.inc()
        self._refresh_alive_gauge()
        self.sim.trace.record(self.sim.now, "cluster",
                              action="node_dead", node=name,
                              last_seen=self.last_seen.get(name, 0))
        self.cluster._on_node_dead(name, self.last_seen.get(name, 0))

    def _fence(self, name):
        if name in self._fenced:
            return
        self._fenced.add(name)
        self._m_fenced.inc()
        self.sim.trace.record(self.sim.now, "cluster",
                              action="node_fenced", node=name)
        self.cluster.transport.send(
            self.cluster.coordinator_name, name, "fence",
            {"reply_to": self.cluster.coordinator_name})

    def _refresh_alive_gauge(self):
        self._m_alive.set(len(self.members()))

    def __repr__(self):
        return "MembershipService(%d members, %d dead)" % (
            len(self.members()), len(self.declared_dead))
