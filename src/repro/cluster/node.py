"""One federation member: a full DRCom platform behind a network name.

A :class:`ClusterNode` owns the same stack :func:`repro.platform
.build_platform` assembles -- an :class:`~repro.rtos.kernel.RTKernel`,
an OSGi :class:`~repro.osgi.framework.Framework` and a
:class:`~repro.core.drcr.DRCR` -- but on a *shared* simulator, so any
number of nodes advance in lock-step on one timeline.  It duck-types
:class:`~repro.platform.Platform` (``sim``/``kernel``/``framework``/
``drcr``/``telemetry``), which is what lets the fault engine
(:mod:`repro.faults`) arm its per-platform injectors against a single
node unchanged.

Remote operations follow the paper's §2.4 shape, lifted one level: the
node registers a :class:`NodeManagementService` in its *own* OSGi
service registry, and every remote per-component operation is routed
through the component's registered
:class:`~repro.core.management.ComponentManagementService`, located
with an LDAP filter on ``drcom.name`` -- exactly how a local §2.4
client would find it.  The transport handler is a thin parser that
ends in those service calls.
"""

from repro.core.drcr import DRCR
from repro.core.management import MANAGEMENT_SERVICE_INTERFACE
from repro.core.placement import BestFitPlacement
from repro.core.snapshot import (
    PendingPropertyStash,
    export_component_entry,
    restore_component_entry,
    restore_entries,
)
from repro.osgi.framework import Framework
from repro.rtos.kernel import KernelConfig, RTKernel
from repro.sim.engine import MSEC

#: OSGi service interface the node management service registers under.
NODE_MANAGEMENT_INTERFACE = "drcom.cluster.NodeManagement"

#: The §2.4 operations a remote ``mgmt`` message may invoke.
MANAGEMENT_OPS = frozenset(
    ("suspend", "resume", "get_property", "set_property", "get_status"))


class NodeManagementService:
    """Node-scope management: deploy/undeploy entries, route §2.4 ops.

    Registered in the node's own service registry (under
    :data:`NODE_MANAGEMENT_INTERFACE`), so local bundles and the remote
    deployment protocol share one entry point.
    """

    def __init__(self, node):
        self._node = node

    def deploy_entry(self, entry):
        """Deploy one exported snapshot entry; admission is re-decided
        by this node's resolving services.  Returns the outcome bucket
        (see :func:`repro.core.snapshot.restore_component_entry`)."""
        return restore_component_entry(self._node.drcr, entry,
                                       stash=self._node.stash)

    def deploy_entries(self, entries):
        """Deploy a co-located group in one coalesced reconfiguration
        round (:func:`repro.core.snapshot.restore_entries`): wired
        applications arrive whole, so their ports resolve here."""
        return restore_entries(self._node.drcr, entries,
                               stash=self._node.stash)

    def undeploy(self, name):
        """Remove one component; returns ``"undeployed"`` or
        ``"absent"``."""
        drcr = self._node.drcr
        if name not in drcr.registry:
            return "absent"
        self._node.stash.discard(name)
        drcr.unregister_component(name)
        return "undeployed"

    def undeploy_all(self):
        """Remove every managed component (fencing); returns the
        undeployed names."""
        drcr = self._node.drcr
        names = [component.name for component in drcr.registry.all()]
        with drcr.batch():
            for name in names:
                self._node.stash.discard(name)
                drcr.unregister_component(name)
        return names

    def component_management(self, name):
        """Locate a component's §2.4 management service through the
        OSGi registry (LDAP filter on ``drcom.name``)."""
        registry = self._node.framework.registry
        reference = registry.get_reference(
            MANAGEMENT_SERVICE_INTERFACE, "(drcom.name=%s)" % name)
        if reference is None:
            raise LookupError("no management service for %r on %s"
                              % (name, self._node.name))
        return registry.get_service(reference)

    def manage(self, name, op, *args):
        """Invoke one §2.4 operation on a component's management
        service."""
        if op not in MANAGEMENT_OPS:
            raise ValueError("unknown management op %r" % (op,))
        return getattr(self.component_management(name), op)(*args)

    def get_status(self):
        """Node status: liveness plus the component state map."""
        drcr = self._node.drcr
        return {
            "node": self._node.name,
            "alive": self._node.alive,
            "components": {component.name: component.state.value
                           for component in drcr.registry.all()},
        }

    def __repr__(self):
        return "NodeManagementService(%s)" % self._node.name


class ClusterNode:
    """A federation member: kernel + framework + DRCR on a shared sim."""

    def __init__(self, name, sim, transport, kernel_config=None,
                 internal_policy=None, container_factory=None,
                 placement=None):
        self.name = name
        self.sim = sim
        self.transport = transport
        self.kernel = RTKernel(sim, kernel_config or KernelConfig())
        self.framework = Framework(telemetry=sim.telemetry)
        self.drcr = DRCR(self.framework, self.kernel,
                         internal_policy=internal_policy,
                         container_factory=container_factory)
        self.drcr.attach()
        # Node-local CPU choice; the cluster layer picks the node.
        self.drcr.set_placement_service(
            placement if placement is not None else BestFitPlacement())
        self.stash = PendingPropertyStash(self.drcr)
        self.management = NodeManagementService(self)
        self.framework.registry.register(
            NODE_MANAGEMENT_INTERFACE, self.management,
            properties={"drcom.node": name})
        self.membership = None  # wired by the Cluster
        self.alive = True
        self._snapshot_cache = None
        self._snapshot_version = 0
        transport.register(name, self.handle_message)

    # ------------------------------------------------------------------
    # Platform duck-typing (fault engine, telemetry helpers)
    # ------------------------------------------------------------------
    @property
    def now(self):
        """Current simulated time (ns)."""
        return self.sim.now

    @property
    def telemetry(self):
        """The shared :class:`~repro.telemetry.metrics.Telemetry`."""
        return self.sim.telemetry

    def run_for(self, duration_ns):
        """Advance the *shared* simulator (every node advances)."""
        return self.sim.run_for(duration_ns)

    def start_timer(self, period_ns=MSEC):
        """Start this node's hardware timer."""
        self.kernel.start_timer(period_ns)

    # ------------------------------------------------------------------
    # state export / liveness
    # ------------------------------------------------------------------
    def export_entries(self):
        """Snapshot entries for every component this node manages."""
        return [export_component_entry(component)
                for component in self.drcr.registry.all()]

    def snapshot_version(self):
        """Version counter over this node's exportable state.

        Bumped whenever the export (components, live properties,
        application groupings) differs from the cached copy -- the
        membership layer announces version changes to the coordinator
        in a tiny ``digest`` instead of shipping the full snapshot to
        every peer every beat."""
        snapshot = {
            "components": self.export_entries(),
            "applications": self.drcr.applications(),
        }
        if snapshot != self._snapshot_cache:
            self._snapshot_cache = snapshot
            self._snapshot_version += 1
        return self._snapshot_version

    def snapshot(self):
        """``(version, snapshot)`` of the current exportable state."""
        version = self.snapshot_version()
        return version, self._snapshot_cache

    def crash(self):
        """Fail-stop the node: off the wire, stack torn down.

        Survivors only learn of this through missed heartbeats -- the
        transport drops undelivered messages, it does not notify."""
        if not self.alive:
            return
        self.alive = False
        self.transport.unregister(self.name)
        self.kernel.stop_timer()
        self.drcr.detach()
        self.framework.shutdown()

    # ------------------------------------------------------------------
    # the remote protocol
    # ------------------------------------------------------------------
    def handle_message(self, message):
        """Dispatch one delivered transport message."""
        if not self.alive:
            return
        kind = message.kind
        payload = message.payload
        reply_to = payload.get("reply_to", message.src)
        if kind in ("probe", "probe_ack", "ping_req", "ping",
                    "ping_ack"):
            if self.membership is not None:
                self.membership.on_wire(self.name, message)
        elif kind == "snapshot_pull":
            version, snapshot = self.snapshot()
            if version != payload.get("have"):
                self.transport.send(self.name, reply_to,
                                    "snapshot_push", {
                                        "node": self.name,
                                        "version": version,
                                        "snapshot": snapshot,
                                    })
        elif kind == "deploy":
            outcome = self.management.deploy_entry(payload["entry"])
            self.transport.send(self.name, reply_to, "deploy_ack", {
                "name": payload["entry"]["name"],
                "node": self.name,
                "outcome": outcome,
            })
        elif kind == "deploy_app":
            report = self.management.deploy_entries(payload["entries"])
            if payload.get("application"):
                self.drcr.define_application(payload["application"],
                                             payload["members"])
            self.transport.send(self.name, reply_to, "deploy_app_ack", {
                "application": payload.get("application"),
                "node": self.name,
                "report": report,
            })
        elif kind == "undeploy":
            outcome = self.management.undeploy(payload["name"])
            self.transport.send(self.name, reply_to, "undeploy_ack", {
                "name": payload["name"],
                "node": self.name,
                "outcome": outcome,
            })
        elif kind == "migrate_out":
            self._handle_migrate_out(payload, reply_to)
        elif kind == "migrate_in":
            outcome = self.management.deploy_entry(payload["entry"])
            self.transport.send(self.name, reply_to, "migrate_ack", {
                "migration_id": payload["migration_id"],
                "name": payload["entry"]["name"],
                "node": self.name,
                "outcome": outcome,
            })
        elif kind == "mgmt":
            self._handle_mgmt(payload, reply_to)
        elif kind == "fence":
            names = self.management.undeploy_all()
            self.transport.send(self.name, reply_to, "fence_ack", {
                "node": self.name,
                "undeployed": names,
            })

    def _handle_migrate_out(self, payload, reply_to):
        """Source side of a migration: export, hand off, withdraw.

        The entry is exported *before* the local undeploy (the live
        properties must survive the teardown), shipped to the target,
        and copied to the coordinator as its retry ledger."""
        name = payload["name"]
        migration_id = payload["migration_id"]
        if name not in self.drcr.registry:
            self.transport.send(self.name, reply_to, "migrate_ack", {
                "migration_id": migration_id,
                "name": name,
                "node": self.name,
                "outcome": "absent",
            })
            return
        entry = export_component_entry(
            self.drcr.registry.maybe_get(name))
        self.transport.send(self.name, reply_to, "migrate_begun", {
            "migration_id": migration_id,
            "entry": entry,
        })
        self.management.undeploy(name)
        self.transport.send(self.name, payload["dst"], "migrate_in", {
            "migration_id": migration_id,
            "entry": entry,
            "reply_to": reply_to,
        })

    def _handle_mgmt(self, payload, reply_to):
        """Remote §2.4 operation: parse, route through the registered
        management service, reply with result or error."""
        request_id = payload.get("request_id")
        try:
            result = self.management.manage(
                payload["component"], payload["op"],
                *payload.get("args", ()))
            reply = {"request_id": request_id, "node": self.name,
                     "ok": True, "result": result}
        except Exception as error:
            reply = {"request_id": request_id, "node": self.name,
                     "ok": False, "error": str(error)}
        self.transport.send(self.name, reply_to, "mgmt_reply", reply)

    def __repr__(self):
        return "ClusterNode(%s, %s, %d components)" % (
            self.name, "alive" if self.alive else "down",
            len(self.drcr.registry))
