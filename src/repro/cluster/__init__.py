"""Multi-node DRCR federation.

The paper's runtime manages one platform.  This package federates N of
them: each :class:`~repro.cluster.node.ClusterNode` runs its own
kernel + OSGi framework + DRCR on a *shared* simulator, connected by a
:class:`~repro.cluster.transport.MessageTransport` with configurable
per-link latency, jitter and loss.  On top sit SWIM-style gossip
membership with probe/suspect/refute failure detection
(:mod:`~repro.cluster.membership`), a remote
deployment/management protocol routed through the paper's §2.4
management services (:mod:`~repro.cluster.node`), cluster-level
(node, CPU) placement (:mod:`~repro.cluster.placement`), and
snapshot-based migration plus automatic failover
(:mod:`~repro.cluster.federation`).

Entry points::

    from repro.cluster import Cluster, LinkSpec

    cluster = Cluster(("node0", "node1", "node2"), seed=7)
    cluster.deploy(descriptor_xml)            # placement picks a node
    cluster.run_for(100 * MSEC)
    cluster.migrate("SENS00", dst="node2")    # state travels along
    cluster.crash_node("node1")               # probes go unanswered...
    cluster.run_for(100 * MSEC)               # ...failover re-homes it
    cluster.report()

``python -m repro cluster`` runs a scripted demo of exactly that
sequence.
"""

from repro.cluster.federation import Cluster, ClusterError
from repro.cluster.membership import MembershipService
from repro.cluster.node import (
    NODE_MANAGEMENT_INTERFACE,
    ClusterNode,
    NodeManagementService,
)
from repro.cluster.placement import ClusterPlacementService
from repro.cluster.transport import LinkSpec, Message, MessageTransport

__all__ = [
    "Cluster",
    "ClusterError",
    "ClusterNode",
    "ClusterPlacementService",
    "LinkSpec",
    "MembershipService",
    "Message",
    "MessageTransport",
    "NodeManagementService",
    "NODE_MANAGEMENT_INTERFACE",
]
