"""The cluster: multi-node DRCR federation on one simulator.

:class:`Cluster` assembles N :class:`~repro.cluster.node.ClusterNode`
platforms on a shared :class:`~repro.sim.engine.Simulator`, wires them
through a :class:`~repro.cluster.transport.MessageTransport`, starts
the SWIM-style :class:`~repro.cluster.membership.MembershipService`,
and acts as the management plane: it owns the home map (component ->
node), the descriptor catalog, and the per-node state replicas it
pulls on demand (nodes announce export-version changes in tiny
``digest`` messages; the coordinator answers with ``snapshot_pull``
and a rotating anti-entropy sweep recovers lost digests -- full
snapshots never ride the n² heartbeat mesh anymore).

The coordinator is itself a transport endpoint (``control``): every
deployment, migration and §2.4 management call it issues is a message
subject to the same link model as node-to-node traffic, and the
replies (`deploy_ack`, `migrate_ack`, `mgmt_reply`, ...) come back the
same way.  It is intentionally a *centralised* management plane -- the
paper's runtime has exactly one management interface per platform, and
this lifts that shape to fleet scope without inventing a consensus
protocol the paper does not have.

Migration (snapshot-based, at-most-once wire + coordinator retries):

1. coordinator -> source: ``migrate_out`` (name, target, id);
2. source exports the entry (:func:`repro.core.snapshot
   .export_component_entry` -- live properties included), copies it to
   the coordinator (``migrate_begun``, the retry ledger), undeploys
   locally, and forwards ``migrate_in`` to the target;
3. target re-deploys through its own resolving services (admission is
   *re-decided*; saved properties stash for late admission) and acks;
4. the coordinator measures initiation-to-ack latency; a missing ack
   retries ``migrate_in`` from the ledger under a
   :class:`~repro.faults.recovery.BackoffPolicy`, re-choosing the
   target when the original died; exhausted retries fall back to a
   local failover-style redeploy so the component is never lost.

Failover: when membership declares a node dead, every component from
the dead node's last replica is re-planned across the survivors by the
:class:`~repro.cluster.placement.ClusterPlacementService` and
re-deployed **in one ``drcr.batch()`` round per target**
(:func:`repro.core.snapshot.restore_entries`), so each survivor runs a
single coalesced reconfiguration.  Application groupings are re-declared
through the public :meth:`~repro.core.drcr.DRCR.define_application`.
"""

import itertools

from repro.cluster.membership import MembershipService
from repro.cluster.node import ClusterNode
from repro.cluster.placement import ClusterPlacementService
from repro.cluster.transport import MessageTransport
from repro.core.descriptor import ComponentDescriptor
from repro.core.lifecycle import ComponentState
from repro.core.snapshot import restore_entries
from repro.faults.recovery import BackoffPolicy
from repro.lint.diagnostics import Severity
from repro.rtos.kernel import KernelConfig
from repro.sim.engine import MSEC, Simulator

#: Migration initiation-to-ack latency buckets (ns).
MIGRATION_LATENCY_BOUNDS_NS = (
    1_000_000, 2_000_000, 5_000_000, 10_000_000, 20_000_000,
    50_000_000, 100_000_000, 500_000_000,
)

#: Crash-to-declaration detection latency buckets (ns).
FAILOVER_DETECT_BOUNDS_NS = (
    5_000_000, 10_000_000, 20_000_000, 50_000_000, 100_000_000,
    200_000_000, 500_000_000, 1_000_000_000,
)

#: Entry outcomes that mean "the target now owns the component".
_PLACED_OUTCOMES = frozenset(
    ("restored", "suspended", "disabled", "unsatisfied"))


class ClusterError(Exception):
    """A cluster-level operation could not be carried out."""


def _group_entries(entries, applications):
    """Partition entries into co-location groups.

    Members of one application (transitively, when applications
    overlap) form one group -- their wiring only resolves on a single
    node.  Everything else is a singleton group."""
    group_of = {}  # component name -> group id
    merged = {}    # group id -> set of names
    next_id = itertools.count()
    for members in applications.values():
        ids = {group_of[m] for m in members if m in group_of}
        target = min(ids) if ids else next(next_id)
        names = merged.setdefault(target, set())
        for gid in ids:
            if gid != target:
                names |= merged.pop(gid)
        names.update(members)
        for name in names:
            group_of[name] = target
    groups = {}
    singles = []
    for entry in entries:
        gid = group_of.get(entry["name"])
        if gid is None:
            singles.append([entry])
        else:
            groups.setdefault(gid, []).append(entry)
    return list(groups.values()) + singles


class PlanGuard:
    """Pre-deploy gate: lint the fleet's would-be plan first.

    The fleet-scope mirror of
    :class:`~repro.lint.resolver.LintResolvingService`'s differential
    blame: the current :meth:`Cluster.export_plan` baseline is linted
    and fingerprinted, the candidate plan (baseline plus the requested
    deployment) is linted, and the deployment is vetoed only for *new*
    findings at or above ``fail_on`` -- pre-existing fleet debt never
    blocks unrelated work.  Unlike the resolver, findings are
    fingerprinted by ``(code, component)`` without the message: plan
    messages quote fleet-wide load numbers that legitimately drift
    when anything deploys, and a drifted number is not a new defect.
    Failover re-homing is mandatory and is never blocked;
    :meth:`note_failover` runs an advisory lint of the post-failover
    plan and records what it finds.

    Telemetry lands in the ``lint`` registry:
    ``plan_checks_total``, ``plan_rejections_total``,
    ``plan_failover_checks_total`` and one ``plan_code.<code>``
    counter per reported code (``docs/OBSERVABILITY.md``).
    """

    def __init__(self, cluster, fail_on=Severity.ERROR,
                 families=None):
        self.cluster = cluster
        self.fail_on = Severity.parse(fail_on) \
            if isinstance(fail_on, str) else fail_on
        self.families = tuple(families) if families else None
        metrics = cluster.sim.telemetry.registry("lint")
        self._metrics = metrics
        self._m_checks = metrics.counter("plan_checks_total")
        self._m_rejections = metrics.counter("plan_rejections_total")
        self._m_failover_checks = metrics.counter(
            "plan_failover_checks_total")

    def _lint(self, document):
        # Lazy: repro.lint.engine transitively imports this package.
        from repro.lint.engine import lint_plan
        if self.families is None:
            return lint_plan(document, location="<plan-guard>")
        return lint_plan(document, location="<plan-guard>",
                         families=self.families)

    @staticmethod
    def _fingerprints(result):
        return {(d.code, d.component) for d in result.diagnostics}

    def check_deploy(self, descriptor_xmls, node, application=None,
                     members=None):
        """New findings a deployment would introduce.

        Builds the candidate plan (the live fleet's exported plan plus
        ``descriptor_xmls`` homed on ``node``, and the application
        grouping when given), lints both, and returns the candidate's
        findings at or above ``fail_on`` that the baseline does not
        already carry.  Empty list = the deployment may proceed."""
        self._m_checks.inc()
        baseline = self._lint(self.cluster.export_plan())
        candidate = self.cluster.export_plan()
        for deployment in candidate["deployments"]:
            if deployment["node"] == node:
                target = deployment
                break
        else:
            target = {"node": node, "components": []}
            candidate["deployments"].append(target)
        target["components"].extend(
            {"xml": xml} for xml in descriptor_xmls)
        if application is not None and members is not None:
            candidate["applications"][application] = list(members)
        result = self._lint(candidate)
        known = self._fingerprints(baseline)
        new = [diagnostic
               for diagnostic in result.at_or_above(self.fail_on)
               if (diagnostic.code, diagnostic.component)
               not in known]
        if new:
            self._m_rejections.inc()
            for diagnostic in new:
                self._metrics.counter(
                    "plan_code.%s" % diagnostic.code).inc()
        return new

    def note_failover(self, dead_node):
        """Advisory lint after failover re-homed ``dead_node``.

        Failover is never vetoed -- the components are already
        homeless -- but the resulting fleet shape is linted so the
        telemetry (and the returned findings) say whether the fleet
        is still one crash away from stranding work."""
        self._m_failover_checks.inc()
        result = self._lint(self.cluster.export_plan())
        findings = result.at_or_above(self.fail_on)
        for diagnostic in findings:
            self._metrics.counter(
                "plan_code.%s" % diagnostic.code).inc()
        return findings


class _Migration:
    """Coordinator-side state of one in-flight migration."""

    __slots__ = ("id", "name", "src", "dst", "entry", "initiated_ns",
                 "completed_ns", "attempts", "done", "outcome")

    def __init__(self, migration_id, name, src, dst, initiated_ns):
        self.id = migration_id
        self.name = name
        self.src = src
        self.dst = dst
        self.entry = None       # filled by migrate_begun (the ledger)
        self.initiated_ns = initiated_ns
        self.completed_ns = None
        self.attempts = 0
        self.done = False
        self.outcome = None


class Cluster:
    """N federated DRCR platforms plus their management plane."""

    #: The coordinator's transport endpoint name.
    coordinator_name = "control"

    def __init__(self, node_names=("node0", "node1", "node2"), seed=0,
                 num_cpus=1, kernel_config_factory=None,
                 internal_policy_factory=None, container_factory=None,
                 link=None, heartbeat_interval_ns=10 * MSEC,
                 miss_limit=3, probe_fanout=2, indirect_fanout=2,
                 placement_cap=1.0,
                 timer_period_ns=MSEC, migration_timeout_ns=5 * MSEC,
                 backoff=None, telemetry=None,
                 per_link_histograms=None):
        node_names = list(node_names)
        if len(set(node_names)) != len(node_names) or not node_names:
            raise ValueError("node names must be unique and non-empty")
        if self.coordinator_name in node_names:
            raise ValueError("%r is reserved for the coordinator"
                             % (self.coordinator_name,))
        self.sim = Simulator(seed=seed, telemetry=telemetry)
        self.transport = MessageTransport(
            self.sim, default_link=link,
            per_link_histograms=per_link_histograms)
        if kernel_config_factory is None:
            kernel_config_factory = lambda: KernelConfig(  # noqa: E731
                num_cpus=num_cpus)
        self._kernel_config_factory = kernel_config_factory
        self._internal_policy_factory = internal_policy_factory
        self._container_factory = container_factory
        self._timer_period_ns = int(timer_period_ns)
        self.nodes = {}
        for name in node_names:
            self._build_node(name)
        self.membership = MembershipService(
            self, heartbeat_interval_ns=heartbeat_interval_ns,
            miss_limit=miss_limit, probe_fanout=probe_fanout,
            indirect_fanout=indirect_fanout)
        for node in self.nodes.values():
            node.membership = self.membership
        self.placement = ClusterPlacementService(self,
                                                 cap=placement_cap)
        self.plan_guard = None  # armed via install_plan_guard()
        self.transport.register(self.coordinator_name,
                                self._on_message)
        self.backoff = backoff or BackoffPolicy(
            initial_ns=migration_timeout_ns, factor=2.0,
            max_delay_ns=20 * migration_timeout_ns, max_attempts=4)
        self.deployments = {}   # component name -> home node name
        self.catalog = {}       # component name -> last known entry
        self.failovers = []     # completed failover reports
        self.mgmt_replies = {}  # request id -> mgmt_reply payload
        self._replicas = {}     # node name -> last pulled snapshot
        self._replica_versions = {}  # node name -> pulled version
        self._tombstones = {}   # undeployed name -> former home node
        self._migrations = {}
        self._seq = itertools.count(1)
        metrics = self.sim.telemetry.registry("cluster")
        self._m_deployments = metrics.counter("deployments_total")
        self._m_migrations = metrics.counter("migrations_total")
        self._m_migration_retries = metrics.counter(
            "migration_retries_total")
        self._m_migration_failures = metrics.counter(
            "migration_failures_total")
        self._m_migration_latency = metrics.histogram(
            "migration_latency_ns", MIGRATION_LATENCY_BOUNDS_NS)
        self._m_failovers = metrics.counter("failovers_total")
        self._m_failover_components = metrics.counter(
            "failover_components_total")
        self._m_failover_detect = metrics.histogram(
            "failover_detect_ns", FAILOVER_DETECT_BOUNDS_NS)
        self._m_snapshot_pulls = metrics.counter(
            "snapshot_pulls_total")
        self._m_snapshot_pushes = metrics.counter(
            "snapshot_pushes_total")
        self.membership.start()

    def _build_node(self, name):
        policy = self._internal_policy_factory() \
            if self._internal_policy_factory is not None else None
        node = ClusterNode(
            name, self.sim, self.transport,
            kernel_config=self._kernel_config_factory(),
            internal_policy=policy,
            container_factory=self._container_factory)
        node.start_timer(self._timer_period_ns)
        self.nodes[name] = node
        return node

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def node(self, name):
        """The named :class:`~repro.cluster.node.ClusterNode`."""
        return self.nodes[name]

    def alive_nodes(self):
        """Nodes that are up *and* still in membership."""
        return [node for node in self.nodes.values()
                if node.alive
                and not self.membership.is_dead(node.name)]

    def run_for(self, duration_ns):
        """Advance the shared simulator."""
        return self.sim.run_for(duration_ns)

    def add_node(self, name):
        """Join a node to a running federation.

        Builds the full platform stack, wires it to the transport and
        seeds its membership entry as just-seen -- without the seeding
        a late joiner would read as silent-since-t0 and be declared
        dead at the next check.  Returns the new node."""
        if name in self.nodes or name == self.coordinator_name:
            raise ClusterError("node name %r is taken" % (name,))
        node = self._build_node(name)
        node.membership = self.membership
        self.membership.note_join(name)
        self.sim.trace.record(self.sim.now, "cluster",
                              action="node_join", node=name)
        return node

    def crash_node(self, name):
        """Fail-stop one node (the NODE_CRASH injector's entry point).

        Failover does *not* run here -- it runs when the membership
        detector notices the silence, heartbeats later."""
        self.sim.trace.record(self.sim.now, "cluster",
                              action="node_crash", node=name)
        self.nodes[name].crash()

    def shutdown(self):
        """Stop heartbeats and tear every node down."""
        self.membership.stop()
        for node in self.nodes.values():
            node.crash()
        self.transport.unregister(self.coordinator_name)

    # ------------------------------------------------------------------
    # the deployment plan (static analysis round-trip)
    # ------------------------------------------------------------------
    def export_plan(self, rules=None):
        """The live fleet as a deployment-plan document.

        A plain-data JSON document in the :mod:`repro.lint.deployment`
        plan schema: the alive nodes (CPU count, placement cap), the
        transport's default and explicit links, every deployed
        component's descriptor inlined under its home node, and the
        application groupings -- so ``drtlint`` can statically verify
        the *running* fleet (``python -m repro cluster --export-plan``
        and the CI cluster-smoke job do exactly that).  ``rules``
        optionally lists rule-file paths to carry along."""
        from repro.lint.deployment import PLAN_SCHEMA_VERSION
        alive = {node.name for node in self.alive_nodes()}
        nodes = []
        deployments = []
        for name in sorted(self.nodes):
            if name not in alive:
                continue
            node = self.nodes[name]
            nodes.append({
                "name": name,
                "num_cpus": node.kernel.config.num_cpus,
                "cap": self.placement.cap,
            })
            components = [
                {"xml": self.catalog[comp]["descriptor_xml"]}
                for comp, home in sorted(self.deployments.items())
                if home == name and comp in self.catalog]
            if components:
                deployments.append({"node": name,
                                    "components": components})
        default = self.transport.default_link
        links = [
            {"src": src, "dst": dst,
             "latency_ns": link.latency_ns,
             "jitter_ns": link.jitter_ns,
             "drop_probability": link.drop_probability}
            for (src, dst), link
            in sorted(self.transport.links().items())
            if src in alive | {self.coordinator_name}
            and dst in alive | {self.coordinator_name}]
        applications = {}
        for name in sorted(alive):
            for app, members \
                    in self.nodes[name].drcr.applications().items():
                deployed = [member for member in members
                            if self.deployments.get(member) in alive]
                if deployed:
                    applications.setdefault(app, deployed)
        plan = {
            "plan_version": PLAN_SCHEMA_VERSION,
            "name": "cluster",
            "cap": self.placement.cap,
            "default_link": {
                "latency_ns": default.latency_ns,
                "jitter_ns": default.jitter_ns,
                "drop_probability": default.drop_probability,
            },
            "nodes": nodes,
            "links": links,
            "deployments": deployments,
            "applications": applications,
        }
        if rules is not None:
            plan["rules"] = list(rules)
        return plan

    def install_plan_guard(self, fail_on=Severity.ERROR,
                           families=None):
        """Arm the :class:`PlanGuard` pre-deploy gate.

        From then on :meth:`deploy` / :meth:`deploy_application` lint
        the candidate plan first and raise :class:`ClusterError` on
        new findings at or above ``fail_on``; failover re-homing runs
        an advisory post-lint.  Returns the guard."""
        self.plan_guard = PlanGuard(self, fail_on=fail_on,
                                    families=families)
        return self.plan_guard

    def _consult_plan_guard(self, descriptor_xmls, node, subject,
                            application=None, members=None):
        if self.plan_guard is None:
            return
        findings = self.plan_guard.check_deploy(
            descriptor_xmls, node, application=application,
            members=members)
        if findings:
            raise ClusterError(
                "plan guard vetoed deploying %s onto %s: %s"
                % (subject, node,
                   "; ".join(diagnostic.format()
                             for diagnostic in findings)))

    # ------------------------------------------------------------------
    # the management plane
    # ------------------------------------------------------------------
    def deploy(self, descriptor_xml, node=None, properties=None):
        """Deploy one descriptor onto the fleet.

        The target is ``node`` or the placement service's (node, CPU)
        choice; the descriptor travels as a ``deploy`` message and the
        target's resolving services decide admission.  Returns the
        target node name."""
        descriptor = ComponentDescriptor.from_xml(descriptor_xml)
        name = descriptor.name
        if name in self.deployments:
            raise ClusterError("component %r already deployed on %s"
                               % (name, self.deployments[name]))
        if node is None:
            node = self.placement.choose_node_for_group(
                descriptor.contract.cpu_usage,
                extra_node_load=self._pending_load())
            if node is None:
                raise ClusterError(
                    "no (node, CPU) slot fits %r (usage %.2f)"
                    % (name, descriptor.contract.cpu_usage))
        elif node not in self.nodes:
            raise ClusterError("unknown node %r" % (node,))
        self._consult_plan_guard([descriptor_xml], node,
                                 "component %r" % (name,))
        entry = {
            "name": name,
            "descriptor_xml": descriptor_xml,
            "state": ComponentState.ACTIVE.value,
            "bundle": None,
        }
        if properties:
            entry["properties"] = dict(properties)
        self._tombstones.pop(name, None)
        self.catalog[name] = entry
        self.deployments[name] = node
        self._m_deployments.inc()
        self.transport.send(self.coordinator_name, node, "deploy", {
            "entry": entry,
            "reply_to": self.coordinator_name,
        })
        return node

    def deploy_application(self, app_name, descriptor_xmls,
                           node=None, properties=None):
        """Deploy a wired application whole onto one node.

        Port wiring resolves inside a single node's kernel, so the
        members must be co-located; the placement service picks the
        node with enough *total* headroom and the target deploys the
        group in one batch round, then records the grouping via
        ``define_application``.  ``properties`` maps component name to
        saved property dicts.  Returns the target node name."""
        descriptors = [ComponentDescriptor.from_xml(xml)
                       for xml in descriptor_xmls]
        members = [descriptor.name for descriptor in descriptors]
        for member in members:
            if member in self.deployments:
                raise ClusterError(
                    "component %r already deployed on %s"
                    % (member, self.deployments[member]))
        if node is None:
            total = sum(descriptor.contract.cpu_usage
                        for descriptor in descriptors)
            node = self.placement.choose_node_for_group(
                total, extra_node_load=self._pending_load())
            if node is None:
                raise ClusterError(
                    "no node fits application %r (usage %.2f)"
                    % (app_name, total))
        elif node not in self.nodes:
            raise ClusterError("unknown node %r" % (node,))
        self._consult_plan_guard(list(descriptor_xmls), node,
                                 "application %r" % (app_name,),
                                 application=app_name,
                                 members=members)
        properties = properties or {}
        entries = []
        for descriptor, xml in zip(descriptors, descriptor_xmls):
            entry = {
                "name": descriptor.name,
                "descriptor_xml": xml,
                "state": ComponentState.ACTIVE.value,
                "bundle": None,
            }
            if descriptor.name in properties:
                entry["properties"] = dict(
                    properties[descriptor.name])
            entries.append(entry)
            self._tombstones.pop(descriptor.name, None)
            self.catalog[descriptor.name] = entry
            self.deployments[descriptor.name] = node
            self._m_deployments.inc()
        self.transport.send(self.coordinator_name, node,
                            "deploy_app", {
                                "entries": entries,
                                "application": app_name,
                                "members": members,
                                "reply_to": self.coordinator_name,
                            })
        return node

    def undeploy(self, name):
        """Remove a component from its home node."""
        node = self.deployments.pop(name, None)
        if node is None:
            raise ClusterError("component %r is not deployed"
                               % (name,))
        self.catalog.pop(name, None)
        # A heartbeat exported before the undeploy lands would re-add
        # the component; the tombstone blocks that until a snapshot
        # from the former home confirms it is gone.
        self._tombstones[name] = node
        self.transport.send(self.coordinator_name, node, "undeploy", {
            "name": name,
            "reply_to": self.coordinator_name,
        })
        return node

    def manage(self, name, op, *args):
        """Invoke a §2.4 management operation on a remote component.

        Routed as a ``mgmt`` message to the home node, which resolves
        the component's registered management service via the OSGi
        registry.  Returns a request id; the reply lands in
        ``mgmt_replies[request_id]`` once the simulator has run the
        round-trip."""
        node = self.deployments.get(name)
        if node is None:
            raise ClusterError("component %r is not deployed"
                               % (name,))
        request_id = "req%05d" % next(self._seq)
        self.transport.send(self.coordinator_name, node, "mgmt", {
            "component": name,
            "op": op,
            "args": list(args),
            "request_id": request_id,
            "reply_to": self.coordinator_name,
        })
        return request_id

    # ------------------------------------------------------------------
    # migration
    # ------------------------------------------------------------------
    def migrate(self, name, dst=None):
        """Move a component to another node, state included.

        Returns the migration id; progress is visible in
        ``migration(migration_id)`` and the ``cluster`` telemetry."""
        src = self.deployments.get(name)
        if src is None:
            raise ClusterError("component %r is not deployed"
                               % (name,))
        if dst is None:
            entry = self.catalog.get(name)
            usage = ComponentDescriptor.from_xml(
                entry["descriptor_xml"]).contract.cpu_usage \
                if entry else 0.0
            dst = self.placement.choose_node(usage, exclude={src})
            if dst is None:
                raise ClusterError(
                    "no migration target fits %r" % (name,))
        if dst == src or dst not in self.nodes:
            raise ClusterError("bad migration target %r" % (dst,))
        migration_id = "mig%05d" % next(self._seq)
        migration = _Migration(migration_id, name, src, dst,
                               self.sim.now)
        self._migrations[migration_id] = migration
        self.sim.trace.record(self.sim.now, "cluster",
                              action="migrate", component=name,
                              src=src, dst=dst, id=migration_id)
        self.transport.send(self.coordinator_name, src,
                            "migrate_out", {
                                "name": name,
                                "dst": dst,
                                "migration_id": migration_id,
                                "reply_to": self.coordinator_name,
                            })
        self._arm_migration_check(migration)
        return migration_id

    def migration(self, migration_id):
        """Status dict of one migration."""
        migration = self._migrations[migration_id]
        return {
            "id": migration.id,
            "component": migration.name,
            "src": migration.src,
            "dst": migration.dst,
            "done": migration.done,
            "outcome": migration.outcome,
            "attempts": migration.attempts,
            "latency_ns": (migration.completed_ns
                           - migration.initiated_ns)
            if migration.completed_ns is not None else None,
        }

    def _arm_migration_check(self, migration):
        stream = self.sim.rng.stream("cluster/migration")
        delay = self.backoff.delay_ns(migration.attempts + 1, stream)
        self.sim.schedule(delay, self._check_migration, migration.id,
                          label="cluster:migration-check")

    def _check_migration(self, migration_id):
        migration = self._migrations.get(migration_id)
        if migration is None or migration.done:
            return
        migration.attempts += 1
        if migration.attempts >= self.backoff.max_attempts:
            self._fail_migration(migration)
            return
        self._m_migration_retries.inc()
        if migration.entry is not None:
            # Ledger holds the state: retry delivery to the target,
            # re-choosing it if the original left membership.
            if self.membership.is_dead(migration.dst) \
                    or not self.nodes[migration.dst].alive:
                usage = ComponentDescriptor.from_xml(
                    migration.entry["descriptor_xml"]) \
                    .contract.cpu_usage
                dst = self.placement.choose_node(
                    usage, exclude={migration.src, migration.dst})
                if dst is None:
                    self._fail_migration(migration)
                    return
                migration.dst = dst
            self.transport.send(self.coordinator_name, migration.dst,
                                "migrate_in", {
                                    "migration_id": migration.id,
                                    "entry": migration.entry,
                                    "reply_to": self.coordinator_name,
                                })
        elif self.nodes[migration.src].alive \
                and not self.membership.is_dead(migration.src):
            # migrate_out (or migrate_begun) was lost; ask again.
            self.transport.send(self.coordinator_name, migration.src,
                                "migrate_out", {
                                    "name": migration.name,
                                    "dst": migration.dst,
                                    "migration_id": migration.id,
                                    "reply_to": self.coordinator_name,
                                })
        else:
            # No ledger and the source is gone: the component's fate
            # is the failover path's job (catalog fallback).
            self._fail_migration(migration)
            return
        self._arm_migration_check(migration)

    def _fail_migration(self, migration):
        """Give up on the wire; place the component locally so it is
        not lost."""
        migration.done = True
        migration.outcome = "failed"
        self._m_migration_failures.inc()
        entry = migration.entry or self.catalog.get(migration.name)
        placed = None
        if entry is not None \
                and not self._component_lives_somewhere(
                    migration.name):
            placed = self._place_groups(
                [[entry]], exclude=(), reason="migration-fallback")
        self.sim.trace.record(self.sim.now, "cluster",
                              action="migration_failed",
                              component=migration.name,
                              id=migration.id,
                              fallback=bool(placed))

    def _component_lives_somewhere(self, name):
        return any(name in node.drcr.registry
                   for node in self.alive_nodes())

    def _pending_load(self):
        """Budget promised to nodes but not yet visible in their
        registries (deploy messages still in flight): placement must
        count it, or a burst of deploys piles onto one node."""
        pending = {}
        for name, home in self.deployments.items():
            node = self.nodes.get(home)
            if node is None or name in node.drcr.registry:
                continue
            entry = self.catalog.get(name)
            if entry is None:
                continue
            usage = ComponentDescriptor.from_xml(
                entry["descriptor_xml"]).contract.cpu_usage
            pending[home] = pending.get(home, 0.0) + usage
        return pending

    # ------------------------------------------------------------------
    # replica bookkeeping and failover
    # ------------------------------------------------------------------
    def pull_snapshot(self, name):
        """Ask ``name`` for its snapshot if ours is stale
        (anti-entropy; the node only replies when the version moved)."""
        self._m_snapshot_pulls.inc()
        self.transport.send(self.coordinator_name, name,
                            "snapshot_pull", {
                                "have": self._replica_versions.get(
                                    name),
                                "reply_to": self.coordinator_name,
                            })

    def note_replica(self, src, snapshot):
        """Record a node's pulled state snapshot.

        Also reconciles the home map and catalog -- last writer wins,
        which converges within a pull round-trip of any move."""
        self._replicas[src] = snapshot
        carried = set()
        for entry in snapshot.get("components", ()):
            name = entry["name"]
            carried.add(name)
            if self._tombstones.get(name) == src:
                continue  # stale beat from before the undeploy landed
            self.catalog[name] = entry
            self.deployments[name] = src
        for name, home in list(self._tombstones.items()):
            if home == src and name not in carried:
                del self._tombstones[name]

    def _on_node_dead(self, name, last_seen):
        """Failover: re-deploy the dead node's components across the
        survivors, one batch round per target node."""
        now = self.sim.now
        self._m_failover_detect.observe(now - last_seen)
        self._replica_versions.pop(name, None)
        replica = self._replicas.pop(name, None)
        if replica is not None:
            entries = list(replica.get("components", ()))
            applications = dict(replica.get("applications", {}))
        else:
            # Died before the first beat: fall back to the catalog.
            entries = [self.catalog[comp]
                       for comp, home in self.deployments.items()
                       if home == name and comp in self.catalog]
            applications = {}
        orphans = [entry for entry in entries
                   if not self._component_lives_somewhere(
                       entry["name"])]
        moved = self._place_groups(
            _group_entries(orphans, applications), exclude={name},
            reason="failover")
        unplaced = sorted(set(entry["name"] for entry in orphans)
                          - set(moved))
        for comp in unplaced:
            self.deployments.pop(comp, None)
        for app_name, members in applications.items():
            for target in set(moved.values()):
                if any(member in moved for member in members):
                    self.nodes[target].drcr.define_application(
                        app_name, members)
        self._m_failovers.inc()
        self._m_failover_components.inc(len(moved))
        report = {
            "node": name,
            "at_ns": now,
            "last_seen_ns": last_seen,
            "moved": moved,
            "unplaced": unplaced,
        }
        self.failovers.append(report)
        self.sim.trace.record(now, "cluster", action="failover",
                              node=name, moved=len(moved),
                              unplaced=len(unplaced))
        if self.plan_guard is not None:
            self.plan_guard.note_failover(name)
        return report

    def _place_groups(self, groups, exclude, reason):
        """Plan nodes for co-location groups, then deploy each
        target's share in one ``drcr.batch()`` round.

        A group is a list of entries that must land together (a wired
        application); singletons are one-element groups and effectively
        get the per-slot best fit.  In-process on purpose: failover is
        the coordinator restoring from *its* replica -- the dead node
        is unreachable, so there is no remote hop to model.  Returns
        ``{component: target node}`` for every entry that found a
        home."""
        plan = {}
        extra_node_load = {}
        for group in groups:
            total = sum(ComponentDescriptor.from_xml(
                entry["descriptor_xml"]).contract.cpu_usage
                for entry in group)
            node_name = self.placement.choose_node_for_group(
                total, exclude=exclude,
                extra_node_load=extra_node_load)
            if node_name is None:
                continue
            extra_node_load[node_name] = \
                extra_node_load.get(node_name, 0.0) + total
            plan.setdefault(node_name, []).extend(group)
        moved = {}
        for node_name, group in plan.items():
            node = self.nodes[node_name]
            report = restore_entries(node.drcr, group,
                                     stash=node.stash)
            for outcome in _PLACED_OUTCOMES:
                for comp in report[outcome]:
                    moved[comp] = node_name
                    self.deployments[comp] = node_name
            self.sim.trace.record(self.sim.now, "cluster",
                                  action="redeploy", node=node_name,
                                  reason=reason, count=len(group))
        return moved

    # ------------------------------------------------------------------
    # coordinator inbox
    # ------------------------------------------------------------------
    def _on_message(self, message):
        kind = message.kind
        payload = message.payload
        if kind == "deploy_ack":
            if payload["outcome"] in _PLACED_OUTCOMES:
                self.deployments[payload["name"]] = payload["node"]
        elif kind == "undeploy_ack":
            pass  # home map already updated optimistically
        elif kind == "migrate_begun":
            migration = self._migrations.get(payload["migration_id"])
            if migration is not None and migration.entry is None:
                migration.entry = payload["entry"]
                self.catalog[migration.name] = payload["entry"]
        elif kind == "migrate_ack":
            self._on_migrate_ack(payload)
        elif kind == "mgmt_reply":
            self.mgmt_replies[payload["request_id"]] = payload
        elif kind == "digest":
            node = payload["node"]
            if not self.membership.is_dead(node) \
                    and self._replica_versions.get(node) \
                    != payload["version"]:
                self.pull_snapshot(node)
        elif kind == "snapshot_push":
            node = payload["node"]
            if not self.membership.is_dead(node):
                self._m_snapshot_pushes.inc()
                self._replica_versions[node] = payload["version"]
                self.note_replica(node, payload["snapshot"])
        elif kind == "fence_ack":
            self.membership.note_fence_ack(payload["node"])
            self.sim.trace.record(self.sim.now, "cluster",
                                  action="fence_ack",
                                  node=payload["node"],
                                  count=len(payload["undeployed"]))

    def _on_migrate_ack(self, payload):
        migration = self._migrations.get(payload["migration_id"])
        if migration is None or migration.done:
            return
        migration.done = True
        migration.outcome = payload["outcome"]
        migration.completed_ns = self.sim.now
        if payload["outcome"] in _PLACED_OUTCOMES:
            self.deployments[migration.name] = payload["node"]
            self._m_migrations.inc()
            self._m_migration_latency.observe(
                self.sim.now - migration.initiated_ns)
            self.sim.trace.record(self.sim.now, "cluster",
                                  action="migrated",
                                  component=migration.name,
                                  dst=payload["node"],
                                  outcome=payload["outcome"],
                                  latency_ns=self.sim.now
                                  - migration.initiated_ns)
        else:
            # "absent"/"skipped": nothing moved on the target.  If the
            # source already let go (its migrate_begun and migrate_in
            # were both lost) the component is homeless -- place it
            # from the ledger or catalog so it is not lost.
            self._m_migration_failures.inc()
            entry = migration.entry or self.catalog.get(migration.name)
            if entry is not None \
                    and not self._component_lives_somewhere(
                        migration.name):
                self._place_groups([[entry]], exclude=(),
                                   reason="migration-fallback")

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self):
        """Plain-data summary of the whole federation."""
        return {
            "time_ns": self.sim.now,
            "members": self.membership.members(),
            "dead": sorted(self.membership.declared_dead),
            "deployments": dict(self.deployments),
            "utilization": self.placement.utilization_map(),
            "failovers": list(self.failovers),
            "migrations": [self.migration(mid)
                           for mid in self._migrations],
        }

    def __repr__(self):
        return "Cluster(%d nodes, %d components, t=%dns)" % (
            len(self.nodes), len(self.deployments), self.sim.now)
