"""The simulated inter-node message transport.

Federation (see :mod:`repro.cluster`) connects per-node platforms that
all share one :class:`~repro.sim.engine.Simulator`; the transport is
how they talk.  A message between two nodes is a simulator event
scheduled one link-latency into the future, with deterministic jitter
and an optional drop gate drawn from named random streams -- so a
cluster run reproduces exactly under a fixed seed, message losses
included.

Links are directional and configurable per pair
(:meth:`MessageTransport.set_link` / :meth:`connect`); pairs without
an explicit :class:`LinkSpec` use the transport's default.
:meth:`partition` blocks a pair in both directions (messages already
in flight are dropped at delivery time too -- a partition severs the
wire, not just the send queue); :meth:`heal` restores it.  The
partition fault injector (:mod:`repro.faults`) drives exactly these
two methods.

Telemetry lands in the ``cluster`` registry: ``messages_sent_total``,
``messages_delivered_total``, ``messages_dropped_total``,
``messages_partitioned_total``, the aggregate ``link_latency_ns``
histogram and one ``link_latency_ns.<src>_to_<dst>`` histogram per
link that carried traffic (see ``docs/OBSERVABILITY.md``).  Per-link
histograms are gated at scale: beyond
:data:`PER_LINK_HISTOGRAM_MAX_ENDPOINTS` registered endpoints a fleet
has O(n²) links, so only the aggregate histogram is kept (override
with ``per_link_histograms=True/False``).
"""

#: Above this many registered endpoints, per-link histograms default
#: off -- a gossip-scale fleet has O(n²) directed links and the
#: registry would drown in instruments.
PER_LINK_HISTOGRAM_MAX_ENDPOINTS = 32

#: Link-latency histogram buckets (ns): LAN-ish 100 us to a stalled
#: 100 ms.
LINK_LATENCY_BOUNDS_NS = (
    100_000, 250_000, 500_000, 1_000_000, 2_000_000, 5_000_000,
    10_000_000, 50_000_000, 100_000_000,
)


class LinkSpec:
    """One directional link's quality: latency, jitter, loss."""

    __slots__ = ("latency_ns", "jitter_ns", "drop_probability")

    def __init__(self, latency_ns=500_000, jitter_ns=0,
                 drop_probability=0.0):
        if latency_ns < 0:
            raise ValueError("latency must be >= 0")
        if jitter_ns < 0 or jitter_ns > latency_ns:
            raise ValueError("jitter must be in [0, latency]")
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError("drop probability must be in [0, 1)")
        self.latency_ns = int(latency_ns)
        self.jitter_ns = int(jitter_ns)
        self.drop_probability = float(drop_probability)

    def __repr__(self):
        return "LinkSpec(%dns ±%dns, drop=%.3f)" % (
            self.latency_ns, self.jitter_ns, self.drop_probability)


class Message:
    """One datagram between nodes (plain payload, at-most-once)."""

    __slots__ = ("kind", "payload", "src", "dst", "sent_at_ns", "seq")

    def __init__(self, kind, payload, src, dst, sent_at_ns, seq):
        self.kind = kind
        self.payload = payload
        self.src = src
        self.dst = dst
        self.sent_at_ns = sent_at_ns
        self.seq = seq

    def __repr__(self):
        return "Message(#%d %s %s->%s)" % (self.seq, self.kind,
                                           self.src, self.dst)


class MessageTransport:
    """Datagram delivery between registered nodes on one simulator.

    Delivery is **at-most-once**: a message is dropped by the link's
    loss gate, by an active partition (at send *or* delivery time), or
    when the destination is no longer registered (a crashed node).
    Reliability, where wanted, is the caller's job -- the cluster's
    migration protocol retries with the
    :class:`~repro.faults.recovery.BackoffPolicy` idiom.
    """

    def __init__(self, sim, default_link=None,
                 per_link_histograms=None):
        self.sim = sim
        self.default_link = default_link or LinkSpec()
        # None = decide from the fleet size at first delivery; the
        # verdict is latched so a mid-run crash cannot flip it.
        self.per_link_histograms = per_link_histograms
        self._per_link_enabled = per_link_histograms
        self._handlers = {}
        self._links = {}
        self._partitioned = set()
        self._seq = 0
        metrics = sim.telemetry.registry("cluster")
        self._metrics = metrics
        self._m_sent = metrics.counter("messages_sent_total")
        self._m_delivered = metrics.counter("messages_delivered_total")
        self._m_dropped = metrics.counter("messages_dropped_total")
        self._m_partitioned = metrics.counter(
            "messages_partitioned_total")
        self._m_latency = metrics.histogram("link_latency_ns",
                                            LINK_LATENCY_BOUNDS_NS)
        self._link_histograms = {}

    # ------------------------------------------------------------------
    # membership of the wire
    # ------------------------------------------------------------------
    def register(self, name, handler):
        """Attach a node: ``handler(message)`` receives deliveries."""
        self._handlers[name] = handler

    def unregister(self, name):
        """Detach a node; in-flight messages to it will drop."""
        self._handlers.pop(name, None)

    def is_registered(self, name):
        """Whether ``name`` currently receives messages."""
        return name in self._handlers

    # ------------------------------------------------------------------
    # link configuration
    # ------------------------------------------------------------------
    def set_link(self, src, dst, link):
        """Configure the directional ``src -> dst`` link."""
        self._links[(src, dst)] = link

    def connect(self, a, b, link):
        """Configure both directions of the ``a <-> b`` pair."""
        self.set_link(a, b, link)
        self.set_link(b, a, link)

    def link_for(self, src, dst):
        """The effective :class:`LinkSpec` of ``src -> dst``."""
        return self._links.get((src, dst), self.default_link)

    def links(self):
        """The explicitly-configured links: ``{(src, dst): LinkSpec}``.

        A copy -- configure links through :meth:`set_link` /
        :meth:`connect`.  Pairs absent here use :attr:`default_link`
        (``Cluster.export_plan()`` serializes exactly this split)."""
        return dict(self._links)

    def partition(self, a, b):
        """Sever the ``a <-> b`` pair (both directions, in-flight
        messages included)."""
        self._partitioned.add(frozenset((a, b)))

    def heal(self, a, b):
        """Restore a severed pair."""
        self._partitioned.discard(frozenset((a, b)))

    def is_partitioned(self, a, b):
        """Whether the pair is currently severed."""
        return frozenset((a, b)) in self._partitioned

    # ------------------------------------------------------------------
    # the wire
    # ------------------------------------------------------------------
    def send(self, src, dst, kind, payload=None):
        """Queue one message; returns it, or ``None`` when the send is
        known-lost already (partition or loss gate).  A ``None`` from
        here is indistinguishable, to the receiver, from a loss in
        flight -- callers needing delivery must wait for an
        application-level reply."""
        self._seq += 1
        self._m_sent.inc()
        message = Message(kind, payload if payload is not None else {},
                          src, dst, self.sim.now, self._seq)
        if self.is_partitioned(src, dst):
            self._m_partitioned.inc()
            self._m_dropped.inc()
            return None
        link = self.link_for(src, dst)
        stream = self.sim.rng.stream("cluster/link/%s->%s" % (src, dst))
        if link.drop_probability and \
                stream.random() < link.drop_probability:
            self._m_dropped.inc()
            return None
        latency = link.latency_ns
        if link.jitter_ns:
            latency += int(stream.uniform(-link.jitter_ns,
                                          link.jitter_ns))
        latency = max(0, latency)
        self.sim.schedule(latency, self._deliver, message,
                          label="net:%s->%s" % (src, dst))
        return message

    def _deliver(self, message):
        if self.is_partitioned(message.src, message.dst):
            self._m_partitioned.inc()
            self._m_dropped.inc()
            return
        handler = self._handlers.get(message.dst)
        if handler is None:
            self._m_dropped.inc()
            return
        latency = self.sim.now - message.sent_at_ns
        self._m_delivered.inc()
        self._m_latency.observe(latency)
        enabled = self._per_link_enabled
        if enabled is None:
            enabled = self._per_link_enabled = (
                len(self._handlers)
                <= PER_LINK_HISTOGRAM_MAX_ENDPOINTS)
        if enabled:
            self._link_histogram(message.src,
                                 message.dst).observe(latency)
        handler(message)

    def _link_histogram(self, src, dst):
        key = (src, dst)
        histogram = self._link_histograms.get(key)
        if histogram is None:
            histogram = self._metrics.histogram(
                "link_latency_ns.%s_to_%s" % (src, dst),
                LINK_LATENCY_BOUNDS_NS)
            self._link_histograms[key] = histogram
        return histogram

    def __repr__(self):
        return "MessageTransport(%d nodes, %d partitions)" % (
            len(self._handlers), len(self._partitioned))
