"""``python -m repro cluster``: a scripted federation demo.

Builds an N-node cluster on one simulator, spreads a generated
workload over it via cluster placement, migrates one component
mid-run, then crashes a node and lets SWIM probe detection plus
automatic failover re-home everything.  Prints a fleet report and the
``cluster.*`` telemetry that backs it.

Examples::

    python -m repro cluster
    python -m repro cluster --nodes 5 --components 12 --seconds 2
    python -m repro cluster --latency-us 2000 --jitter-us 500 \\
        --drop 0.05 --seed 11
    python -m repro cluster --json fleet.json
"""

import argparse
import json
import sys

from repro.cluster.federation import Cluster
from repro.cluster.transport import LinkSpec
from repro.sim.engine import MSEC, SEC, USEC
from repro.sim.rng import RandomStreams
from repro.workloads import generate_component_set


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="python -m repro cluster",
        description="Run the multi-node federation demo: deploy, "
                    "migrate, crash a node, fail over.")
    parser.add_argument("--nodes", type=int, default=3, metavar="N",
                        help="number of nodes (default 3)")
    parser.add_argument("--components", type=int, default=6,
                        metavar="K",
                        help="workload components to deploy "
                             "(default 6)")
    parser.add_argument("--utilization", type=float, default=0.6,
                        metavar="U",
                        help="total declared utilization of the "
                             "workload (default 0.6)")
    parser.add_argument("--seconds", type=int, default=1, metavar="S",
                        help="simulated seconds to run (default 1)")
    parser.add_argument("--heartbeat-ms", type=int, default=10,
                        metavar="MS",
                        help="probe interval (default 10 ms)")
    parser.add_argument("--latency-us", type=int, default=500,
                        metavar="US",
                        help="link latency (default 500 us)")
    parser.add_argument("--jitter-us", type=int, default=0,
                        metavar="US", help="link jitter (default 0)")
    parser.add_argument("--drop", type=float, default=0.0,
                        metavar="P",
                        help="link drop probability (default 0)")
    parser.add_argument("--seed", type=int, default=7,
                        help="master seed (default 7)")
    parser.add_argument("--no-crash", action="store_true",
                        help="skip the node crash / failover act")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the fleet report as JSON")
    parser.add_argument("--export-plan", metavar="PATH", default=None,
                        help="write the live fleet's deployment plan "
                             "(lintable with python -m repro lint "
                             "--family DRT6)")
    args = parser.parse_args(argv)
    if args.nodes < 2:
        parser.error("--nodes must be >= 2 (a federation)")
    if args.components < 1:
        parser.error("--components must be >= 1")
    return args


def main(argv=None):
    """Run the demo; returns a process exit code."""
    args = _parse_args(sys.argv[1:] if argv is None else argv)
    link = LinkSpec(latency_ns=args.latency_us * USEC,
                    jitter_ns=args.jitter_us * USEC,
                    drop_probability=args.drop)
    cluster = Cluster(
        node_names=tuple("node%d" % i for i in range(args.nodes)),
        seed=args.seed, link=link,
        heartbeat_interval_ns=args.heartbeat_ms * MSEC)
    rng = RandomStreams(args.seed)
    descriptors = generate_component_set(
        rng, "cl", args.components,
        total_utilization=args.utilization)
    print("== deploy: %d components over %d nodes =="
          % (len(descriptors), args.nodes))
    for descriptor in descriptors:
        node = cluster.deploy(descriptor.to_xml())
        print("  %-8s -> %s" % (descriptor.name, node))
    third = args.seconds * SEC // 3
    cluster.run_for(third)

    victim_component = descriptors[0].name
    src = cluster.deployments[victim_component]
    migration_id = cluster.migrate(victim_component)
    cluster.run_for(third)
    migration = cluster.migration(migration_id)
    print("== migrate: %s %s -> %s (%s, %d attempt(s)) =="
          % (victim_component, src, migration["dst"],
             migration["outcome"], migration["attempts"] + 1))

    if not args.no_crash:
        victims = [home for home in cluster.deployments.values()]
        victim_node = victims[0] if victims else "node1"
        print("== crash: %s (probes go unanswered) ==" % victim_node)
        cluster.crash_node(victim_node)
    cluster.run_for(args.seconds * SEC - 2 * third)

    report = cluster.report()
    print("== fleet after %.2f s ==" % (report["time_ns"] / SEC))
    print("  members: %s   dead: %s"
          % (", ".join(report["members"]) or "-",
             ", ".join(report["dead"]) or "-"))
    for comp, home in sorted(report["deployments"].items()):
        print("  %-8s on %s" % (comp, home))
    for failover in report["failovers"]:
        print("  failover of %s at %.3f s: %d moved, %d unplaced"
              % (failover["node"], failover["at_ns"] / SEC,
                 len(failover["moved"]), len(failover["unplaced"])))
    metrics = cluster.sim.telemetry.registry("cluster")
    print("== cluster telemetry ==")
    for name in ("messages_sent_total", "messages_delivered_total",
                 "messages_dropped_total", "probes_sent_total",
                 "indirect_probes_total", "suspicions_total",
                 "refutations_total", "nodes_declared_dead_total",
                 "migrations_total", "failovers_total",
                 "failover_components_total"):
        instrument = metrics.get(name)
        if instrument is not None:
            print("  %-28s %d" % (name, instrument.value))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print("wrote fleet report to %s" % args.json)
    if args.export_plan:
        with open(args.export_plan, "w") as handle:
            json.dump(cluster.export_plan(), handle, indent=2)
        print("wrote deployment plan to %s" % args.export_plan)
    cluster.shutdown()
    return 0


if __name__ == "__main__":
    sys.exit(main())
