"""``python -m repro``: a one-command demonstration.

Runs the paper's section-4.2 application (a 1000 Hz calculation task
feeding a 250 Hz display task) for one simulated second and prints the
DRCR system report plus the calculation task's Table-1-style latency
summary.
"""

from repro import build_platform
from repro.core.inspection import system_report
from repro.sim.engine import MSEC, SEC

CALC_XML = """<?xml version="1.0" encoding="UTF-8"?>
<drt:component name="CALC00" desc="simulated computing job, 1000 Hz"
               type="periodic" enabled="true" cpuusage="0.03">
  <implementation bincode="demo.Calculation"/>
  <periodictask frequence="1000" runoncpu="0" priority="2"/>
  <outport name="LATDAT" interface="RTAI.SHM" type="Integer" size="4"/>
</drt:component>
"""

DISP_XML = """<?xml version="1.0" encoding="UTF-8"?>
<drt:component name="DISP00" desc="latency display, rate 4"
               type="periodic" enabled="true" cpuusage="0.01">
  <periodictask frequence="250" runoncpu="0" priority="3"/>
  <implementation bincode="demo.Display"/>
  <inport name="LATDAT" interface="RTAI.SHM" type="Integer" size="4"/>
</drt:component>
"""


def main():
    """Run the demo pipeline and print the system report."""
    platform = build_platform(seed=2008)
    platform.start_timer(1 * MSEC)
    for name, xml in (("demo.calc", CALC_XML), ("demo.disp", DISP_XML)):
        platform.install_and_start(
            {"Bundle-SymbolicName": name,
             "RT-Component": "OSGI-INF/c.xml"},
            resources={"OSGI-INF/c.xml": xml})
    platform.run_for(1 * SEC)
    print(system_report(platform.drcr))
    calc = platform.kernel.lookup("CALC00")
    summary = calc.stats.latency.summary()
    print()
    print("CALC00 scheduling latency (ns): avg=%.1f avedev=%.1f "
          "min=%d max=%d over %d jobs"
          % (summary["average"], summary["avedev"], summary["min"],
             summary["max"], summary["count"]))
    platform.shutdown()


if __name__ == "__main__":
    main()
