"""``python -m repro``: a one-command demonstration.

Runs the paper's section-4.2 application (a 1000 Hz calculation task
feeding a 250 Hz display task) for one simulated second and prints the
DRCR system report plus the calculation task's Table-1-style latency
summary.

Observability flags (see ``docs/OBSERVABILITY.md``):

``--trace out.json``
    export the run as Chrome trace-event JSON (open in
    ``chrome://tracing`` or https://ui.perfetto.dev);
``--metrics metrics.json``
    dump every telemetry counter/gauge/histogram as JSON;
``--no-telemetry``
    run with ``Telemetry(enabled=False)`` -- the single switch that
    turns all metric collection off;
``--seconds N``
    simulate N seconds instead of one;
``--faults PLAN``
    run a chaos experiment: arm the named fault plan (``examples`` for
    the built-in one, else a JSON plan file) against the pipeline and
    print the injection report (see ``docs/FAULT_INJECTION.md``).

Subcommands:

``python -m repro lint <paths...> [--json] [--fail-on SEVERITY]``
    run drtlint, the whole-deployment static verifier, over descriptor
    files / example modules without starting a runtime (see
    ``docs/STATIC_ANALYSIS.md``).

``python -m repro cluster [--nodes N] [--components K] ...``
    run the multi-node federation demo: deploy a workload across a
    simulated cluster, migrate a component, crash a node and watch
    heartbeat detection plus automatic failover re-home its components
    (see ``docs/ARCHITECTURE.md``, Federation section).

``python -m repro adapt [--rules RULES.json] [--compare] ...``
    run the C5 load-spike experiment: declarative adaptation rules
    shed load when the deadline-miss rate spikes, while the identical
    static deployment degrades (see ``docs/ADAPTATION.md``).

``python -m repro contracts [--compare] ...``
    run the C6 bursty-contract experiment: a stochastic-contract
    monitor quarantines components whose observed timing rejects
    their declared distributions, while the identical point-estimate
    deployment degrades (see ``docs/ARCHITECTURE.md``, Stochastic
    contracts section).
"""

import argparse
import sys

from repro import build_platform
from repro.core.inspection import system_report
from repro.rtos.errors import UnknownObjectError
from repro.sim.engine import MSEC, SEC
from repro.telemetry.metrics import Telemetry

CALC_XML = """<?xml version="1.0" encoding="UTF-8"?>
<drt:component name="CALC00" desc="simulated computing job, 1000 Hz"
               type="periodic" enabled="true" cpuusage="0.03">
  <implementation bincode="demo.Calculation"/>
  <periodictask frequence="1000" runoncpu="0" priority="2"/>
  <outport name="LATDAT" interface="RTAI.SHM" type="Integer" size="4"/>
</drt:component>
"""

DISP_XML = """<?xml version="1.0" encoding="UTF-8"?>
<drt:component name="DISP00" desc="latency display, rate 4"
               type="periodic" enabled="true" cpuusage="0.01">
  <periodictask frequence="250" runoncpu="0" priority="3"/>
  <implementation bincode="demo.Display"/>
  <inport name="LATDAT" interface="RTAI.SHM" type="Integer" size="4"/>
</drt:component>
"""


def _positive_int(text):
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            "must be a positive number of seconds, got %r" % text)
    return value


def _parse_args(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the paper's section-4.2 demo pipeline and "
                    "print the DRCR system report.")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a Chrome trace-event JSON file "
                             "(chrome://tracing / Perfetto)")
    parser.add_argument("--metrics", metavar="PATH", default=None,
                        help="write the telemetry metrics as JSON")
    parser.add_argument("--seconds", type=_positive_int, default=1,
                        metavar="N",
                        help="simulated seconds to run (default 1)")
    parser.add_argument("--no-telemetry", action="store_true",
                        help="disable all metric collection")
    parser.add_argument("--faults", metavar="PLAN", default=None,
                        help="arm a fault plan ('examples' for the "
                             "built-in chaos plan, or a JSON plan file)")
    parser.add_argument("--full-reconfigure", action="store_true",
                        help="disable incremental (dirty-set) "
                             "reconfiguration: every lifecycle event "
                             "sweeps the full global view, the "
                             "historical behavior")
    return parser.parse_args(argv)


def main(argv=None):
    """Dispatch subcommands, else run the demo pipeline."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        from repro.lint.cli import main as lint_main
        return lint_main(argv[1:])
    if argv and argv[0] == "cluster":
        from repro.cluster.cli import main as cluster_main
        return cluster_main(argv[1:])
    if argv and argv[0] == "adapt":
        from repro.adapt.cli import main as adapt_main
        return adapt_main(argv[1:])
    if argv and argv[0] == "contracts":
        from repro.monitor.cli import main as contracts_main
        return contracts_main(argv[1:])
    args = _parse_args(argv)
    telemetry = Telemetry(enabled=not args.no_telemetry)
    platform = build_platform(seed=2008, telemetry=telemetry)
    if args.full_reconfigure:
        platform.drcr.incremental = False
    platform.start_timer(1 * MSEC)
    engine = None
    if args.faults is not None:
        from repro.faults import FaultEngine, load_plan
        engine = FaultEngine(platform, load_plan(args.faults)).arm()
    for name, xml in (("demo.calc", CALC_XML), ("demo.disp", DISP_XML)):
        platform.install_and_start(
            {"Bundle-SymbolicName": name,
             "RT-Component": "OSGI-INF/c.xml"},
            resources={"OSGI-INF/c.xml": xml})
    platform.run_for(args.seconds * SEC)
    print(system_report(platform.drcr))
    if engine is not None:
        print()
        print(engine.format_report())
    try:
        calc = platform.kernel.lookup("CALC00")
    except UnknownObjectError:
        print()
        print("CALC00 is not running at the end of the run "
              "(quarantined by the fault plan?)")
    else:
        summary = calc.stats.latency.summary()
        print()
        print("CALC00 scheduling latency (ns): avg=%.1f avedev=%.1f "
              "min=%d max=%d over %d jobs"
              % (summary["average"], summary["avedev"], summary["min"],
                 summary["max"], summary["count"]))
    if args.trace:
        document = platform.export_trace(args.trace)
        print("wrote Chrome trace (%d events) to %s"
              % (len(document["traceEvents"]), args.trace))
    if args.metrics:
        platform.export_metrics(args.metrics)
        print("wrote metrics to %s" % args.metrics)
    platform.shutdown()


if __name__ == "__main__":
    sys.exit(main())
