"""Workload generation for experiments.

Random task sets and random DRCom component populations, built on the
standard tools of the schedulability-evaluation literature:

* :func:`uunifast` -- Bini & Buttazzo's unbiased utilization splitter
  (the de-facto standard for generating task-set utilizations);
* :func:`log_uniform_periods` -- periods drawn log-uniformly across
  decades, snapped to a timer-grid-friendly quantum;
* :func:`generate_taskset` -- :class:`~repro.analysis.TaskSpec` sets
  with rate-monotonic priorities;
* :func:`generate_component_set` -- full DRCom descriptors, optionally
  chained through ports (component *i* consumes *i−1*'s outport), ready
  for :meth:`repro.core.DRCR.register_component`.

All draws go through named :class:`~repro.sim.rng.RandomStreams`
streams, so workloads are reproducible and independent of any other
randomness in a run.

Usage::

    from repro.sim.rng import RandomStreams
    from repro.workloads import generate_taskset, generate_component_set

    rng = RandomStreams(77)
    tasks = generate_taskset(rng, "w0", 8, total_utilization=0.7)
    for spec in tasks:                 # analysable TaskSpecs...
        print(spec.name, spec.period_ns, spec.wcet_ns, spec.priority)

    descriptors = generate_component_set(rng, "w0", 8,
                                         total_utilization=0.7,
                                         chained=True)
    for descriptor in descriptors:     # ...or deployable descriptors
        drcr.register_component(descriptor)

The ``name`` argument namespaces the random streams, so different
workloads are independent under one master seed and each reproduces
exactly.  The generators package up the workload recipes experiments
A2 (policy comparison) and A3 (scaling) build inline;
``tests/core/test_workloads.py`` checks the invariants (utilizations
sum to the target, periods stay on the timer grid, chained ports
resolve).
"""

import math

from repro.analysis import TaskSpec, rate_monotonic_priorities
from repro.core.contracts import DistributionSpec, StochasticContract
from repro.core.descriptor import ComponentDescriptor
from repro.core.ports import PortDirection, PortSpec
from repro.rtos.task import TaskType

_NS_PER_SEC = 1_000_000_000


def uunifast(rng, stream, count, total_utilization):
    """Bini-Buttazzo UUniFast: split ``total_utilization`` into
    ``count`` unbiased utilizations.

    Returns a list of floats summing to ``total_utilization``.
    """
    if count <= 0:
        raise ValueError("count must be positive, got %r" % (count,))
    if total_utilization <= 0:
        raise ValueError("total utilization must be positive")
    utilizations = []
    remaining = total_utilization
    for index in range(1, count):
        next_remaining = remaining * (
            rng.random(stream) ** (1.0 / (count - index)))
        utilizations.append(remaining - next_remaining)
        remaining = next_remaining
    utilizations.append(remaining)
    return utilizations


def log_uniform_periods(rng, stream, count, min_period_ns,
                        max_period_ns, quantum_ns=1_000_000):
    """Periods drawn log-uniformly in ``[min, max]``, rounded to the
    timer quantum (default 1 ms -- the benchmarks' tick)."""
    if min_period_ns <= 0 or max_period_ns < min_period_ns:
        raise ValueError("bad period range")
    periods = []
    log_lo = math.log(min_period_ns)
    log_hi = math.log(max_period_ns)
    for _ in range(count):
        raw = math.exp(rng.uniform(stream, log_lo, log_hi))
        snapped = max(quantum_ns,
                      int(round(raw / quantum_ns)) * quantum_ns)
        periods.append(snapped)
    return periods


def generate_taskset(rng, name, count, total_utilization,
                     min_period_ns=1_000_000, max_period_ns=100_000_000,
                     quantum_ns=1_000_000):
    """A random :class:`TaskSpec` set with RM priorities.

    ``name`` seeds the stream namespace, so different names give
    independent sets under the same master seed.
    """
    stream = "workload/%s" % name
    utilizations = uunifast(rng, stream, count, total_utilization)
    periods = log_uniform_periods(rng, stream, count, min_period_ns,
                                  max_period_ns, quantum_ns)
    specs = []
    for index, (utilization, period) in enumerate(
            zip(utilizations, periods)):
        wcet = max(1, int(utilization * period))
        specs.append(TaskSpec("%s_T%02d" % (name.upper()[:2], index),
                              period, wcet))
    priorities = rate_monotonic_priorities(specs)
    return [TaskSpec(spec.name, spec.period_ns, spec.wcet_ns,
                     priority=priorities[spec.name])
            for spec in specs]


def generate_component_set(rng, name, count, total_utilization,
                           chained=False, cpu=0,
                           min_period_ns=1_000_000,
                           max_period_ns=100_000_000,
                           priority_offset=0):
    """Random DRCom descriptors (optionally a dependency chain).

    Returns a list of :class:`ComponentDescriptor`.  Frequencies derive
    from the generated periods; declared ``cpuusage`` equals each
    task's generated utilization (i.e. the descriptors tell the truth).
    ``priority_offset`` shifts every generated priority, which is how
    a second population is made strictly less important than a first
    (lower number = more important throughout the repository) -- the
    C5 load-spike scenario marks its flash-crowd this way so shedding
    eats the spike before the baseline.
    """
    specs = generate_taskset(rng, name, count, total_utilization,
                             min_period_ns, max_period_ns)
    descriptors = []
    for index, spec in enumerate(specs):
        ports = []
        if chained:
            ports.append(PortSpec("%sP%03d" % (name.upper()[:2],
                                               index),
                                  PortDirection.OUT, "RTAI.SHM",
                                  "Integer", 2))
            if index > 0:
                ports.append(PortSpec("%sP%03d" % (name.upper()[:2],
                                                   index - 1),
                                      PortDirection.IN, "RTAI.SHM",
                                      "Integer", 2))
        frequency = _NS_PER_SEC / spec.period_ns
        # Names must be distinct after the six-character RTAI
        # derivation, so bake the index into an RTAI-safe name.
        descriptors.append(ComponentDescriptor(
            name="%sC%03d" % (name.upper()[:2], index),
            implementation="workload.%s.C%03d" % (name, index),
            task_type=TaskType.PERIODIC,
            description="generated workload component",
            cpu_usage=min(1.0, spec.utilization),
            frequency_hz=frequency,
            priority=spec.priority + priority_offset,
            cpu=cpu,
            ports=ports,
        ))
    return descriptors


def deploy_component_set(drcr, descriptors):
    """Deploy a generated population in one reconfiguration round.

    Registers every descriptor inside :meth:`repro.core.DRCR.batch`,
    so a fleet of N components costs one coalesced reconfiguration
    instead of N full rounds -- the deployment path experiments A2/A3
    (and any fleet-scale caller) should use.  Returns the managed
    components in descriptor order.
    """
    with drcr.batch():
        return [drcr.register_component(descriptor)
                for descriptor in descriptors]


#: Defects :func:`generate_defective_fleet` can plant, with the
#: drtlint diagnostic code each one must trigger.
DEFECT_CODES = {
    "cycle": "DRT204",
    "size_mismatch": "DRT202",
    "duplicate_task": "DRT102",
    "overutilization": "DRT301",
    "stochastic_mismatch": "DRT701",
}


def generate_defective_fleet(seed, count=8, defects=None,
                             total_utilization=0.3):
    """A seed-deterministic fleet with *known planted defects*.

    Builds a healthy chained fleet of ``count`` components (see
    :func:`generate_component_set`), then plants each requested defect
    as extra components:

    * ``"cycle"`` -- two components consuming each other's outports
      (drtlint DRT204);
    * ``"size_mismatch"`` -- a provider/consumer pair agreeing on the
      port name but not the size (DRT202);
    * ``"duplicate_task"`` -- two distinct component names that derive
      the same six-character RTAI task name (DRT102);
    * ``"overutilization"`` -- three half-CPU claims pinned to CPU 1
      (DRT301);
    * ``"stochastic_mismatch"`` -- a ``<stochastic>`` clause declaring
      an execution-time mean above the component's derived WCET
      (DRT701; its slow rate also draws the DRT702 verifiability
      warning, which is accurate -- the clause really is untestable at
      5 Hz).

    Returns ``(descriptors, expected_codes)`` where ``expected_codes``
    is the sorted list of diagnostic codes the planted defects must
    produce -- the lint tests and the chaos suite assert the
    error-level findings match it exactly.
    """
    from repro.sim.rng import RandomStreams
    if defects is None:
        defects = tuple(sorted(DEFECT_CODES))
    unknown = [d for d in defects if d not in DEFECT_CODES]
    if unknown:
        raise ValueError("unknown defects: %s (known: %s)"
                         % (", ".join(unknown),
                            ", ".join(sorted(DEFECT_CODES))))
    rng = RandomStreams(seed)
    descriptors = generate_component_set(
        rng, "df", count, total_utilization, chained=True)

    # Planted components run slower than the slowest base-fleet task
    # and at lower priority, so they stay rate-monotonically
    # consistent: the only diagnostics they trigger are the planted
    # ones (plus the admission warnings over-utilization implies).
    def _component(name, frequency_hz=5.0, cpu_usage=0.01, cpu=0,
                   priority=10, ports=()):
        return ComponentDescriptor(
            name=name, implementation="defect.%s" % name,
            task_type=TaskType.PERIODIC, cpu_usage=cpu_usage,
            frequency_hz=frequency_hz, priority=priority, cpu=cpu,
            description="planted defect component", ports=ports)

    if "cycle" in defects:
        descriptors.append(_component("CYCA00", ports=[
            PortSpec("CYCPA0", PortDirection.OUT, "RTAI.SHM",
                     "Integer", 2),
            PortSpec("CYCPB0", PortDirection.IN, "RTAI.SHM",
                     "Integer", 2)]))
        descriptors.append(_component("CYCB00", ports=[
            PortSpec("CYCPB0", PortDirection.OUT, "RTAI.SHM",
                     "Integer", 2),
            PortSpec("CYCPA0", PortDirection.IN, "RTAI.SHM",
                     "Integer", 2)]))
    if "size_mismatch" in defects:
        descriptors.append(_component("MISA00", ports=[
            PortSpec("MISP00", PortDirection.OUT, "RTAI.SHM",
                     "Integer", 4)]))
        descriptors.append(_component("MISB00", ports=[
            PortSpec("MISP00", PortDirection.IN, "RTAI.SHM",
                     "Integer", 8)]))
    if "duplicate_task" in defects:
        # Distinct component names, same canonical RTAI task name
        # (nam2num case-folds) -- the kernel can only register one.
        descriptors.append(_component("DUPT00"))
        descriptors.append(_component("dupt00"))
    if "overutilization" in defects:
        for index in range(3):
            descriptors.append(_component(
                "OVR%03d" % index, cpu_usage=0.5, cpu=1,
                priority=20 + index))
    if "stochastic_mismatch" in defects:
        # WCET derives as ceil(0.01 * 200 ms) = 2 ms; the declared
        # execution-time distribution averages 4 ms -- the CPU claim
        # cannot cover the declared demand (DRT701).
        descriptors.append(ComponentDescriptor(
            name="STOC00", implementation="defect.STOC00",
            task_type=TaskType.PERIODIC, cpu_usage=0.01,
            frequency_hz=5.0, priority=10,
            description="planted defect component",
            stochastic=StochasticContract(
                exectime=DistributionSpec(
                    "uniform", min_ns=3_000_000, max_ns=5_000_000))))
    expected_codes = sorted(DEFECT_CODES[d] for d in defects)
    return descriptors, expected_codes


#: Contract of the planted *bursty* component in
#: :func:`generate_bursty_fleet`: a 1 kHz periodic task claiming a
#: quarter CPU (derived WCET 250 us) whose execution time is declared
#: uniform in [100, 200] us -- comfortably inside the claim, so the
#: descriptor is lint-clean and point-estimate admission accepts it.
BURSTY_FREQUENCY_HZ = 1000.0
BURSTY_CPU_USAGE = 0.25
BURSTY_EXEC_MIN_NS = 100_000
BURSTY_EXEC_MAX_NS = 200_000

#: Contract of the planted *sporadic* component: minimum inter-arrival
#: 2 ms, arrivals declared normal(3 ms, 0.3 ms) -- less than 0.1 % of
#: that distribution's mass lies below the MIA, so the declaration is
#: lint-clean too.
SPORADIC_MIA_NS = 2_000_000
SPORADIC_ARRIVAL_MEAN_NS = 3_000_000
SPORADIC_ARRIVAL_STD_NS = 300_000
SPORADIC_CPU_USAGE = 0.05


def generate_bursty_fleet(rng, name, count=4, total_utilization=0.55,
                          cpu=0, tolerance=0.01, min_samples=32):
    """A fleet for experiment C6: honest base load plus two planted
    components carrying ``<stochastic>`` declarations.

    Returns ``(descriptors, planted)`` where ``planted`` maps
    ``"bursty"`` and ``"sporadic"`` to the planted component names:

    * the **bursty** component (:data:`BURSTY_CPU_USAGE` at
      :data:`BURSTY_FREQUENCY_HZ`) declares its execution time as
      uniform in [:data:`BURSTY_EXEC_MIN_NS`,
      :data:`BURSTY_EXEC_MAX_NS`] -- an implementation that honours
      the declaration passes the :class:`~repro.monitor.service.\
ContractMonitor`'s goodness-of-fit test, one that turns heavy-tailed/
      bimodal is caught within a few epochs even while every job still
      fits the period;
    * the **sporadic** component declares normal inter-arrivals
      (:data:`SPORADIC_ARRIVAL_MEAN_NS` +/-
      :data:`SPORADIC_ARRIVAL_STD_NS`, MIA :data:`SPORADIC_MIA_NS`);
      drive it with :func:`generate_bursty_arrivals` to get MIA-legal
      *clustered* arrivals that point-estimate admission cannot
      distinguish from the declaration but the monitor rejects.

    Both declarations are consistent with their point-estimate
    contracts (no DRT7xx errors): the whole point of C6 is that the
    *descriptors* look fine and only run-time checking can tell the
    declared distributions from the observed ones.

    The planted components take priorities 1 and 2; the base fleet is
    shifted below them, so bursty overruns interfere with the whole
    fleet (that is the "admits-then-thrashes" arm of C6).
    """
    descriptors = generate_component_set(
        rng, name, count, total_utilization, cpu=cpu,
        priority_offset=10)
    prefix = name.upper()[:2]
    descriptors.append(ComponentDescriptor(
        name="%sBRST" % prefix,
        implementation="workload.%s.bursty" % name,
        task_type=TaskType.PERIODIC,
        description="planted bursty component (C6)",
        cpu_usage=BURSTY_CPU_USAGE,
        frequency_hz=BURSTY_FREQUENCY_HZ,
        priority=1, cpu=cpu,
        stochastic=StochasticContract(
            exectime=DistributionSpec(
                "uniform", min_ns=BURSTY_EXEC_MIN_NS,
                max_ns=BURSTY_EXEC_MAX_NS),
            tolerance=tolerance, min_samples=min_samples)))
    descriptors.append(ComponentDescriptor(
        name="%sSPOR" % prefix,
        implementation="workload.%s.sporadic" % name,
        task_type=TaskType.SPORADIC,
        description="planted sporadic component (C6)",
        cpu_usage=SPORADIC_CPU_USAGE,
        min_interarrival_ns=SPORADIC_MIA_NS,
        priority=2, cpu=cpu,
        stochastic=StochasticContract(
            interarrival=DistributionSpec(
                "normal", mean_ns=SPORADIC_ARRIVAL_MEAN_NS,
                std_ns=SPORADIC_ARRIVAL_STD_NS),
            tolerance=tolerance, min_samples=min_samples)))
    planted = {"bursty": "%sBRST" % prefix,
               "sporadic": "%sSPOR" % prefix}
    return descriptors, planted


def generate_bursty_arrivals(rng, name, horizon_ns,
                             burst_at_ns=None,
                             mia_ns=SPORADIC_MIA_NS,
                             mean_ns=SPORADIC_ARRIVAL_MEAN_NS,
                             std_ns=SPORADIC_ARRIVAL_STD_NS,
                             burst_size=4):
    """Arrival instants (ns, sorted) for the planted sporadic component.

    Before ``burst_at_ns`` (default: never) gaps are drawn from the
    *declared* normal distribution, clamped to the MIA -- the honest
    regime.  From ``burst_at_ns`` on, arrivals come in clusters of
    ``burst_size`` spaced exactly ``mia_ns`` apart -- every arrival is
    legal (the kernel throttles nothing), and the long-run rate stays
    at the declared mean, but the inter-arrival *distribution* is
    bimodal: MIA-spaced inside a cluster, one long idle gap between
    clusters.  Point-estimate admission sees nothing wrong; the
    goodness-of-fit test rejects it within an epoch or two.
    """
    stream = "bursty/%s" % name
    if burst_at_ns is None:
        burst_at_ns = horizon_ns
    # The idle gap that keeps the clustered regime's average rate at
    # the declared mean: burst_size arrivals per (idle + bursts) span.
    idle_ns = burst_size * mean_ns - (burst_size - 1) * mia_ns
    arrivals = []
    now = max(mia_ns, int(rng.gauss(stream, mean_ns, std_ns)))
    while now < horizon_ns:
        if now < burst_at_ns:
            arrivals.append(now)
            now += max(mia_ns, int(rng.gauss(stream, mean_ns, std_ns)))
        else:
            for index in range(burst_size):
                if now >= horizon_ns:
                    break
                arrivals.append(now)
                now += mia_ns
            now += idle_ns - mia_ns
    return arrivals


#: Plan defects :func:`generate_defective_plan` can emit, with the
#: single DRT6xx code each one must trigger.
PLAN_DEFECT_CODES = {
    "overcommit": "DRT601",
    "no_n1_headroom": "DRT602",
    "split_application": "DRT603",
    "latency_budget": "DRT604",
    "orphan_rule": "DRT605",
}


def generate_defective_plan(kind):
    """A deployment plan with exactly one planted DRT6xx defect.

    The DRT6xx twin of :func:`generate_defective_fleet`: each ``kind``
    emits a plan document (the :mod:`repro.lint.deployment` schema,
    descriptors inlined) that trips *exactly* its
    :data:`PLAN_DEFECT_CODES` code under ``--family DRT6`` and nothing
    else from that family:

    * ``"overcommit"`` -- three 0.4 claims on a one-CPU node (the
      third cannot be placed, DRT601); a four-CPU second node keeps
      the N-1 analysis clean;
    * ``"no_n1_headroom"`` -- two one-CPU nodes at 0.7 each: both
      host fine, but neither survives the other's loss (DRT602);
    * ``"split_application"`` -- a two-member wired application with
      one member per node (DRT603);
    * ``"latency_budget"`` -- a 3 ms-deadline component behind a 5 ms
      control link: schedulable locally, unreachable in time by any
      management command (DRT604);
    * ``"orphan_rule"`` -- an adaptation rule scoped to (and
      rebalancing) a node the plan never declares (DRT605).

    Returns ``(plan_document, expected_code)``.  Seedless on purpose,
    like :func:`generate_rule_set`: a defective plan is a template
    instantiation, not a random draw.
    """
    if kind not in PLAN_DEFECT_CODES:
        raise ValueError("unknown plan defect %r (known: %s)"
                         % (kind,
                            ", ".join(sorted(PLAN_DEFECT_CODES))))

    def _xml(name, cpu_usage, frequency_hz=10.0, priority=10,
             deadline_ns=None, ports=()):
        return ComponentDescriptor(
            name=name, implementation="plandefect.%s" % name,
            task_type=TaskType.PERIODIC, cpu_usage=cpu_usage,
            frequency_hz=frequency_hz, priority=priority,
            deadline_ns=deadline_ns,
            description="planted plan defect component",
            ports=ports).to_xml()

    plan = {
        "plan_version": 1,
        "name": "defective-%s" % kind,
        "nodes": [{"name": "node0", "num_cpus": 1},
                  {"name": "node1", "num_cpus": 1}],
        "deployments": [],
    }
    if kind == "overcommit":
        plan["nodes"][1]["num_cpus"] = 4  # N-1 stays absorbable
        plan["deployments"].append({"node": "node0", "components": [
            {"xml": _xml("OVC%03d" % index, 0.4,
                         priority=10 + index)}
            for index in range(3)]})
    elif kind == "no_n1_headroom":
        plan["deployments"] = [
            {"node": "node0",
             "components": [{"xml": _xml("HRM000", 0.7)}]},
            {"node": "node1",
             "components": [{"xml": _xml("HRM001", 0.7)}]},
        ]
    elif kind == "split_application":
        plan["deployments"] = [
            {"node": "node0", "components": [
                {"xml": _xml("SRCA00", 0.1, ports=[
                    PortSpec("SPLP00", PortDirection.OUT, "RTAI.SHM",
                             "Integer", 2)])}]},
            {"node": "node1", "components": [
                {"xml": _xml("SNKA00", 0.1, ports=[
                    PortSpec("SPLP00", PortDirection.IN, "RTAI.SHM",
                             "Integer", 2)])}]},
        ]
        plan["applications"] = {"splitp": ["SRCA00", "SNKA00"]}
    elif kind == "latency_budget":
        plan["deployments"].append({"node": "node0", "components": [
            {"xml": _xml("TGT000", 0.2, frequency_hz=100.0,
                         deadline_ns=3_000_000)}]})
        plan["links"] = [{"src": "control", "dst": "node0",
                          "latency_ns": 5_000_000}]
    else:  # orphan_rule
        plan["deployments"].append({"node": "node0", "components": [
            {"xml": _xml("ORP000", 0.1)}]})
        plan["rules"] = [{"document": {
            "schema_version": 1,
            "rules": [{
                "name": "ghost-drain",
                "priority": 10,
                "when": {"param": "deadline_miss_rate", "op": ">",
                         "value": 0.05, "node": "node9",
                         "for_epochs": 2},
                "then": [{"action": "rebalance", "node": "node9",
                          "count": 1}],
                "cooldown_ns": 100_000_000,
            }],
        }}]
    return plan, PLAN_DEFECT_CODES[kind]


def generate_fault_plan(rng, name, descriptors, horizon_ns=1_000_000_000,
                        crash_fraction=0.25, overrun_fraction=0.25,
                        overrun_factor=50.0):
    """A random chaos plan over a generated component population.

    Picks ``crash_fraction`` of the components for a crash and
    ``overrun_fraction`` for a WCET-overrun window, with injection
    times uniform in the middle 80 % of ``horizon_ns``.  All draws go
    through the ``faultplan/<name>`` stream, so like the workload
    generators the plan reproduces exactly under one master seed; the
    plan's own seed is drawn from the same stream, keeping the
    injectors' probability gates deterministic too.

    Returns a :class:`~repro.faults.plan.FaultPlan` ready for
    :class:`~repro.faults.engine.FaultEngine`.
    """
    from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
    stream = "faultplan/%s" % name
    names = [descriptor.name for descriptor in descriptors]
    lo = int(horizon_ns * 0.1)
    hi = int(horizon_ns * 0.9)
    faults = []
    crash_count = max(1, int(len(names) * crash_fraction)) \
        if names else 0
    overrun_count = max(1, int(len(names) * overrun_fraction)) \
        if names else 0
    for target in sorted(rng.stream(stream).sample(names, crash_count)):
        faults.append(FaultSpec(FaultKind.CRASH, target,
                                at_ns=rng.randint(stream, lo, hi)))
    for target in sorted(rng.stream(stream).sample(names,
                                                   overrun_count)):
        faults.append(FaultSpec(
            FaultKind.OVERRUN, target,
            at_ns=rng.randint(stream, lo, hi),
            duration_ns=max(1, horizon_ns // 50),
            factor=overrun_factor))
    return FaultPlan(name, seed=rng.randint(stream, 0, 2**31 - 1),
                     faults=sorted(faults, key=lambda s: s.at_ns))


#: Rule-set kinds :func:`generate_rule_set` can emit.
RULE_SET_KINDS = ("latency-guard", "miss-rate-guard",
                  "migration-rebalance")


def generate_rule_set(kind, name=None, threshold=None, priority=10,
                      cooldown_ns=100_000_000, for_epochs=1,
                      clear_fraction=0.5, count=1, cpu=None,
                      node=None):
    """A parameterized adaptation rule document (a plain dict).

    The emitted document validates against the schema in
    :mod:`repro.adapt.rules` (docs/ADAPTATION.md has the reference)
    and is what the C5 scenario, ``examples/adaptive_rules.py`` and
    the CI ``adapt-smoke`` job feed the controller:

    * ``latency-guard`` -- shed the least-important component(s) while
      the windowed ``dispatch_latency_p99`` exceeds ``threshold`` ns
      (default 50 us), re-arming below ``clear_fraction`` of it;
    * ``miss-rate-guard`` -- shed while the windowed
      ``deadline_miss_rate`` exceeds ``threshold`` (default 0.02);
    * ``migration-rebalance`` -- in a federation, migrate the
      least-important component away from ``node`` (or the busiest
      node) while that node's miss rate exceeds ``threshold``
      (default 0.05).

    ``json.dump`` the result to get a rule *file*; pass it to
    :func:`repro.adapt.rules.parse_rule_document` to get runnable
    rules.  Seedless on purpose: rule emission is a template
    instantiation, not a random draw.
    """
    if kind not in RULE_SET_KINDS:
        raise ValueError("unknown rule-set kind %r (known: %s)"
                         % (kind, ", ".join(RULE_SET_KINDS)))
    shed = {"action": "shed_lowest_priority", "count": count}
    if cpu is not None:
        shed["cpu"] = cpu
    if kind == "latency-guard":
        threshold = 50_000 if threshold is None else threshold
        rule = {
            "name": name or "latency-guard",
            "priority": priority,
            "when": {"param": "dispatch_latency_p99", "op": ">",
                     "value": threshold, "for_epochs": for_epochs},
            "clear": {"op": "<=",
                      "value": threshold * clear_fraction},
            "then": [shed],
            "cooldown_ns": cooldown_ns,
        }
    elif kind == "miss-rate-guard":
        threshold = 0.02 if threshold is None else threshold
        rule = {
            "name": name or "miss-rate-guard",
            "priority": priority,
            "when": {"param": "deadline_miss_rate", "op": ">",
                     "value": threshold, "for_epochs": for_epochs},
            "then": [shed],
            "cooldown_ns": cooldown_ns,
        }
    else:
        threshold = 0.05 if threshold is None else threshold
        when = {"param": "deadline_miss_rate", "op": ">",
                "value": threshold, "for_epochs": for_epochs}
        rebalance = {"action": "rebalance", "count": count}
        if node is not None:
            when["node"] = node
            rebalance["node"] = node
        rule = {
            "name": name or "migration-rebalance",
            "priority": priority,
            "when": when,
            "then": [rebalance],
            "cooldown_ns": cooldown_ns,
        }
    return {"schema_version": 1, "rules": [rule]}
