"""The OSGi framework: bundle management, wiring, events, registry.

The reproduction's Equinox stand-in.  It owns every bundle lifecycle
transition, maintains the wiring resolver and the service registry, and
delivers bundle/service/framework events synchronously.  DRCR
(:mod:`repro.core.drcr`) attaches to a framework instance as a bundle
listener, exactly as the paper's runtime sits on Equinox 3.2.1.
"""

import itertools

from repro.osgi.bundle import Bundle, BundleContext, BundleState
from repro.osgi.errors import BundleError, BundleStateError, ResolutionError
from repro.osgi.events import (
    BundleEvent,
    BundleEventType,
    FrameworkEvent,
    FrameworkEventType,
    ListenerList,
)
from repro.osgi.registry import ServiceRegistry
from repro.osgi.wiring import WiringResolver


class Framework:
    """A running OSGi framework instance.

    ``telemetry`` is an optional :class:`~repro.telemetry.metrics
    .Telemetry` switchboard; when given, the service registry's lookup
    and filter-cache instruments land in its ``osgi`` registry.
    """

    def __init__(self, telemetry=None):
        self._bundles = []
        self._ids = itertools.count(1)
        self.framework_events = []
        self.bundle_listeners = ListenerList(on_error=self._listener_error)
        self.service_listeners = ListenerList(on_error=self._listener_error)
        metrics = telemetry.registry("osgi") if telemetry is not None \
            else None
        self.registry = ServiceRegistry(listeners=self.service_listeners,
                                        metrics=metrics)
        self.resolver = WiringResolver()
        self._started = True
        self._record(FrameworkEventType.STARTED)

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def _record(self, event_type, source=None, error=None):
        self.framework_events.append(
            FrameworkEvent(event_type, source, error))

    def _listener_error(self, listener, event, error):
        self._record(FrameworkEventType.ERROR, source=listener, error=error)

    def _emit_bundle_event(self, event_type, bundle):
        self.bundle_listeners.deliver(BundleEvent(event_type, bundle))

    # ------------------------------------------------------------------
    # bundle management
    # ------------------------------------------------------------------
    def install_bundle(self, headers, resources=None, activator=None):
        """Install a bundle from headers + resources.

        Duplicate (symbolic-name, version) pairs are rejected, per spec.
        """
        bundle = Bundle(self, next(self._ids), headers, resources,
                        activator)
        for existing in self._bundles:
            if (existing.symbolic_name == bundle.symbolic_name
                    and existing.version == bundle.version
                    and existing.state is not BundleState.UNINSTALLED):
                raise BundleError(
                    "bundle %s %s already installed"
                    % (bundle.symbolic_name, bundle.version))
        self._bundles.append(bundle)
        self._emit_bundle_event(BundleEventType.INSTALLED, bundle)
        return bundle

    def resolve_bundle(self, bundle):
        """Resolve a bundle's package imports; publishes its exports."""
        bundle._require_state(BundleState.INSTALLED)
        self.resolver.offer_exports(bundle)
        try:
            self.resolver.resolve(bundle)
        except ResolutionError:
            self.resolver.withdraw_exports(bundle)
            raise
        bundle.state = BundleState.RESOLVED
        self._emit_bundle_event(BundleEventType.RESOLVED, bundle)

    def start_bundle(self, bundle):
        """Start a bundle (resolving first when needed)."""
        if bundle.state is BundleState.ACTIVE:
            return
        if bundle.state is BundleState.INSTALLED:
            self.resolve_bundle(bundle)
        bundle._require_state(BundleState.RESOLVED)
        bundle.state = BundleState.STARTING
        bundle.context = BundleContext(self, bundle)
        self._emit_bundle_event(BundleEventType.STARTING, bundle)
        if bundle.activator is not None:
            try:
                bundle.activator.start(bundle.context)
            except Exception:
                bundle.state = BundleState.RESOLVED
                bundle.context = None
                raise
        bundle.state = BundleState.ACTIVE
        self._emit_bundle_event(BundleEventType.STARTED, bundle)

    def stop_bundle(self, bundle):
        """Stop an active bundle; its services are unregistered."""
        if bundle.state is not BundleState.ACTIVE:
            raise BundleStateError(
                "bundle %s is %s; cannot stop"
                % (bundle.symbolic_name, bundle.state.name))
        bundle.state = BundleState.STOPPING
        self._emit_bundle_event(BundleEventType.STOPPING, bundle)
        try:
            if bundle.activator is not None:
                bundle.activator.stop(bundle.context)
        finally:
            self.registry.unregister_all_for_bundle(bundle)
            bundle.context = None
            bundle.state = BundleState.RESOLVED
            self._emit_bundle_event(BundleEventType.STOPPED, bundle)

    def uninstall_bundle(self, bundle):
        """Remove a bundle entirely (stopping it first if active)."""
        if bundle.state is BundleState.UNINSTALLED:
            raise BundleStateError("bundle already uninstalled")
        if bundle.state is BundleState.ACTIVE:
            self.stop_bundle(bundle)
        if bundle.is_resolved:
            self.resolver.unresolve(bundle)
            self.resolver.withdraw_exports(bundle)
            self._emit_bundle_event(BundleEventType.UNRESOLVED, bundle)
        bundle.state = BundleState.UNINSTALLED
        self._emit_bundle_event(BundleEventType.UNINSTALLED, bundle)
        self._bundles.remove(bundle)

    def update_bundle(self, bundle, headers=None, resources=None,
                      activator=None):
        """Swap bundle content in place (the continuous-deployment
        update path); an active bundle is stopped, updated, restarted."""
        was_active = bundle.state is BundleState.ACTIVE
        if was_active:
            self.stop_bundle(bundle)
        if bundle.is_resolved:
            self.resolver.unresolve(bundle)
            self.resolver.withdraw_exports(bundle)
            bundle.state = BundleState.INSTALLED
        if headers is not None:
            from repro.osgi.manifest import BundleManifest
            bundle.manifest = BundleManifest(headers)
        if resources is not None:
            bundle.resources = dict(resources)
        if activator is not None:
            bundle.activator = activator
        self._emit_bundle_event(BundleEventType.UPDATED, bundle)
        if was_active:
            self.start_bundle(bundle)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get_bundles(self):
        """All installed bundles, in install order."""
        return list(self._bundles)

    def get_bundle(self, symbolic_name, version=None):
        """Find a bundle by symbolic name (and optionally version)."""
        for bundle in self._bundles:
            if bundle.symbolic_name != symbolic_name:
                continue
            if version is not None and str(bundle.version) != str(version):
                continue
            return bundle
        return None

    def shutdown(self):
        """Stop every active bundle (reverse install order) and the
        framework itself."""
        for bundle in reversed(self._bundles):
            if bundle.state is BundleState.ACTIVE:
                self.stop_bundle(bundle)
        self._started = False
        self._record(FrameworkEventType.STOPPED)

    def __repr__(self):
        return "Framework(%d bundles, %d services)" % (
            len(self._bundles), len(self.registry))
