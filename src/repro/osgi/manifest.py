"""Bundle manifest parsing (OSGi Core spec section 3.2.4 header syntax).

A manifest is a mapping of headers; list-valued headers
(``Import-Package``, ``Export-Package``, ...) hold comma-separated
*clauses*, each with one or more paths plus ``attr=value`` attributes and
``dir:=value`` directives::

    Import-Package: ua.pats.control;version="[1.0,2.0)",ua.pats.io
    Export-Package: ua.pats.camera;version=1.2
    RT-Component: OSGI-INF/camera.xml

The ``RT-Component`` header plays the role Declarative Services'
``Service-Component`` header plays in the paper's prototype: it points at
the DRCom XML descriptors inside the bundle that the DRCR runtime parses
on arrival (section 2.2: "When the component is deployed into the
system, the DRCR service will automatically parse its real-time
component configuration").
"""

from repro.osgi.errors import ManifestError
from repro.osgi.version import Version, VersionRange

#: Manifest header naming the bundle's DRCom descriptor resources.
RT_COMPONENT_HEADER = "RT-Component"

#: Manifest header naming the bundle's application (grouped-component)
#: descriptor resources.
RT_APPLICATION_HEADER = "RT-Application"


class HeaderClause:
    """One clause of a list-valued manifest header."""

    __slots__ = ("paths", "attributes", "directives")

    def __init__(self, paths, attributes=None, directives=None):
        self.paths = list(paths)
        self.attributes = dict(attributes or {})
        self.directives = dict(directives or {})

    @property
    def path(self):
        """The first (usually only) path of the clause."""
        return self.paths[0]

    def version_range(self, default="0.0.0"):
        """The clause's ``version`` attribute as a range (imports)."""
        return VersionRange.parse(self.attributes.get("version", default))

    def version(self, default="0.0.0"):
        """The clause's ``version`` attribute as a version (exports)."""
        return Version.parse(self.attributes.get("version", default))

    def __repr__(self):
        return "HeaderClause(%r, attrs=%r, dirs=%r)" % (
            self.paths, self.attributes, self.directives)


def _split_quoted(text, separator):
    """Split on ``separator`` outside double quotes."""
    parts = []
    current = []
    in_quote = False
    for ch in text:
        if ch == '"':
            in_quote = not in_quote
            current.append(ch)
        elif ch == separator and not in_quote:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    if in_quote:
        raise ManifestError("unterminated quote in header: %r" % (text,))
    return parts


def _unquote(value):
    value = value.strip()
    if len(value) >= 2 and value[0] == '"' and value[-1] == '"':
        return value[1:-1]
    return value


def parse_header(text):
    """Parse a list-valued header into :class:`HeaderClause` objects."""
    if text is None:
        return []
    clauses = []
    for raw_clause in _split_quoted(text, ","):
        raw_clause = raw_clause.strip()
        if not raw_clause:
            continue
        paths = []
        attributes = {}
        directives = {}
        for part in _split_quoted(raw_clause, ";"):
            part = part.strip()
            if not part:
                continue
            if ":=" in part:
                key, _, value = part.partition(":=")
                directives[key.strip()] = _unquote(value)
            elif "=" in part:
                key, _, value = part.partition("=")
                attributes[key.strip()] = _unquote(value)
            else:
                paths.append(part)
        if not paths:
            raise ManifestError(
                "header clause without a path: %r" % (raw_clause,))
        clauses.append(HeaderClause(paths, attributes, directives))
    return clauses


class BundleManifest:
    """Parsed view of a bundle's headers."""

    def __init__(self, headers):
        self.headers = dict(headers)
        symbolic = self.headers.get("Bundle-SymbolicName")
        if not symbolic:
            raise ManifestError("Bundle-SymbolicName header is required")
        clauses = parse_header(symbolic)
        self.symbolic_name = clauses[0].path
        self.version = Version.parse(
            self.headers.get("Bundle-Version", "0.0.0"))
        self.name = self.headers.get("Bundle-Name", self.symbolic_name)
        self.activator = self.headers.get("Bundle-Activator")
        self.imports = parse_header(self.headers.get("Import-Package"))
        self.exports = parse_header(self.headers.get("Export-Package"))
        self.rt_components = [
            clause.path for clause in
            parse_header(self.headers.get(RT_COMPONENT_HEADER))
        ]
        self.rt_applications = [
            clause.path for clause in
            parse_header(self.headers.get(RT_APPLICATION_HEADER))
        ]
        self._check_duplicate_imports()

    def _check_duplicate_imports(self):
        seen = set()
        for clause in self.imports:
            for path in clause.paths:
                if path in seen:
                    raise ManifestError(
                        "package %r imported twice" % (path,))
                seen.add(path)

    def exported_packages(self):
        """Yield ``(package, version, attributes)`` for every export."""
        for clause in self.exports:
            for path in clause.paths:
                yield path, clause.version(), dict(clause.attributes)

    def imported_packages(self):
        """Yield ``(package, version_range, attributes, optional)``."""
        for clause in self.imports:
            optional = clause.directives.get("resolution") == "optional"
            for path in clause.paths:
                yield (path, clause.version_range(), dict(clause.attributes),
                       optional)

    def __repr__(self):
        return "BundleManifest(%s %s)" % (self.symbolic_name, self.version)
