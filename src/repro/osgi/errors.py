"""Exceptions raised by the OSGi substrate."""


class OSGiError(Exception):
    """Base class for all OSGi-layer errors."""


class BundleError(OSGiError):
    """A bundle lifecycle operation failed."""


class BundleStateError(BundleError):
    """The operation is invalid in the bundle's current state."""


class ManifestError(OSGiError):
    """A bundle manifest is malformed."""


class ResolutionError(OSGiError):
    """The wiring resolver could not satisfy a bundle's imports."""

    def __init__(self, message, unresolved=()):
        super().__init__(message)
        #: The import clauses that could not be satisfied.
        self.unresolved = list(unresolved)


class InvalidFilterError(OSGiError):
    """An LDAP filter string failed to parse (RFC 1960 syntax)."""


class ServiceError(OSGiError):
    """A service registry operation failed."""


class ServiceUnregisteredError(ServiceError):
    """The service reference points at an unregistered service."""


class VersionError(OSGiError):
    """A version or version-range string is malformed."""
