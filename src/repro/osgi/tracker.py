"""ServiceTracker (OSGi compendium chapter 701).

Tracks services matching an interface and/or LDAP filter, with add /
modified / removed callbacks.  DRCR uses a tracker to discover
*customized resolving services* as they come and go (the paper's
"resolving service to provide customized real-time admission and
adaptation service, which can be plugged into the DRCR runtime by using
OSGi service model", section 1).
"""

from repro.osgi.events import ServiceEventType
from repro.osgi.ldap import parse_filter
from repro.osgi.services import OBJECTCLASS


class ServiceTracker:
    """Tracks matching services; call :meth:`open` to start."""

    def __init__(self, framework, clazz=None, filter_text=None,
                 on_added=None, on_modified=None, on_removed=None):
        if clazz is None and filter_text is None:
            raise ValueError("need an interface name or a filter")
        self._framework = framework
        self._clazz = clazz
        self._filter = parse_filter(filter_text) if filter_text else None
        self._on_added = on_added
        self._on_modified = on_modified
        self._on_removed = on_removed
        self._tracked = {}
        self._open = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def open(self):
        """Start tracking: existing matches are reported as added."""
        if self._open:
            return
        self._open = True
        self._framework.service_listeners.add(self._on_event)
        for reference in self._framework.registry.get_references(
                self._clazz, str(self._filter) if self._filter else None):
            self._track(reference)

    def close(self):
        """Stop tracking: tracked services are reported as removed."""
        if not self._open:
            return
        self._open = False
        self._framework.service_listeners.remove(self._on_event)
        for reference in list(self._tracked):
            self._untrack(reference)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def tracking_count(self):
        """Number of currently tracked services."""
        return len(self._tracked)

    def get_references(self):
        """Tracked references, best-first."""
        refs = list(self._tracked)
        refs.sort(key=lambda ref: ref.sort_key())
        return refs

    def get_services(self):
        """Tracked service objects, best-first."""
        return [self._tracked[ref] for ref in self.get_references()]

    def get_service(self):
        """The best tracked service object, or None."""
        refs = self.get_references()
        return self._tracked[refs[0]] if refs else None

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _matches(self, reference):
        props = reference.get_properties()
        if self._clazz is not None \
                and self._clazz not in props[OBJECTCLASS]:
            return False
        if self._filter is not None and not self._filter.matches(props):
            return False
        return True

    def _track(self, reference):
        service = self._framework.registry.get_service(reference)
        if service is None:
            return
        self._tracked[reference] = service
        if self._on_added is not None:
            self._on_added(reference, service)

    def _untrack(self, reference):
        service = self._tracked.pop(reference, None)
        if service is not None and self._on_removed is not None:
            self._on_removed(reference, service)

    def _on_event(self, event):
        reference = event.reference
        if event.event_type is ServiceEventType.REGISTERED:
            if self._matches(reference):
                self._track(reference)
        elif event.event_type is ServiceEventType.MODIFIED:
            matches = self._matches(reference)
            tracked = reference in self._tracked
            if matches and not tracked:
                self._track(reference)
            elif not matches and tracked:
                self._untrack(reference)
            elif matches and tracked and self._on_modified is not None:
                self._on_modified(reference, self._tracked[reference])
        elif event.event_type is ServiceEventType.UNREGISTERING:
            if reference in self._tracked:
                self._untrack(reference)
