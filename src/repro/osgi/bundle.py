"""Bundles and bundle contexts (OSGi Core spec chapter 4).

A bundle here is an in-process unit: a :class:`BundleManifest`, a set of
named *resources* (the DRCom XML descriptors live here, like files in a
jar), and an optional activator.  The state machine is the spec's:
``INSTALLED -> RESOLVED -> STARTING -> ACTIVE -> STOPPING -> RESOLVED``
and ``-> UNINSTALLED``, with the framework owning every transition --
the continuous-deployment property ("install, update, and uninstall the
bundles without restart[ing] the whole system", section 1) that the
DRCR's dynamicity handling builds on.
"""

import enum

from repro.osgi.errors import BundleStateError
from repro.osgi.manifest import BundleManifest


class BundleState(enum.Enum):
    """The OSGi bundle states."""

    INSTALLED = "installed"
    RESOLVED = "resolved"
    STARTING = "starting"
    ACTIVE = "active"
    STOPPING = "stopping"
    UNINSTALLED = "uninstalled"


class BundleActivator:
    """Optional start/stop hook a bundle may provide."""

    def start(self, context):
        """Called on bundle start with the bundle's context."""

    def stop(self, context):
        """Called on bundle stop with the bundle's context."""


class Bundle:
    """An installed bundle.  Constructed by the framework only."""

    def __init__(self, framework, bundle_id, headers, resources=None,
                 activator=None):
        self._framework = framework
        self.bundle_id = bundle_id
        self.manifest = BundleManifest(headers)
        #: Named in-bundle resources (path -> text), e.g. DRCom XML.
        self.resources = dict(resources or {})
        self.activator = activator
        self.state = BundleState.INSTALLED
        self.context = None

    # ------------------------------------------------------------------
    # identity / introspection
    # ------------------------------------------------------------------
    @property
    def symbolic_name(self):
        """The bundle's symbolic name."""
        return self.manifest.symbolic_name

    @property
    def version(self):
        """The bundle's version."""
        return self.manifest.version

    @property
    def is_resolved(self):
        """Whether the bundle reached RESOLVED or beyond (not
        uninstalled)."""
        return self.state in (BundleState.RESOLVED, BundleState.STARTING,
                              BundleState.ACTIVE, BundleState.STOPPING)

    @property
    def is_active(self):
        """Whether the bundle is ACTIVE."""
        return self.state is BundleState.ACTIVE

    def get_resource(self, path):
        """Read a named resource (None when absent)."""
        return self.resources.get(path)

    def _require_state(self, *states):
        if self.state not in states:
            raise BundleStateError(
                "bundle %s is %s; expected %s"
                % (self.symbolic_name, self.state.name,
                   "/".join(s.name for s in states)))

    # ------------------------------------------------------------------
    # lifecycle (delegates to the framework, which owns transitions)
    # ------------------------------------------------------------------
    def start(self):
        """Resolve (if needed) and start the bundle."""
        self._framework.start_bundle(self)

    def stop(self):
        """Stop the bundle (back to RESOLVED)."""
        self._framework.stop_bundle(self)

    def uninstall(self):
        """Remove the bundle from the framework."""
        self._framework.uninstall_bundle(self)

    def update(self, headers=None, resources=None, activator=None):
        """Swap the bundle's content in place (continuous deployment)."""
        self._framework.update_bundle(self, headers, resources, activator)

    def __repr__(self):
        return "Bundle(%d, %s %s, %s)" % (
            self.bundle_id, self.symbolic_name, self.version,
            self.state.value)


class BundleContext:
    """A bundle's window on the framework while STARTING..STOPPING."""

    def __init__(self, framework, bundle):
        self._framework = framework
        self.bundle = bundle

    # -- services -------------------------------------------------------
    def register_service(self, classes, service, properties=None):
        """Register a service on behalf of this bundle."""
        return self._framework.registry.register(
            classes, service, properties, bundle=self.bundle)

    def get_service_references(self, clazz=None, filter_text=None):
        """Query the registry (best-first)."""
        return self._framework.registry.get_references(clazz, filter_text)

    def get_service_reference(self, clazz=None, filter_text=None):
        """Best matching reference or None."""
        return self._framework.registry.get_reference(clazz, filter_text)

    def get_service(self, reference):
        """Dereference a service."""
        return self._framework.registry.get_service(reference)

    # -- bundles --------------------------------------------------------
    def install_bundle(self, headers, resources=None, activator=None):
        """Install a new bundle."""
        return self._framework.install_bundle(headers, resources,
                                              activator)

    def get_bundles(self):
        """All installed bundles."""
        return self._framework.get_bundles()

    # -- listeners ------------------------------------------------------
    def add_bundle_listener(self, listener):
        """Subscribe to BundleEvents."""
        self._framework.bundle_listeners.add(listener)

    def remove_bundle_listener(self, listener):
        """Unsubscribe from BundleEvents."""
        self._framework.bundle_listeners.remove(listener)

    def add_service_listener(self, listener):
        """Subscribe to ServiceEvents."""
        self._framework.service_listeners.add(listener)

    def remove_service_listener(self, listener):
        """Unsubscribe from ServiceEvents."""
        self._framework.service_listeners.remove(listener)
