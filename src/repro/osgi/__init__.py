"""The OSGi substrate (the reproduction's Equinox stand-in).

Implements the OSGi-core subset the paper's framework depends on:
bundles with manifests and resources, package wiring, the LDAP-filter
service registry, synchronous bundle/service events, service trackers,
and a Declarative Services subset for comparison.
"""

from repro.osgi.bundle import (
    Bundle,
    BundleActivator,
    BundleContext,
    BundleState,
)
from repro.osgi.declarative import (
    ComponentDescription,
    DSComponent,
    DSRuntime,
    ReferenceSpec,
)
from repro.osgi.errors import (
    BundleError,
    BundleStateError,
    InvalidFilterError,
    ManifestError,
    OSGiError,
    ResolutionError,
    ServiceError,
    ServiceUnregisteredError,
    VersionError,
)
from repro.osgi.events import (
    BundleEvent,
    BundleEventType,
    FrameworkEvent,
    FrameworkEventType,
    ListenerList,
    ServiceEvent,
    ServiceEventType,
)
from repro.osgi.framework import Framework
from repro.osgi.ldap import LDAPFilter, escape, parse_filter
from repro.osgi.manifest import (
    RT_COMPONENT_HEADER,
    BundleManifest,
    HeaderClause,
    parse_header,
)
from repro.osgi.registry import ServiceRegistry
from repro.osgi.services import (
    OBJECTCLASS,
    SERVICE_ID,
    SERVICE_RANKING,
    ServiceReference,
    ServiceRegistration,
)
from repro.osgi.tracker import ServiceTracker
from repro.osgi.version import Version, VersionRange
from repro.osgi.wiring import (
    ExportedPackage,
    ImportedPackage,
    Wire,
    WiringResolver,
)

__all__ = [
    "Bundle",
    "BundleActivator",
    "BundleContext",
    "BundleError",
    "BundleEvent",
    "BundleEventType",
    "BundleManifest",
    "BundleState",
    "BundleStateError",
    "ComponentDescription",
    "DSComponent",
    "DSRuntime",
    "escape",
    "ExportedPackage",
    "Framework",
    "FrameworkEvent",
    "FrameworkEventType",
    "HeaderClause",
    "ImportedPackage",
    "InvalidFilterError",
    "LDAPFilter",
    "ListenerList",
    "ManifestError",
    "OBJECTCLASS",
    "OSGiError",
    "parse_filter",
    "parse_header",
    "ReferenceSpec",
    "ResolutionError",
    "RT_COMPONENT_HEADER",
    "ServiceError",
    "ServiceEvent",
    "ServiceEventType",
    "ServiceReference",
    "ServiceRegistration",
    "ServiceRegistry",
    "ServiceTracker",
    "ServiceUnregisteredError",
    "SERVICE_ID",
    "SERVICE_RANKING",
    "Version",
    "VersionError",
    "VersionRange",
    "Wire",
    "WiringResolver",
]
