"""RFC 1960 LDAP search filters, as used by the OSGi service registry.

The paper points out that OSGi composition "is still largely based on
import and export of java packages resolved by the LDAP filter"
(section 2.1); both the service registry queries and Declarative
Services target filters go through this implementation.

Grammar (RFC 1960)::

    filter     = '(' filtercomp ')'
    filtercomp = and | or | not | item
    and        = '&' filterlist
    or         = '|' filterlist
    not        = '!' filter
    filterlist = 1*filter
    item       = simple | present | substring
    simple     = attr filtertype value
    filtertype = '=' | '~=' | '>=' | '<='
    present    = attr '=*'
    substring  = attr '=' [initial] any [final]

Matching follows the OSGi framework rules: attribute names are
case-insensitive; values coerce to the attribute's type (numbers compare
numerically, :class:`~repro.osgi.version.Version` values compare as
versions, lists match if any element matches).

Performance notes (see docs/PERFORMANCE.md)
-------------------------------------------
Beyond the :class:`FilterCache` text->filter memo, every
:class:`LDAPFilter` is **compiled to a closure tree** at construction:
each node becomes one ``props -> bool`` function with its attribute
name, lowered fallback key and comparison bound as locals, so a
``matches`` call is a chain of direct calls with no per-call attribute
dispatch, no ``_lookup`` helper frame, and an exact-key ``dict.get``
fast path (the case-insensitive scan only runs when the exact key is
absent).  The node classes keep their ``matches`` methods as the
reference semantics; the compiled form must behave identically.
"""

from repro.osgi.errors import InvalidFilterError
from repro.osgi.version import Version


def escape(value):
    """Escape a literal value for embedding in a filter string."""
    out = []
    for ch in str(value):
        if ch in "\\*()":
            out.append("\\" + ch)
        else:
            out.append(ch)
    return "".join(out)


class FilterNode:
    """Base class for parsed filter nodes."""

    def matches(self, props):
        """Evaluate against a properties mapping."""
        raise NotImplementedError


class AndNode(FilterNode):
    """Conjunction of sub-filters."""

    def __init__(self, children):
        self.children = children

    def matches(self, props):
        return all(child.matches(props) for child in self.children)

    def __str__(self):
        return "(&%s)" % "".join(str(c) for c in self.children)


class OrNode(FilterNode):
    """Disjunction of sub-filters."""

    def __init__(self, children):
        self.children = children

    def matches(self, props):
        return any(child.matches(props) for child in self.children)

    def __str__(self):
        return "(|%s)" % "".join(str(c) for c in self.children)


class NotNode(FilterNode):
    """Negation of one sub-filter."""

    def __init__(self, child):
        self.child = child

    def matches(self, props):
        return not self.child.matches(props)

    def __str__(self):
        return "(!%s)" % self.child


class PresentNode(FilterNode):
    """``(attr=*)`` -- attribute presence."""

    def __init__(self, attr):
        self.attr = attr

    def matches(self, props):
        return _lookup(props, self.attr) is not _MISSING

    def __str__(self):
        return "(%s=*)" % self.attr


class SubstringNode(FilterNode):
    """``(attr=ini*mid*fin)`` -- wildcard string match."""

    def __init__(self, attr, parts):
        self.attr = attr
        self.parts = parts  # list of literal chunks; '' marks wildcards

    def matches(self, props):
        value = _lookup(props, self.attr)
        if value is _MISSING:
            return False
        return _any_value(value, self._match_one)

    def _match_one(self, value):
        text = str(value)
        chunks = self.parts
        position = 0
        # First chunk anchors at the start when non-empty.
        first = chunks[0]
        if first:
            if not text.startswith(first):
                return False
            position = len(first)
        last = chunks[-1]
        middle = chunks[1:-1] if len(chunks) > 1 else []
        for chunk in middle:
            if not chunk:
                continue
            index = text.find(chunk, position)
            if index < 0:
                return False
            position = index + len(chunk)
        if len(chunks) > 1 and last:
            if not text.endswith(last):
                return False
            if len(text) - len(last) < position:
                return False
        return True

    def __str__(self):
        return "(%s=%s)" % (self.attr,
                            "*".join(escape(p) for p in self.parts))


class CompareNode(FilterNode):
    """``=``, ``~=``, ``>=`` and ``<=`` comparisons."""

    def __init__(self, attr, op, value):
        self.attr = attr
        self.op = op
        self.value = value

    def matches(self, props):
        actual = _lookup(props, self.attr)
        if actual is _MISSING:
            return False
        return _any_value(actual, self._match_one)

    def _match_one(self, actual):
        expected = _coerce(self.value, actual)
        if expected is _MISSING:
            return False
        if self.op == "=":
            return actual == expected
        if self.op == "~=":
            return _approx(actual) == _approx(expected)
        try:
            if self.op == ">=":
                return actual >= expected
            if self.op == "<=":
                return actual <= expected
        except TypeError:
            return False
        raise InvalidFilterError("unknown operator %r" % (self.op,))

    def __str__(self):
        return "(%s%s%s)" % (self.attr, self.op, escape(self.value))


_MISSING = object()


def _lookup(props, attr):
    """Case-insensitive property lookup."""
    if attr in props:
        return props[attr]
    lowered = attr.lower()
    for key, value in props.items():
        if isinstance(key, str) and key.lower() == lowered:
            return value
    return _MISSING


def _any_value(value, predicate):
    """Lists/tuples/sets match if any element matches (OSGi rule)."""
    if isinstance(value, (list, tuple, set, frozenset)):
        return any(predicate(item) for item in value)
    return predicate(value)


def _coerce(text, actual):
    """Coerce the filter's string value to the actual value's type."""
    if isinstance(actual, bool):
        lowered = text.strip().lower()
        if lowered in ("true", "false"):
            return lowered == "true"
        return _MISSING
    if isinstance(actual, int):
        try:
            return int(text)
        except ValueError:
            return _MISSING
    if isinstance(actual, float):
        try:
            return float(text)
        except ValueError:
            return _MISSING
    if isinstance(actual, Version):
        try:
            return Version.parse(text)
        except Exception:
            return _MISSING
    return text


def _approx(value):
    """Approximate matching: case-fold and strip whitespace."""
    return "".join(str(value).split()).lower()


def _compile(node):
    """Compile a parsed node tree into a ``props -> bool`` closure.

    Mirrors the ``matches`` methods exactly; two-child and/or gets a
    short-circuit special case because ``(&(a=b)(c=d))`` dominates real
    registry queries.
    """
    if isinstance(node, AndNode):
        parts = [_compile(child) for child in node.children]
        if len(parts) == 2:
            first, second = parts
            return lambda props: first(props) and second(props)
        return lambda props: all(part(props) for part in parts)
    if isinstance(node, OrNode):
        parts = [_compile(child) for child in node.children]
        if len(parts) == 2:
            first, second = parts
            return lambda props: first(props) or second(props)
        return lambda props: any(part(props) for part in parts)
    if isinstance(node, NotNode):
        inner = _compile(node.child)
        return lambda props: not inner(props)
    if isinstance(node, PresentNode):
        attr = node.attr
        lowered = attr.lower()

        def present(props):
            if attr in props:
                return True
            for key in props:
                if isinstance(key, str) and key.lower() == lowered:
                    return True
            return False

        return present
    # Leaf comparison (CompareNode / SubstringNode): exact-key fast
    # path, case-insensitive fallback, OSGi any-element list rule.
    attr = node.attr
    lowered = attr.lower()
    match_one = node._match_one

    def leaf(props):
        actual = props.get(attr, _MISSING)
        if actual is _MISSING:
            for key, value in props.items():
                if isinstance(key, str) and key.lower() == lowered:
                    actual = value
                    break
            else:
                return False
        if isinstance(actual, (list, tuple, set, frozenset)):
            return any(match_one(item) for item in actual)
        return match_one(actual)

    return leaf


class _Parser:
    """Recursive-descent RFC 1960 parser."""

    def __init__(self, text):
        self.text = text
        self.pos = 0

    def parse(self):
        node = self._parse_filter()
        self._skip_ws()
        if self.pos != len(self.text):
            raise InvalidFilterError(
                "trailing characters after filter: %r"
                % self.text[self.pos:])
        return node

    # -- plumbing -------------------------------------------------------
    def _peek(self):
        if self.pos >= len(self.text):
            raise InvalidFilterError("unexpected end of filter %r"
                                     % self.text)
        return self.text[self.pos]

    def _take(self, expected=None):
        ch = self._peek()
        if expected is not None and ch != expected:
            raise InvalidFilterError(
                "expected %r at position %d of %r"
                % (expected, self.pos, self.text))
        self.pos += 1
        return ch

    def _skip_ws(self):
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    # -- grammar --------------------------------------------------------
    def _parse_filter(self):
        self._skip_ws()
        self._take("(")
        self._skip_ws()
        ch = self._peek()
        if ch == "&":
            self._take()
            node = AndNode(self._parse_filter_list())
        elif ch == "|":
            self._take()
            node = OrNode(self._parse_filter_list())
        elif ch == "!":
            self._take()
            node = NotNode(self._parse_filter())
        else:
            node = self._parse_item()
        self._skip_ws()
        self._take(")")
        return node

    def _parse_filter_list(self):
        children = []
        while True:
            self._skip_ws()
            if self._peek() != "(":
                break
            children.append(self._parse_filter())
        if not children:
            raise InvalidFilterError(
                "empty filter list at position %d of %r"
                % (self.pos, self.text))
        return children

    def _parse_item(self):
        attr = self._parse_attr()
        ch = self._take()
        if ch in "~><":
            self._take("=")
            op = ch + "="
            value, wildcards = self._parse_value()
            if wildcards:
                raise InvalidFilterError(
                    "wildcards not allowed with %r" % op)
            return CompareNode(attr, op, value[0])
        if ch != "=":
            raise InvalidFilterError(
                "expected an operator at position %d of %r"
                % (self.pos - 1, self.text))
        value, wildcards = self._parse_value()
        if not wildcards:
            return CompareNode(attr, "=", value[0])
        if value == ["", ""]:
            return PresentNode(attr)
        return SubstringNode(attr, value)

    def _parse_attr(self):
        start = self.pos
        while self._peek() not in "=~<>()":
            self.pos += 1
        attr = self.text[start:self.pos].strip()
        if not attr:
            raise InvalidFilterError(
                "empty attribute at position %d of %r" % (start, self.text))
        return attr

    def _parse_value(self):
        """Return (chunks, had_wildcards): chunks are literals between
        ``*`` wildcards; a plain value is a single chunk."""
        chunks = [""]
        wildcards = False
        while True:
            ch = self._peek()
            if ch == ")":
                break
            self._take()
            if ch == "\\":
                chunks[-1] += self._take()
            elif ch == "*":
                wildcards = True
                chunks.append("")
            elif ch == "(":
                raise InvalidFilterError(
                    "unescaped '(' in value of %r" % self.text)
            else:
                chunks[-1] += ch
        return chunks, wildcards


class LDAPFilter:
    """A compiled LDAP filter.

    ``LDAPFilter("(&(objectclass=camera)(cpuusage<=0.2))").matches(props)``
    """

    __slots__ = ("text", "root", "matches")

    def __init__(self, text):
        if isinstance(text, LDAPFilter):
            self.text = text.text
            self.root = text.root
            self.matches = text.matches
            return
        self.text = text
        self.root = _Parser(text).parse()
        #: Evaluate the filter against a properties mapping.  Bound to
        #: the compiled closure tree (module performance notes), so a
        #: call costs no method dispatch through the node objects.
        self.matches = _compile(self.root)

    def __eq__(self, other):
        if not isinstance(other, LDAPFilter):
            return NotImplemented
        return str(self.root) == str(other.root)

    def __hash__(self):
        return hash(str(self.root))

    def __str__(self):
        return str(self.root)

    def __repr__(self):
        return "LDAPFilter(%r)" % self.text


def parse_filter(text):
    """Compile ``text`` into an :class:`LDAPFilter` (idempotent)."""
    return LDAPFilter(text)


class FilterCache:
    """Bounded memo of compiled filters keyed by filter text.

    Service lookups tend to reuse a small set of filter strings
    (management-service queries, DS target filters), so the registry
    compiles each text once instead of re-running the parser per call.
    Eviction is FIFO; with the default bound the cache holds every
    filter a realistic platform uses.  ``on_hit``/``on_miss`` take
    no-argument callables (telemetry counter ``inc`` methods slot in
    directly); :attr:`hits`/:attr:`misses` are always tracked for
    direct inspection.
    """

    __slots__ = ("max_size", "hits", "misses", "_cache",
                 "_on_hit", "_on_miss")

    def __init__(self, max_size=256, on_hit=None, on_miss=None):
        if max_size <= 0:
            raise ValueError("max_size must be positive")
        self.max_size = max_size
        self.hits = 0
        self.misses = 0
        self._cache = {}
        self._on_hit = on_hit
        self._on_miss = on_miss

    def compile(self, text):
        """The compiled :class:`LDAPFilter` for ``text``."""
        if isinstance(text, LDAPFilter):
            return text
        compiled = self._cache.get(text)
        if compiled is not None:
            self.hits += 1
            if self._on_hit is not None:
                self._on_hit()
            return compiled
        self.misses += 1
        if self._on_miss is not None:
            self._on_miss()
        compiled = LDAPFilter(text)
        if len(self._cache) >= self.max_size:
            self._cache.pop(next(iter(self._cache)))
        self._cache[text] = compiled
        return compiled

    def __len__(self):
        return len(self._cache)

    def __repr__(self):
        return "FilterCache(%d/%d, %d hits, %d misses)" % (
            len(self._cache), self.max_size, self.hits, self.misses)
