"""OSGi versions and version ranges (OSGi Core spec section 3.2).

A version is ``major.minor.micro.qualifier``; a range is either a single
version (meaning ``[v, infinity)``) or an interval like ``[1.0, 2.0)``
with inclusive/exclusive brackets.  These drive Import-Package /
Export-Package matching in :mod:`repro.osgi.wiring`.
"""

import functools
import re

from repro.osgi.errors import VersionError

_QUALIFIER_RE = re.compile(r"^[A-Za-z0-9_-]*$")


@functools.total_ordering
class Version:
    """An OSGi version: three numeric parts plus a string qualifier."""

    __slots__ = ("major", "minor", "micro", "qualifier")

    def __init__(self, major=0, minor=0, micro=0, qualifier=""):
        for part in (major, minor, micro):
            if not isinstance(part, int) or part < 0:
                raise VersionError(
                    "version parts must be non-negative ints, got %r"
                    % (part,))
        if not _QUALIFIER_RE.match(qualifier):
            raise VersionError("invalid qualifier: %r" % (qualifier,))
        self.major = major
        self.minor = minor
        self.micro = micro
        self.qualifier = qualifier

    @classmethod
    def parse(cls, text):
        """Parse ``"1.2.3.beta"`` (missing parts default to zero)."""
        if isinstance(text, Version):
            return text
        if text is None or text == "":
            return cls()
        parts = str(text).strip().split(".")
        if len(parts) > 4:
            raise VersionError("too many version segments in %r" % (text,))
        numbers = []
        for part in parts[:3]:
            if not part.isdigit():
                raise VersionError(
                    "numeric version segment expected in %r" % (text,))
            numbers.append(int(part))
        while len(numbers) < 3:
            numbers.append(0)
        qualifier = parts[3] if len(parts) == 4 else ""
        return cls(numbers[0], numbers[1], numbers[2], qualifier)

    def _key(self):
        return (self.major, self.minor, self.micro, self.qualifier)

    def __eq__(self, other):
        if not isinstance(other, Version):
            return NotImplemented
        return self._key() == other._key()

    def __lt__(self, other):
        if not isinstance(other, Version):
            return NotImplemented
        return self._key() < other._key()

    def __hash__(self):
        return hash(self._key())

    def __str__(self):
        base = "%d.%d.%d" % (self.major, self.minor, self.micro)
        if self.qualifier:
            return base + "." + self.qualifier
        return base

    def __repr__(self):
        return "Version(%s)" % self


class VersionRange:
    """An OSGi version range with inclusive/exclusive endpoints."""

    __slots__ = ("floor", "ceiling", "floor_inclusive", "ceiling_inclusive")

    def __init__(self, floor, ceiling=None, floor_inclusive=True,
                 ceiling_inclusive=False):
        self.floor = floor
        self.ceiling = ceiling
        self.floor_inclusive = floor_inclusive
        self.ceiling_inclusive = ceiling_inclusive

    @classmethod
    def parse(cls, text):
        """Parse ``"1.0"`` (at-least) or ``"[1.0,2.0)"`` (interval)."""
        if isinstance(text, VersionRange):
            return text
        text = str(text).strip()
        if not text:
            return cls(Version())
        if text[0] in "[(":
            if text[-1] not in "])":
                raise VersionError("unterminated version range: %r"
                                   % (text,))
            body = text[1:-1]
            if "," not in body:
                raise VersionError("interval range needs two versions: %r"
                                   % (text,))
            low_text, high_text = body.split(",", 1)
            return cls(
                Version.parse(low_text),
                Version.parse(high_text),
                floor_inclusive=text[0] == "[",
                ceiling_inclusive=text[-1] == "]",
            )
        return cls(Version.parse(text))

    def includes(self, version):
        """Whether ``version`` falls inside the range."""
        version = Version.parse(version)
        if self.floor_inclusive:
            if version < self.floor:
                return False
        elif version <= self.floor:
            return False
        if self.ceiling is None:
            return True
        if self.ceiling_inclusive:
            return version <= self.ceiling
        return version < self.ceiling

    def __eq__(self, other):
        if not isinstance(other, VersionRange):
            return NotImplemented
        return (self.floor, self.ceiling, self.floor_inclusive,
                self.ceiling_inclusive) == (
                    other.floor, other.ceiling, other.floor_inclusive,
                    other.ceiling_inclusive)

    def __hash__(self):
        return hash((self.floor, self.ceiling, self.floor_inclusive,
                     self.ceiling_inclusive))

    def __str__(self):
        if self.ceiling is None:
            return str(self.floor)
        return "%s%s,%s%s" % ("[" if self.floor_inclusive else "(",
                              self.floor, self.ceiling,
                              "]" if self.ceiling_inclusive else ")")

    def __repr__(self):
        return "VersionRange(%s)" % self
