"""Service registrations and references (OSGi Core spec chapter 5).

A *registration* is the provider-side handle (modify properties,
unregister); a *reference* is the consumer-side handle (inspect
properties, obtain the service object).  Standard service properties:

* ``objectClass`` -- list of interface names the service is registered
  under,
* ``service.id`` -- unique, monotonically increasing integer,
* ``service.ranking`` -- integer, higher wins in "best reference"
  selection (ties broken by lowest ``service.id``).
"""

from repro.osgi.errors import ServiceUnregisteredError

OBJECTCLASS = "objectClass"
SERVICE_ID = "service.id"
SERVICE_RANKING = "service.ranking"


class ServiceReference:
    """Consumer-side handle to a registered service."""

    def __init__(self, registration):
        self._registration = registration

    @property
    def registration(self):
        """The provider-side registration (internal use)."""
        return self._registration

    @property
    def bundle(self):
        """The bundle that registered the service (None if unregistered)."""
        return self._registration.bundle

    @property
    def object_classes(self):
        """Interface names the service is registered under."""
        return list(self._registration.properties[OBJECTCLASS])

    @property
    def service_id(self):
        """The unique service id."""
        return self._registration.properties[SERVICE_ID]

    @property
    def ranking(self):
        """The service ranking (default 0)."""
        value = self._registration.properties.get(SERVICE_RANKING, 0)
        return value if isinstance(value, int) else 0

    def get_property(self, key):
        """Read one service property (None when absent)."""
        return self._registration.properties.get(key)

    def get_properties(self):
        """A copy of all service properties."""
        return dict(self._registration.properties)

    def sort_key(self):
        """Ordering key: best reference first."""
        return (-self.ranking, self.service_id)

    def __eq__(self, other):
        if not isinstance(other, ServiceReference):
            return NotImplemented
        return self._registration is other._registration

    def __hash__(self):
        return id(self._registration)

    def __repr__(self):
        classes = ",".join(self.object_classes)
        return "ServiceReference(%s, id=%d)" % (classes, self.service_id)


class ServiceRegistration:
    """Provider-side handle to a registered service."""

    def __init__(self, registry, bundle, classes, service, properties,
                 service_id):
        self._registry = registry
        self.bundle = bundle
        self.service = service
        self.properties = dict(properties or {})
        self.properties[OBJECTCLASS] = list(classes)
        self.properties[SERVICE_ID] = service_id
        self._reference = ServiceReference(self)
        self._unregistered = False

    @property
    def reference(self):
        """The consumer-side reference for this registration."""
        if self._unregistered:
            raise ServiceUnregisteredError(
                "service %d already unregistered"
                % self.properties[SERVICE_ID])
        return self._reference

    @property
    def unregistered(self):
        """Whether :meth:`unregister` has run."""
        return self._unregistered

    def set_properties(self, properties):
        """Replace the user properties (objectClass/service.id kept);
        emits a MODIFIED service event."""
        if self._unregistered:
            raise ServiceUnregisteredError("cannot modify unregistered "
                                           "service")
        preserved = {
            OBJECTCLASS: self.properties[OBJECTCLASS],
            SERVICE_ID: self.properties[SERVICE_ID],
        }
        self.properties = dict(properties or {})
        self.properties.update(preserved)
        self._registry._service_modified(self)

    def unregister(self):
        """Withdraw the service; emits UNREGISTERING after removal.

        The flag flips *before* the event goes out so re-entrant
        listeners (a component deactivating in response) see the
        registration as already gone and don't unregister it twice.
        """
        if self._unregistered:
            raise ServiceUnregisteredError("service already unregistered")
        self._unregistered = True
        self._registry._unregister(self)

    def __repr__(self):
        return "ServiceRegistration(%s, id=%s)" % (
            ",".join(self.properties[OBJECTCLASS]),
            self.properties[SERVICE_ID])
