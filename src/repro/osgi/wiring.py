"""Package wiring: matching Import-Package against Export-Package.

This is the module-layer resolution the paper contrasts DRCom with
("composition of modules is still largely based on import and export of
java packages", section 2.1).  The resolver implements the core OSGi
selection rules: package name equality, version-range inclusion,
arbitrary attribute matching, preference for already-resolved exporters,
then highest export version, then lowest bundle id.
"""

from repro.osgi.errors import ResolutionError


class ExportedPackage:
    """One package a bundle offers."""

    __slots__ = ("package", "version", "attributes", "bundle")

    def __init__(self, package, version, attributes, bundle):
        self.package = package
        self.version = version
        self.attributes = attributes
        self.bundle = bundle

    def satisfies(self, import_clause):
        """Whether this export can satisfy an :class:`ImportedPackage`."""
        if self.package != import_clause.package:
            return False
        if not import_clause.version_range.includes(self.version):
            return False
        for key, expected in import_clause.attributes.items():
            if key == "version":
                continue
            if str(self.attributes.get(key)) != str(expected):
                return False
        return True

    def __repr__(self):
        return "ExportedPackage(%s %s by %s)" % (
            self.package, self.version, self.bundle.symbolic_name)


class ImportedPackage:
    """One package a bundle requires."""

    __slots__ = ("package", "version_range", "attributes", "optional",
                 "bundle")

    def __init__(self, package, version_range, attributes, optional,
                 bundle):
        self.package = package
        self.version_range = version_range
        self.attributes = attributes
        self.optional = optional
        self.bundle = bundle

    def __repr__(self):
        return "ImportedPackage(%s %s for %s)" % (
            self.package, self.version_range, self.bundle.symbolic_name)


class Wire:
    """A resolved import: importer -> exporter for one package."""

    __slots__ = ("importer", "exporter", "imported", "exported")

    def __init__(self, imported, exported):
        self.imported = imported
        self.exported = exported
        self.importer = imported.bundle
        self.exporter = exported.bundle

    def __repr__(self):
        return "Wire(%s: %s -> %s)" % (
            self.imported.package, self.importer.symbolic_name,
            self.exporter.symbolic_name)


class WiringResolver:
    """Resolves bundles' imports against the framework's export space."""

    def __init__(self):
        #: package name -> list of ExportedPackage
        self._exports = {}
        #: bundle -> list of Wire
        self._wires = {}

    # ------------------------------------------------------------------
    # export space maintenance
    # ------------------------------------------------------------------
    def offer_exports(self, bundle):
        """Publish a bundle's exports (when it becomes resolvable)."""
        for package, version, attributes in bundle.manifest \
                .exported_packages():
            export = ExportedPackage(package, version, attributes, bundle)
            self._exports.setdefault(package, []).append(export)

    def withdraw_exports(self, bundle):
        """Remove a bundle's exports (uninstall/refresh)."""
        for package in list(self._exports):
            remaining = [e for e in self._exports[package]
                         if e.bundle is not bundle]
            if remaining:
                self._exports[package] = remaining
            else:
                del self._exports[package]

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve(self, bundle):
        """Wire all of a bundle's imports; raises ResolutionError if a
        mandatory import has no matching export.

        Returns the list of :class:`Wire` created.  Optional imports
        that cannot be satisfied are skipped.
        """
        imports = [
            ImportedPackage(pkg, rng, attrs, optional, bundle)
            for pkg, rng, attrs, optional
            in bundle.manifest.imported_packages()
        ]
        wires = []
        unresolved = []
        for imported in imports:
            export = self._select_export(imported)
            if export is None:
                if imported.optional:
                    continue
                unresolved.append(imported)
                continue
            wires.append(Wire(imported, export))
        if unresolved:
            raise ResolutionError(
                "bundle %s has unsatisfied imports: %s" % (
                    bundle.symbolic_name,
                    ", ".join("%s %s" % (u.package, u.version_range)
                              for u in unresolved)),
                unresolved=unresolved)
        self._wires[bundle] = wires
        return wires

    def _select_export(self, imported):
        candidates = [
            export for export in self._exports.get(imported.package, ())
            if export.satisfies(imported)
        ]
        if not candidates:
            return None
        candidates.sort(key=self._preference_key)
        return candidates[0]

    def _preference_key(self, export):
        resolved = 0 if export.bundle.is_resolved else 1
        # Negative tuple trick is unreadable for versions; sort by
        # (resolved-first, version desc, bundle id asc) explicitly.
        return (resolved,
                (-export.version.major, -export.version.minor,
                 -export.version.micro),
                export.bundle.bundle_id)

    # ------------------------------------------------------------------
    # introspection / teardown
    # ------------------------------------------------------------------
    def wires_of(self, bundle):
        """Wires where ``bundle`` is the importer."""
        return list(self._wires.get(bundle, ()))

    def dependents_of(self, bundle):
        """Bundles wired *to* ``bundle`` (they import from it)."""
        dependents = []
        for importer, wires in self._wires.items():
            if any(wire.exporter is bundle for wire in wires):
                dependents.append(importer)
        return dependents

    def unresolve(self, bundle):
        """Drop a bundle's own wires (keeps its exports published)."""
        self._wires.pop(bundle, None)

    def exported_of(self, package):
        """All current exports of ``package`` (inspection)."""
        return list(self._exports.get(package, ()))
