"""A Declarative Services (SCR) subset (OSGi compendium chapter 112).

The paper positions DRCom as the real-time analogue of OSGi 4.0's
Declarative Services ("from OSGi 4.0, the declarative service was
introduced to support the dynamic composition of service oriented
components, [but] it still tightly coupled with Java language ...
the policy for service matching is predefined and static", section 2.1).
This subset exists (a) as substrate fidelity and (b) so the benchmarks
can contrast DS's fixed service-matching policy with DRCR's pluggable
resolving services.

Supported: one provided service interface, N required references with
cardinality ``1..1`` / ``0..1`` / ``0..n`` / ``1..n``, target LDAP
filters, dynamic policy (rebind on departure), activate/deactivate
callbacks.
"""

from repro.osgi.events import BundleEventType, ServiceEventType
from repro.osgi.ldap import parse_filter
from repro.osgi.services import OBJECTCLASS


class ReferenceSpec:
    """A required service reference of a DS component."""

    def __init__(self, name, interface, cardinality="1..1", target=None):
        if cardinality not in ("1..1", "0..1", "0..n", "1..n"):
            raise ValueError("bad cardinality: %r" % (cardinality,))
        self.name = name
        self.interface = interface
        self.cardinality = cardinality
        self.target = parse_filter(target) if target else None

    @property
    def mandatory(self):
        """Whether at least one bound service is required."""
        return self.cardinality.startswith("1")

    @property
    def multiple(self):
        """Whether more than one service may bind."""
        return self.cardinality.endswith("n")

    def matches(self, reference):
        """Whether a service reference satisfies this spec."""
        props = reference.get_properties()
        if self.interface not in props[OBJECTCLASS]:
            return False
        if self.target is not None and not self.target.matches(props):
            return False
        return True


class ComponentDescription:
    """Static description of a DS component."""

    def __init__(self, name, factory, provides=None, references=(),
                 properties=None, immediate=True):
        self.name = name
        self.factory = factory
        self.provides = provides
        self.references = list(references)
        self.properties = dict(properties or {})
        self.immediate = immediate


class DSComponent:
    """A managed DS component instance."""

    def __init__(self, runtime, description, bundle):
        self.runtime = runtime
        self.description = description
        self.bundle = bundle
        self.instance = None
        self.registration = None
        self.active = False
        #: reference spec name -> list of bound ServiceReference
        self.bound = {spec.name: [] for spec in description.references}

    # ------------------------------------------------------------------
    def satisfied(self):
        """Whether every mandatory reference has a binding candidate."""
        for spec in self.description.references:
            if spec.mandatory and not self._candidates(spec):
                return False
        return True

    def _candidates(self, spec):
        return [
            ref for ref in self.runtime.framework.registry.get_references(
                spec.interface)
            if spec.matches(ref)
        ]

    def _bind_all(self):
        for spec in self.description.references:
            candidates = self._candidates(spec)
            chosen = candidates if spec.multiple else candidates[:1]
            self.bound[spec.name] = chosen

    def services(self, reference_name):
        """The bound service objects for a reference, best-first."""
        registry = self.runtime.framework.registry
        return [registry.get_service(ref)
                for ref in self.bound[reference_name]]

    def service(self, reference_name):
        """The single/best bound service object (None when unbound)."""
        bound = self.services(reference_name)
        return bound[0] if bound else None

    # ------------------------------------------------------------------
    def activate(self):
        """Instantiate, bind, call activate, register provided service."""
        if self.active:
            return
        self._bind_all()
        self.instance = self.description.factory(self)
        if hasattr(self.instance, "activate"):
            self.instance.activate(self)
        if self.description.provides:
            self.registration = self.runtime.framework.registry.register(
                self.description.provides, self.instance,
                dict(self.description.properties,
                     **{"component.name": self.description.name}),
                bundle=self.bundle)
        self.active = True

    def deactivate(self):
        """Unregister, call deactivate, drop the instance."""
        if not self.active:
            return
        self.active = False
        if self.registration is not None \
                and not self.registration.unregistered:
            self.registration.unregister()
        self.registration = None
        if self.instance is not None \
                and hasattr(self.instance, "deactivate"):
            self.instance.deactivate(self)
        self.instance = None
        for name in self.bound:
            self.bound[name] = []


class DSRuntime:
    """The service-component runtime: watches the registry and drives
    component activation/deactivation as references come and go."""

    def __init__(self, framework):
        self.framework = framework
        self._components = []
        self._reconciling = False
        self._dirty = False
        framework.service_listeners.add(self._on_service_event)
        framework.bundle_listeners.add(self._on_bundle_event)

    def add_component(self, description, bundle=None):
        """Register a component description and reconcile at once."""
        component = DSComponent(self, description, bundle)
        self._components.append(component)
        self._reconcile()
        return component

    def remove_component(self, component):
        """Deactivate and forget a component.

        Delisted before deactivation so the service events raised by
        the teardown cannot re-activate it.
        """
        self._components.remove(component)
        component.deactivate()
        self._reconcile()

    def components(self):
        """All managed components."""
        return list(self._components)

    def _on_service_event(self, event):
        if event.event_type in (ServiceEventType.REGISTERED,
                                ServiceEventType.UNREGISTERING,
                                ServiceEventType.MODIFIED):
            self._reconcile()

    def _on_bundle_event(self, event):
        if event.event_type is BundleEventType.STOPPED:
            for component in list(self._components):
                if component.bundle is event.bundle:
                    self.remove_component(component)

    def _reconcile(self):
        """Fixed-point pass: deactivate unsatisfiable components, then
        activate newly satisfied ones (their registrations may satisfy
        further components, hence the loop).

        Service events raised *by* activation/deactivation re-enter this
        method; the guard flag folds them into the running pass.
        """
        if self._reconciling:
            self._dirty = True
            return
        self._reconciling = True
        try:
            changed = True
            while changed or self._dirty:
                changed = False
                self._dirty = False
                for component in list(self._components):
                    if component.active and not component.satisfied():
                        component.deactivate()
                        changed = True
                for component in list(self._components):
                    if (not component.active and component.satisfied()
                            and component.description.immediate):
                        component.activate()
                        changed = True
                # Dynamic policy: refresh bindings of components that
                # stay active (new providers bind, departed ones drop).
                for component in self._components:
                    if component.active:
                        component._bind_all()
        finally:
            self._reconciling = False
