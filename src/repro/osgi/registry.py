"""The OSGi service registry.

This is the discovery backbone the paper's framework rides on: DRCR
registers each component's real-time management interface here together
with the component's properties, "so it can be discovered dynamically
and allow other OSGi modules to participate in the dynamic
reconfiguration activities" (section 2.4), and customized resolving
services are plugged in through it (section 1).

Queries combine an interface name with an optional RFC 1960 LDAP filter
(:mod:`repro.osgi.ldap`).
"""

import itertools

from repro.osgi.events import ServiceEvent, ServiceEventType
from repro.osgi.ldap import parse_filter
from repro.osgi.services import OBJECTCLASS, ServiceRegistration


class ServiceRegistry:
    """Registry of services with LDAP-filter queries and events."""

    def __init__(self, listeners=None):
        self._registrations = []
        self._ids = itertools.count(1)
        #: :class:`repro.osgi.events.ListenerList` for ServiceEvents;
        #: injected by the framework (kept optional for standalone use).
        self.listeners = listeners

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, classes, service, properties=None, bundle=None):
        """Register ``service`` under one or more interface names.

        ``classes`` may be a string or a list of strings.  Returns the
        :class:`ServiceRegistration`.
        """
        if isinstance(classes, str):
            classes = [classes]
        if not classes:
            raise ValueError("at least one interface name is required")
        registration = ServiceRegistration(
            self, bundle, classes, service, properties, next(self._ids))
        self._registrations.append(registration)
        self._emit(ServiceEventType.REGISTERED, registration)
        return registration

    def _unregister(self, registration):
        # Remove before emitting: listeners reacting to UNREGISTERING
        # (e.g. the DS runtime re-checking satisfaction, or DRCR
        # re-resolving) must observe a registry without the departing
        # service, otherwise departure handling never converges.
        self._registrations.remove(registration)
        self._emit(ServiceEventType.UNREGISTERING, registration)

    def _service_modified(self, registration):
        self._emit(ServiceEventType.MODIFIED, registration)

    def _emit(self, event_type, registration):
        if self.listeners is not None:
            self.listeners.deliver(
                ServiceEvent(event_type, registration._reference))

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def get_references(self, clazz=None, filter_text=None):
        """Find references by interface and/or LDAP filter.

        Results are sorted best-first (ranking desc, service.id asc).
        """
        compiled = parse_filter(filter_text) if filter_text else None
        matches = []
        for registration in self._registrations:
            props = registration.properties
            if clazz is not None and clazz not in props[OBJECTCLASS]:
                continue
            if compiled is not None and not compiled.matches(props):
                continue
            matches.append(registration._reference)
        matches.sort(key=lambda ref: ref.sort_key())
        return matches

    def get_reference(self, clazz=None, filter_text=None):
        """The best matching reference, or ``None``."""
        refs = self.get_references(clazz, filter_text)
        return refs[0] if refs else None

    def get_service(self, reference):
        """Obtain the service object behind a reference."""
        registration = reference.registration
        if registration.unregistered:
            return None
        return registration.service

    def unregister_all_for_bundle(self, bundle):
        """Withdraw every service a bundle registered (bundle stop)."""
        for registration in [r for r in self._registrations
                             if r.bundle is bundle]:
            if not registration.unregistered:  # cascades may beat us
                registration.unregister()

    def __len__(self):
        return len(self._registrations)

    def snapshot(self):
        """A list of (interfaces, properties) for debugging/inspection."""
        return [
            (list(r.properties[OBJECTCLASS]), dict(r.properties))
            for r in self._registrations
        ]
