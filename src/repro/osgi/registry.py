"""The OSGi service registry.

This is the discovery backbone the paper's framework rides on: DRCR
registers each component's real-time management interface here together
with the component's properties, "so it can be discovered dynamically
and allow other OSGi modules to participate in the dynamic
reconfiguration activities" (section 2.4), and customized resolving
services are plugged in through it (section 1).

Queries combine an interface name with an optional RFC 1960 LDAP filter
(:mod:`repro.osgi.ldap`).  Lookups are the hot side of the registry --
every management query and DS target check lands here -- so queries by
interface go through a per-interface index instead of scanning all
registrations, and filters compile through a :class:`FilterCache`
keyed by filter text.  The per-interface index stays valid across
``set_properties`` because ``objectClass`` is reserved and preserved
(:mod:`repro.osgi.services`).
"""

import itertools

from repro.osgi.events import ServiceEvent, ServiceEventType
from repro.osgi.ldap import FilterCache
from repro.osgi.services import OBJECTCLASS, ServiceRegistration


class _NullCounter:
    """Stands in for telemetry counters on standalone registries."""

    __slots__ = ()

    def inc(self, amount=1):
        pass


_NULL_COUNTER = _NullCounter()


class ServiceRegistry:
    """Registry of services with LDAP-filter queries and events.

    ``metrics`` is an optional telemetry
    :class:`~repro.telemetry.metrics.MetricsRegistry` (duck-typed --
    anything with ``counter(name)``); when omitted the instruments are
    no-ops, keeping standalone registries dependency-free.
    """

    def __init__(self, listeners=None, metrics=None):
        self._registrations = []
        #: interface name -> [registrations], registration order.
        self._by_class = {}
        self._ids = itertools.count(1)
        #: :class:`repro.osgi.events.ListenerList` for ServiceEvents;
        #: injected by the framework (kept optional for standalone use).
        self.listeners = listeners
        if metrics is not None:
            self._m_lookups = metrics.counter("service_lookups_total")
            self._m_candidates = metrics.counter(
                "service_lookup_candidates_total")
            cache_hits = metrics.counter("filter_cache_hits_total")
            cache_misses = metrics.counter("filter_cache_misses_total")
        else:
            self._m_lookups = _NULL_COUNTER
            self._m_candidates = _NULL_COUNTER
            cache_hits = cache_misses = _NULL_COUNTER
        #: Compiled-filter memo (public: tests and inspection read its
        #: hit/miss tallies directly).
        self.filter_cache = FilterCache(on_hit=cache_hits.inc,
                                        on_miss=cache_misses.inc)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, classes, service, properties=None, bundle=None):
        """Register ``service`` under one or more interface names.

        ``classes`` may be a string or a list of strings.  Returns the
        :class:`ServiceRegistration`.
        """
        if isinstance(classes, str):
            classes = [classes]
        if not classes:
            raise ValueError("at least one interface name is required")
        registration = ServiceRegistration(
            self, bundle, classes, service, properties, next(self._ids))
        self._registrations.append(registration)
        for clazz in registration.properties[OBJECTCLASS]:
            self._by_class.setdefault(clazz, []).append(registration)
        self._emit(ServiceEventType.REGISTERED, registration)
        return registration

    def _unregister(self, registration):
        # Remove before emitting: listeners reacting to UNREGISTERING
        # (e.g. the DS runtime re-checking satisfaction, or DRCR
        # re-resolving) must observe a registry without the departing
        # service, otherwise departure handling never converges.
        self._registrations.remove(registration)
        for clazz in registration.properties[OBJECTCLASS]:
            entries = self._by_class.get(clazz)
            if entries is not None:
                entries.remove(registration)
                if not entries:
                    del self._by_class[clazz]
        self._emit(ServiceEventType.UNREGISTERING, registration)

    def _service_modified(self, registration):
        self._emit(ServiceEventType.MODIFIED, registration)

    def _emit(self, event_type, registration):
        if self.listeners is not None:
            self.listeners.deliver(
                ServiceEvent(event_type, registration._reference))

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def _matches(self, clazz, filter_text):
        """Matching references (index-restricted, unsorted)."""
        self._m_lookups.inc()
        compiled = (self.filter_cache.compile(filter_text)
                    if filter_text else None)
        if clazz is None:
            candidates = self._registrations
        else:
            # The index already guarantees the objectClass match.
            candidates = self._by_class.get(clazz, ())
        self._m_candidates.inc(len(candidates))
        for registration in candidates:
            if compiled is not None \
                    and not compiled.matches(registration.properties):
                continue
            yield registration._reference

    def get_references(self, clazz=None, filter_text=None):
        """Find references by interface and/or LDAP filter.

        Results are sorted best-first (ranking desc, service.id asc).
        """
        return sorted(self._matches(clazz, filter_text),
                      key=lambda ref: ref.sort_key())

    def get_reference(self, clazz=None, filter_text=None):
        """The best matching reference, or ``None``.

        One O(matches) ``min`` by sort key -- callers wanting a single
        best service do not pay for sorting the full match set.
        """
        return min(self._matches(clazz, filter_text),
                   key=lambda ref: ref.sort_key(), default=None)

    def get_service(self, reference):
        """Obtain the service object behind a reference."""
        registration = reference.registration
        if registration.unregistered:
            return None
        return registration.service

    def unregister_all_for_bundle(self, bundle):
        """Withdraw every service a bundle registered (bundle stop)."""
        for registration in [r for r in self._registrations
                             if r.bundle is bundle]:
            if not registration.unregistered:  # cascades may beat us
                registration.unregister()

    def __len__(self):
        return len(self._registrations)

    def snapshot(self):
        """A list of (interfaces, properties) for debugging/inspection."""
        return [
            (list(r.properties[OBJECTCLASS]), dict(r.properties))
            for r in self._registrations
        ]
