"""Framework, bundle and service events (OSGi Core spec chapter 4/5).

Events are delivered synchronously, in listener registration order --
the behaviour DRCR depends on ("During execution, the DRCR receives
notifications from the OSGi framework for component state changes",
section 2.2).  A listener that raises does not prevent delivery to later
listeners; the error is recorded as a FrameworkEvent.ERROR.
"""

import enum


class BundleEventType(enum.Enum):
    """Bundle lifecycle event kinds."""

    INSTALLED = "installed"
    RESOLVED = "resolved"
    STARTING = "starting"
    STARTED = "started"
    STOPPING = "stopping"
    STOPPED = "stopped"
    UPDATED = "updated"
    UNRESOLVED = "unresolved"
    UNINSTALLED = "uninstalled"


class ServiceEventType(enum.Enum):
    """Service registry event kinds."""

    REGISTERED = "registered"
    MODIFIED = "modified"
    UNREGISTERING = "unregistering"


class FrameworkEventType(enum.Enum):
    """Framework-level event kinds."""

    STARTED = "started"
    ERROR = "error"
    STOPPED = "stopped"


class BundleEvent:
    """A change in a bundle's lifecycle state."""

    __slots__ = ("event_type", "bundle")

    def __init__(self, event_type, bundle):
        self.event_type = event_type
        self.bundle = bundle

    def __repr__(self):
        return "BundleEvent(%s, %s)" % (self.event_type.name,
                                        self.bundle.symbolic_name)


class ServiceEvent:
    """A change in the service registry."""

    __slots__ = ("event_type", "reference")

    def __init__(self, event_type, reference):
        self.event_type = event_type
        self.reference = reference

    def __repr__(self):
        return "ServiceEvent(%s, %s)" % (self.event_type.name,
                                         self.reference)


class FrameworkEvent:
    """A framework-level occurrence (start, stop, listener error)."""

    __slots__ = ("event_type", "source", "error")

    def __init__(self, event_type, source=None, error=None):
        self.event_type = event_type
        self.source = source
        self.error = error

    def __repr__(self):
        return "FrameworkEvent(%s, %r)" % (self.event_type.name, self.error)


class ListenerList:
    """Ordered listener collection with error isolation."""

    def __init__(self, on_error=None):
        self._listeners = []
        self._on_error = on_error

    def add(self, listener):
        """Register a listener (idempotent)."""
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove(self, listener):
        """Unregister a listener (ignores unknown listeners)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def __len__(self):
        return len(self._listeners)

    def __iter__(self):
        return iter(list(self._listeners))

    def deliver(self, event):
        """Call every listener with ``event``; isolate failures."""
        for listener in list(self._listeners):
            try:
                listener(event)
            except Exception as error:  # noqa: BLE001 -- spec behaviour
                if self._on_error is not None:
                    self._on_error(listener, event, error)
