"""Bounded mailboxes (RTAI ``rt_mbx`` analogue).

Mailboxes serve two roles in the reproduction, mirroring the paper:

* **inter-component data ports** with ``interface="RTAI.Mailbox"``
  (section 2.3), and
* the **asynchronous intra-component command channel** between an HRC's
  non-real-time management part and its real-time task (section 3.2) --
  the RT side only ever *polls* (non-blocking receive) so its timing is
  never coupled to the OSGi side.

Blocking semantics are implemented by the kernel: a task that blocks on
a mailbox is parked here and woken through
:meth:`repro.rtos.kernel.RTKernel._wake_task`.  The *external* entry
points (``send_external`` / ``receive_external``) are used by non-RT
code (the OSGi side); they never block, which is exactly the property
section 3.2 demands.
"""

from collections import deque

from repro.rtos import names
from repro.rtos.errors import MailboxEmptyError


class Mailbox:
    """A bounded FIFO message queue identified by a 6-character name.

    The kernel-side entry points are hot (one per Send/Receive request):
    they test ``self._messages``/waiter deques directly instead of going
    through the ``full``/``empty`` properties, and only call the waiter
    hand-off helpers when the relevant deque is non-empty, so the
    uncontended fast path stays a single frame (docs/PERFORMANCE.md).
    """

    __slots__ = ("_kernel", "name", "capacity", "_messages",
                 "_recv_waiters", "_send_waiters", "sent_count",
                 "received_count", "dropped_count")

    def __init__(self, kernel, name, capacity=16):
        if capacity <= 0:
            raise ValueError("capacity must be positive, got %r"
                             % (capacity,))
        self._kernel = kernel
        self.name = names.validate_name(name)
        self.capacity = int(capacity)
        self._messages = deque()
        #: Tasks blocked in a receive, FIFO.
        self._recv_waiters = deque()
        #: (task, message) pairs blocked in a send, FIFO.
        self._send_waiters = deque()
        self.sent_count = 0
        self.received_count = 0
        self.dropped_count = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self):
        return len(self._messages)

    @property
    def full(self):
        """Whether a non-blocking send would fail right now."""
        return len(self._messages) >= self.capacity

    @property
    def empty(self):
        """Whether a non-blocking receive would fail right now."""
        return not self._messages

    def resize(self, capacity):
        """Change the capacity at run time (fault injection, tuning).

        Zero is allowed -- every non-blocking send then drops, which is
        how the ``mailbox_drop`` injector simulates a dead consumer.
        Messages already queued beyond a shrunken capacity stay queued;
        only new sends see the new bound.  Growing the capacity admits
        blocked senders immediately.
        """
        if capacity < 0:
            raise ValueError("capacity must be >= 0, got %r"
                             % (capacity,))
        self.capacity = int(capacity)
        self._refill_from_send_waiters()

    @property
    def recv_waiter_count(self):
        """Number of tasks blocked waiting to receive."""
        return len(self._recv_waiters)

    @property
    def send_waiter_count(self):
        """Number of tasks blocked waiting to send."""
        return len(self._send_waiters)

    # ------------------------------------------------------------------
    # non-RT (external) access -- never blocks
    # ------------------------------------------------------------------
    def send_external(self, message):
        """Deliver ``message`` from outside the RT domain.

        Returns ``True`` on delivery, ``False`` when the mailbox is full
        (the caller decides whether to retry; the management bridge
        counts the drop).
        """
        if self._recv_waiters and self._try_hand_to_waiter(message):
            return True
        if len(self._messages) >= self.capacity:
            self.dropped_count += 1
            return False
        self._messages.append(message)
        self.sent_count += 1
        return True

    def receive_external(self):
        """Poll one message from outside the RT domain (or ``None``)."""
        if self._messages:
            message = self._messages.popleft()
            self.received_count += 1
            if self._send_waiters:
                self._refill_from_send_waiters()
            return message
        return None

    def receive_external_or_raise(self):
        """Like :meth:`receive_external` but raises on empty."""
        message = self.receive_external()
        if message is None and self.empty:
            raise MailboxEmptyError("mailbox %s empty" % self.name)
        return message

    # ------------------------------------------------------------------
    # kernel-side plumbing (called from RTKernel request processing)
    # ------------------------------------------------------------------
    def _try_hand_to_waiter(self, message):
        """Hand ``message`` straight to a blocked receiver, if any."""
        while self._recv_waiters:
            task = self._recv_waiters.popleft()
            if task._blocked_on is not self:
                continue  # stale entry (timeout or suspend already fired)
            self.sent_count += 1
            self.received_count += 1
            self._kernel._wake_task(task, message)
            return True
        return False

    def _refill_from_send_waiters(self):
        """After space opened up, admit a blocked sender's message."""
        while self._send_waiters and len(self._messages) < self.capacity:
            task, message = self._send_waiters.popleft()
            if task._blocked_on is not self:
                continue
            self._messages.append(message)
            self.sent_count += 1
            self._kernel._wake_task(task, True)

    def _task_send(self, task, message, blocking):
        """Kernel entry for a task's Send request.

        Returns ``(completed, result)``; when ``completed`` is False the
        task has been parked and will be woken later.
        """
        if self._recv_waiters and self._try_hand_to_waiter(message):
            return True, True
        if len(self._messages) < self.capacity:
            self._messages.append(message)
            self.sent_count += 1
            return True, True
        if not blocking:
            self.dropped_count += 1
            return True, False
        self._send_waiters.append((task, message))
        return False, None

    def _task_receive(self, task, blocking):
        """Kernel entry for a task's Receive request (same contract)."""
        if self._messages:
            message = self._messages.popleft()
            self.received_count += 1
            if self._send_waiters:
                self._refill_from_send_waiters()
            return True, message
        if not blocking:
            return True, None
        self._recv_waiters.append(task)
        return False, None

    def _forget_waiter(self, task):
        """Drop a parked task (timeout / deletion); stale-safe."""
        try:
            self._recv_waiters.remove(task)
        except ValueError:
            pass
        for entry in list(self._send_waiters):
            if entry[0] is task:
                self._send_waiters.remove(entry)

    def drain(self):
        """Remove and return all queued messages (management/reset)."""
        drained = list(self._messages)
        self._messages.clear()
        self.received_count += len(drained)
        self._refill_from_send_waiters()
        return drained

    def __repr__(self):
        return "Mailbox(%s, %d/%d msgs)" % (self.name, len(self._messages),
                                            self.capacity)
