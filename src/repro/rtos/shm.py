"""Named, typed shared-memory segments (RTAI ``rt_shm_alloc`` analogue).

DRCom ports with ``interface="RTAI.SHM"`` are backed by these segments:
the component descriptor declares the element type (``Integer`` or
``Byte``; we additionally support ``Float``) and the element count, and
port compatibility checking (:mod:`repro.core.ports`) requires both ends
to agree.  Access is instantaneous in simulated time, as real shared
memory is (no syscall on the data path, section 3.3 of the paper).
"""

from repro.rtos import names
from repro.rtos.errors import ShmTypeError

#: Supported element types and their validators/default values.
_TYPE_INFO = {
    "Integer": (lambda v: isinstance(v, int) and not isinstance(v, bool), 0),
    "Byte": (lambda v: isinstance(v, int) and 0 <= v <= 255, 0),
    "Float": (lambda v: isinstance(v, (int, float))
              and not isinstance(v, bool), 0.0),
}


def element_size_bytes(dtype):
    """Byte width of one element (for the descriptor's ``size`` rule:
    "it is the multiple size of the data type's size")."""
    if dtype == "Byte":
        return 1
    if dtype == "Integer":
        return 4
    if dtype == "Float":
        return 8
    raise ShmTypeError("unknown shared-memory type: %r" % (dtype,))


class SharedMemory:
    """A fixed-size, typed array shared between tasks.

    Created via :meth:`repro.rtos.kernel.RTKernel.shm_alloc`; the kernel
    keyes the segment by its 6-character RTAI name.

    Whole-segment :meth:`write`/:meth:`read` are the data-plane hot path
    (every DRCom SHM port transfer).  ``write`` validates in one pass
    with the validator bound to a local, and ``read`` copies with
    ``list.copy`` instead of re-materialising through the iterator
    protocol (docs/PERFORMANCE.md).
    """

    __slots__ = ("_clock", "name", "dtype", "size", "_validator", "_data",
                 "write_count", "last_write_time", "last_writer",
                 "_attached")

    def __init__(self, clock, name, dtype, size):
        if dtype not in _TYPE_INFO:
            raise ShmTypeError("unknown shared-memory type: %r" % (dtype,))
        if size <= 0:
            raise ShmTypeError("size must be positive, got %r" % (size,))
        self._clock = clock
        self.name = names.validate_name(name)
        self.dtype = dtype
        self.size = int(size)
        validator, default = _TYPE_INFO[dtype]
        self._validator = validator
        self._data = [default] * self.size
        self.write_count = 0
        self.last_write_time = None
        self.last_writer = None
        self._attached = set()

    # ------------------------------------------------------------------
    # attachment bookkeeping (rt_shm_alloc reference counting)
    # ------------------------------------------------------------------
    def attach(self, owner):
        """Record that ``owner`` (a task or component name) uses this
        segment; returns self for chaining."""
        self._attached.add(owner)
        return self

    def detach(self, owner):
        """Drop an attachment; returns True when no users remain."""
        self._attached.discard(owner)
        return not self._attached

    @property
    def attached_count(self):
        """Number of current attachments."""
        return len(self._attached)

    # ------------------------------------------------------------------
    # data access
    # ------------------------------------------------------------------
    def _check_value(self, value):
        if not self._validator(value):
            raise ShmTypeError(
                "value %r invalid for %s segment %s"
                % (value, self.dtype, self.name))

    def write(self, values, writer=None):
        """Overwrite the whole segment (len(values) must equal size)."""
        values = list(values)
        if len(values) != self.size:
            raise ShmTypeError(
                "segment %s holds %d elements, got %d"
                % (self.name, self.size, len(values)))
        validator = self._validator
        for value in values:
            if not validator(value):
                raise ShmTypeError(
                    "value %r invalid for %s segment %s"
                    % (value, self.dtype, self.name))
        self._data[:] = values
        self.write_count += 1
        self.last_write_time = self._clock()
        self.last_writer = writer

    def write_at(self, index, value, writer=None):
        """Write one element."""
        if not self._validator(value):
            raise ShmTypeError(
                "value %r invalid for %s segment %s"
                % (value, self.dtype, self.name))
        self._data[index] = value
        self.write_count += 1
        self.last_write_time = self._clock()
        self.last_writer = writer

    def read(self):
        """Return a copy of the whole segment."""
        return self._data.copy()

    def read_at(self, index):
        """Return one element."""
        return self._data[index]

    def _note_write(self, writer):
        self.write_count += 1
        self.last_write_time = self._clock()
        self.last_writer = writer

    def age_ns(self):
        """Nanoseconds since the last write (None if never written)."""
        if self.last_write_time is None:
            return None
        return self._clock() - self.last_write_time

    def __len__(self):
        return self.size

    def __repr__(self):
        return "SharedMemory(%s, %s[%d], writes=%d)" % (
            self.name, self.dtype, self.size, self.write_count)
