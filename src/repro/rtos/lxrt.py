"""LXRT-style procedural facade over the simulated kernel.

The authors' prototype "use[s] the RTAI LXRT module -- which allows the
use of the RTAI system calls from within standard user space" (section
4.1).  This module mirrors that API surface so the hybrid container (and
any user porting RTAI code) can write against familiar names::

    lxrt = LXRT(kernel)
    lxrt.rt_set_periodic_mode()
    lxrt.start_rt_timer(lxrt.nano2count(1_000_000))
    task = lxrt.rt_task_init("CALC00", body, priority=2)
    lxrt.rt_task_make_periodic(task, period_ns=1_000_000)

Counts vs nanoseconds: RTAI converts between timer *counts* and
nanoseconds with ``nano2count``/``count2nano``; the simulated timer runs
at a configurable count frequency (default: the 8254 PIT's 1,193,180 Hz,
the hardware on the paper's HP nc6400 testbed) so the conversions are
lossy in exactly the way real RTAI's are.
"""

from repro.rtos import names
from repro.rtos.kernel import TIMER_ONESHOT, TIMER_PERIODIC
from repro.rtos.task import TaskType

#: Intel 8254 PIT frequency (Hz): the classic RTAI timer base.
PIT_FREQUENCY_HZ = 1_193_180
_NS_PER_SEC = 1_000_000_000


class LXRT:
    """Procedural RTAI-LXRT API bound to one :class:`RTKernel`."""

    def __init__(self, kernel, count_frequency_hz=PIT_FREQUENCY_HZ):
        self.kernel = kernel
        self.count_frequency_hz = count_frequency_hz

    # ------------------------------------------------------------------
    # names and time
    # ------------------------------------------------------------------
    @staticmethod
    def nam2num(name):
        """Encode a 6-character name (RTAI ``nam2num``)."""
        return names.nam2num(name)

    @staticmethod
    def num2nam(value):
        """Decode an encoded name (RTAI ``num2nam``)."""
        return names.num2nam(value)

    def nano2count(self, ns):
        """Convert nanoseconds to timer counts (floor, like RTAI)."""
        return (int(ns) * self.count_frequency_hz) // _NS_PER_SEC

    def count2nano(self, counts):
        """Convert timer counts back to nanoseconds (floor)."""
        return (int(counts) * _NS_PER_SEC) // self.count_frequency_hz

    def rt_get_time_ns(self):
        """Current time in nanoseconds."""
        return self.kernel.now

    def rt_get_time(self):
        """Current time in timer counts."""
        return self.nano2count(self.kernel.now)

    # ------------------------------------------------------------------
    # timer control
    # ------------------------------------------------------------------
    def rt_set_periodic_mode(self):
        """Program the hardware timer in periodic mode."""
        self.kernel.set_timer_mode(TIMER_PERIODIC)

    def rt_set_oneshot_mode(self):
        """Program the hardware timer in oneshot mode."""
        self.kernel.set_timer_mode(TIMER_ONESHOT)

    def start_rt_timer(self, period_counts):
        """Start the timer with a period given in counts; returns the
        *actual* period in counts (RTAI returns the rounded value)."""
        period_ns = self.count2nano(period_counts)
        self.kernel.start_timer(period_ns)
        return period_counts

    def start_rt_timer_ns(self, period_ns):
        """Convenience: start the timer with a nanosecond period, going
        through the count quantization exactly as real code would."""
        counts = self.nano2count(period_ns)
        self.start_rt_timer(counts)
        return self.count2nano(counts)

    def stop_rt_timer(self):
        """Stop the hardware timer."""
        self.kernel.stop_timer()

    # ------------------------------------------------------------------
    # tasks
    # ------------------------------------------------------------------
    def rt_task_init(self, name, body, priority, cpu=0, hybrid=False):
        """Create an (initially aperiodic) task, like ``rt_task_init``."""
        return self.kernel.create_task(
            name, body, priority, cpu=cpu, task_type=TaskType.APERIODIC,
            hybrid=hybrid)

    def rt_task_make_periodic(self, task, period_ns, start_time_ns=None,
                              collect_latency=False):
        """Turn a task periodic and start it (``rt_task_make_periodic``)."""
        task.task_type = TaskType.PERIODIC
        task.period_ns = int(period_ns)
        if task.deadline_ns is None:
            task.deadline_ns = task.period_ns
        if collect_latency and task.stats.latency is None:
            from repro.sim.stats import SampleSeries
            task.stats.latency = SampleSeries()
        self.kernel.start_task(task, start_at=start_time_ns)
        return task

    def rt_task_resume(self, task):
        """Start an aperiodic task running (``rt_task_resume`` on a new
        task) or resume a suspended one."""
        if task.suspended:
            self.kernel.resume_task(task)
        else:
            self.kernel.release_task(task)

    def rt_task_suspend(self, task):
        """Suspend a task (``rt_task_suspend``)."""
        self.kernel.suspend_task(task)

    def rt_task_delete(self, task):
        """Delete a task (``rt_task_delete``)."""
        self.kernel.delete_task(task)

    # ------------------------------------------------------------------
    # IPC
    # ------------------------------------------------------------------
    def rt_shm_alloc(self, name, dtype, size, owner=None):
        """Allocate/attach a named shared-memory segment."""
        return self.kernel.shm_alloc(name, dtype, size, owner=owner)

    def rt_shm_free(self, name, owner=None):
        """Detach/free a named shared-memory segment."""
        self.kernel.shm_free(name, owner=owner)

    def rt_mbx_init(self, name, capacity=16):
        """Create a mailbox."""
        return self.kernel.mailbox(name, capacity)

    def rt_mbx_delete(self, mailbox):
        """Remove a mailbox."""
        self.kernel.free_object(mailbox.name)

    def rt_sem_init(self, name, initial=1):
        """Create a counting semaphore."""
        return self.kernel.semaphore(name, initial)

    def rt_sem_delete(self, semaphore):
        """Remove a semaphore."""
        self.kernel.free_object(semaphore.name)

    def rt_get_adr(self, name):
        """Find any kernel object by name (``rt_get_adr``)."""
        return self.kernel.lookup(name)
