"""RTAI FIFOs: the real-time -> user-space channel (``/dev/rtfN``).

The paper's prototype displays scheduling latency "by reading the
shared memory"; classic RTAI applications instead export data to Linux
user space through *FIFOs* -- lock-free ring buffers written from the
RT domain (``rtf_put``, never blocking) and read by ordinary Linux
processes.  The paper lists richer inter-task communication as future
work (section 6); this module adds the missing transport.

The asymmetry matters and is modelled: the RT-side *put* is always
instantaneous and non-blocking, but the *Linux-side reader wakeup* goes
through the ordinary Linux scheduler, so its delay depends on Linux
load -- under the stress workload, user-space consumers see data late
even though the RT producer never missed a beat.  This is the
complementary half of the Table-1 story: the dual kernel protects the
RT side, *not* the user-space side.
"""

from collections import deque

from repro.rtos import names
from repro.sim.engine import MSEC, USEC


class LinuxWakeupModel:
    """Delay between an rtf_put and the user-space reader running.

    Calibrated to Linux scheduler behaviour: ~60 us baseline wakeup on
    an idle system, growing to tens of milliseconds at full load
    (default Linux is not preemptible in the paper's 2.6.20 era).
    """

    def __init__(self, base_ns=60 * USEC, loaded_ns=25 * MSEC):
        self.base_ns = base_ns
        self.loaded_ns = loaded_ns

    def sample(self, rng, fifo_name, linux_demand):
        """Draw one wakeup delay for the given Linux demand."""
        stream = "fifo-wakeup/%s" % fifo_name
        spread = self.base_ns * 0.25
        delay = rng.gauss(stream, self.base_ns, spread)
        if linux_demand > 0:
            # Queueing behind the load: uniform share of a scheduling
            # quantum, scaled by how busy Linux is.
            delay += rng.uniform(stream, 0,
                                 self.loaded_ns * linux_demand)
        return max(0, int(delay))


class RTFifo:
    """A bounded record FIFO written by RT code, read by Linux code.

    Created via :meth:`repro.rtos.kernel.RTKernel.fifo_create`.  The
    RT side uses :meth:`put` (non-blocking, drops on overflow -- RTAI's
    ``rtf_put`` returns a short count); the Linux side either polls
    :meth:`read` or registers a *user handler* that the simulated Linux
    scheduler invokes after a load-dependent wakeup delay.
    """

    def __init__(self, kernel, name, capacity, wakeup_model=None):
        if capacity <= 0:
            raise ValueError("capacity must be positive, got %r"
                             % (capacity,))
        self._kernel = kernel
        self.name = names.validate_name(name)
        self.capacity = int(capacity)
        self._records = deque()
        self.put_count = 0
        self.dropped_count = 0
        self.read_count = 0
        self.wakeup_model = wakeup_model or LinuxWakeupModel()
        self._user_handler = None
        self._wakeup_pending = False
        #: Delivery latencies (put -> handler ran), for measurement.
        self.delivery_latencies_ns = []
        self._put_times = deque()

    def __len__(self):
        return len(self._records)

    # ------------------------------------------------------------------
    # RT side
    # ------------------------------------------------------------------
    def put(self, record):
        """``rtf_put``: append a record; never blocks.

        Returns True on success, False when the FIFO was full (the
        record is dropped and counted).
        """
        if len(self._records) >= self.capacity:
            self.dropped_count += 1
            return False
        self._records.append(record)
        self._put_times.append(self._kernel.now)
        self.put_count += 1
        self._schedule_wakeup()
        return True

    # ------------------------------------------------------------------
    # Linux side
    # ------------------------------------------------------------------
    def read(self, max_records=None):
        """Poll records (Linux side, no wakeup modelling)."""
        taken = []
        while self._records and (max_records is None
                                 or len(taken) < max_records):
            taken.append(self._records.popleft())
            self._put_times.popleft()
        self.read_count += len(taken)
        return taken

    def set_user_handler(self, handler):
        """Install the user-space consumer: ``handler(records)`` runs
        after a Linux-load-dependent wakeup delay whenever data is
        pending."""
        self._user_handler = handler
        if self._records:
            self._schedule_wakeup()

    def _schedule_wakeup(self):
        if self._user_handler is None or self._wakeup_pending:
            return
        self._wakeup_pending = True
        delay = self.wakeup_model.sample(
            self._kernel.sim.rng, self.name, self._kernel.linux_demand)
        self._kernel.sim.schedule(delay, self._run_handler,
                                  label="fifo-wakeup:%s" % self.name)

    def _run_handler(self):
        self._wakeup_pending = False
        if self._user_handler is None or not self._records:
            return
        now = self._kernel.now
        for put_time in self._put_times:
            self.delivery_latencies_ns.append(now - put_time)
        records = list(self._records)
        self._records.clear()
        self._put_times.clear()
        self.read_count += len(records)
        self._user_handler(records)
        # More data may have raced in while the handler ran; re-arm.
        if self._records:
            self._schedule_wakeup()

    def __repr__(self):
        return "RTFifo(%s, %d/%d records)" % (self.name,
                                              len(self._records),
                                              self.capacity)
