"""The digital I/O module (paper Figure 3).

"The real-time task can also connect to sensors or actuators, via the
digital I/O module.  The details of accessing the hardware are
encapsulated within the real-time task."  (section 3.1)

The module exposes numbered channels.  *Input* channels are driven by
simulated signal sources (square wave, sine, random walk, or a
user-supplied function of time); *output* channels record every write
with its timestamp so tests and examples can assert on actuation
timing.  Reads and writes are instantaneous, as memory-mapped I/O is.
"""

import math

from repro.sim.engine import MSEC


class SignalSource:
    """Base class: a value as a function of simulated time."""

    def sample(self, now_ns, rng):
        """The channel's value at ``now_ns``."""
        raise NotImplementedError


class ConstantSignal(SignalSource):
    """A fixed level."""

    def __init__(self, value):
        self.value = value

    def sample(self, now_ns, rng):
        return self.value


class SquareWave(SignalSource):
    """A square wave: ``high`` for the first half of each period."""

    def __init__(self, period_ns=10 * MSEC, low=0, high=1, phase_ns=0):
        if period_ns <= 0:
            raise ValueError("period must be positive")
        self.period_ns = period_ns
        self.low = low
        self.high = high
        self.phase_ns = phase_ns

    def sample(self, now_ns, rng):
        position = (now_ns + self.phase_ns) % self.period_ns
        return self.high if position < self.period_ns // 2 else self.low


class SineWave(SignalSource):
    """A sine wave around ``offset`` with the given amplitude."""

    def __init__(self, period_ns=10 * MSEC, amplitude=1.0, offset=0.0):
        if period_ns <= 0:
            raise ValueError("period must be positive")
        self.period_ns = period_ns
        self.amplitude = amplitude
        self.offset = offset

    def sample(self, now_ns, rng):
        angle = 2.0 * math.pi * (now_ns % self.period_ns) \
            / self.period_ns
        return self.offset + self.amplitude * math.sin(angle)


class RandomWalk(SignalSource):
    """A bounded random walk (sensor noise / drifting plant)."""

    def __init__(self, step=1.0, lo=-100.0, hi=100.0, stream="dio"):
        self.step = step
        self.lo = lo
        self.hi = hi
        self.stream = stream
        self._value = (lo + hi) / 2.0

    def sample(self, now_ns, rng):
        self._value += rng.uniform(self.stream, -self.step, self.step)
        self._value = min(self.hi, max(self.lo, self._value))
        return self._value


class DigitalIOModule:
    """Numbered input/output channels for one kernel.

    Created via :meth:`attach_dio` below or directly; RT code reaches
    it through :meth:`repro.hybrid.context.RTContext.read_sensor` /
    ``write_actuator``.
    """

    def __init__(self, kernel):
        self.kernel = kernel
        self._inputs = {}
        #: channel -> list of (time_ns, value) writes, in order.
        self.output_log = {}
        self.read_count = 0
        self.write_count = 0

    # ------------------------------------------------------------------
    # configuration (non-RT side)
    # ------------------------------------------------------------------
    def wire_input(self, channel, source):
        """Connect a :class:`SignalSource` to an input channel."""
        if not isinstance(source, SignalSource):
            raise TypeError("source must be a SignalSource, got %r"
                            % (source,))
        self._inputs[int(channel)] = source

    def input_channels(self):
        """The wired input channel numbers."""
        return sorted(self._inputs)

    # ------------------------------------------------------------------
    # RT-side access
    # ------------------------------------------------------------------
    def read(self, channel):
        """Sample an input channel at the current instant."""
        source = self._inputs.get(int(channel))
        if source is None:
            raise KeyError("no sensor wired to DIO channel %r"
                           % (channel,))
        self.read_count += 1
        return source.sample(self.kernel.now, self.kernel.sim.rng)

    def write(self, channel, value):
        """Drive an output channel (the write is timestamped)."""
        self.write_count += 1
        self.output_log.setdefault(int(channel), []).append(
            (self.kernel.now, value))

    def last_output(self, channel):
        """The most recent (time_ns, value) written to a channel."""
        log = self.output_log.get(int(channel))
        return log[-1] if log else None

    def __repr__(self):
        return "DigitalIOModule(%d inputs, %d writes)" % (
            len(self._inputs), self.write_count)


def attach_dio(kernel):
    """Create a DIO module and attach it to the kernel as ``kernel.dio``
    (idempotent)."""
    existing = getattr(kernel, "dio", None)
    if existing is None:
        existing = DigitalIOModule(kernel)
        kernel.dio = existing
    return existing
