"""Ready-queue scheduling policies.

The kernel keeps one scheduler instance per CPU.  A scheduler only
manages the *ready set*; dispatching, preemption and time accounting stay
in the kernel.  Two policies are provided:

* :class:`PriorityScheduler` -- fixed-priority, preemptive, FIFO within a
  priority level, with optional round-robin rotation among equal
  priorities (the paper: "The scheduler used in the test is round-robin
  algorithm", i.e. RTAI's SCHED_RR within a priority level).
* :class:`EDFScheduler` -- earliest-deadline-first, used by the admission
  policy ablation (experiment A2).
"""

import heapq
import itertools
from collections import deque

from repro.rtos.errors import SchedulerError
from repro.telemetry.metrics import NULL_COUNTER


class Scheduler:
    """Interface shared by all ready-queue policies."""

    #: Human-readable policy name (used in traces and benchmarks).
    policy = "abstract"

    #: Telemetry counters for ready-queue traffic.  Class-level null
    #: defaults keep standalone schedulers (unit tests, analyses)
    #: zero-cost; the kernel rebinds them via :meth:`bind_counters`.
    _enqueues = NULL_COUNTER
    _dequeues = NULL_COUNTER

    def bind_counters(self, enqueues, dequeues):
        """Attach telemetry counters for add/remove traffic (the kernel
        shares one pair across all per-CPU scheduler instances)."""
        self._enqueues = enqueues
        self._dequeues = dequeues

    def add(self, task):
        """Insert a task into the ready set."""
        raise NotImplementedError

    def remove(self, task):
        """Remove a task from the ready set (it must be present)."""
        raise NotImplementedError

    def pick(self):
        """Return the best ready task without removing it, or ``None``."""
        raise NotImplementedError

    def rotate(self, task):
        """Round-robin hook: move ``task`` behind its equal-priority
        peers.  Policies without a notion of rotation may ignore this."""

    def would_preempt(self, candidate, running):
        """Whether ``candidate`` should preempt ``running`` right now."""
        raise NotImplementedError

    def peers_ready(self, task):
        """Whether another ready task shares ``task``'s scheduling class
        (drives round-robin quantum arming)."""
        return False

    def __len__(self):
        raise NotImplementedError


class PriorityScheduler(Scheduler):
    """Fixed-priority preemptive scheduler, FIFO/RR within a level.

    ``rr_quantum_ns`` enables round-robin among equal-priority tasks;
    ``None`` means run-to-block (plain FIFO), matching RTAI's default.
    """

    policy = "priority"

    def __init__(self, rr_quantum_ns=None):
        self._levels = {}
        self._size = 0
        self.rr_quantum_ns = rr_quantum_ns

    def __len__(self):
        return self._size

    def add(self, task):
        queue = self._levels.get(task.priority)
        if queue is None:
            queue = deque()
            self._levels[task.priority] = queue
        if task in queue:
            raise SchedulerError("task %s already ready" % task.name)
        queue.append(task)
        self._size += 1
        self._enqueues.inc()

    def remove(self, task):
        queue = self._levels.get(task.priority)
        if queue is None or task not in queue:
            raise SchedulerError("task %s not in ready set" % task.name)
        queue.remove(task)
        if not queue:
            del self._levels[task.priority]
        self._size -= 1
        self._dequeues.inc()

    def pick(self):
        if not self._levels:
            return None
        best_priority = min(self._levels)
        return self._levels[best_priority][0]

    def rotate(self, task):
        queue = self._levels.get(task.priority)
        if queue and queue[0] is task:
            queue.rotate(-1)

    def would_preempt(self, candidate, running):
        # Strictly higher priority (smaller number) preempts; equal
        # priority does not preempt -- it waits for quantum expiry or
        # for the running task to block.
        return candidate.priority < running.priority

    def peers_ready(self, task):
        queue = self._levels.get(task.priority)
        return bool(queue)


class EDFScheduler(Scheduler):
    """Earliest-deadline-first scheduler.

    Deadlines are absolute (``task._release_nominal + task.deadline_ns``);
    tasks without a live deadline (aperiodic, no deadline declared) sort
    after all deadline-bearing tasks, by static priority.
    """

    policy = "edf"

    def __init__(self):
        self._heap = []
        self._entries = {}
        self._counter = itertools.count()

    def __len__(self):
        return len(self._entries)

    @staticmethod
    def _absolute_deadline(task):
        if task.deadline_ns is None:
            return None
        # A freshly released task carries its new nominal in the
        # pending queue until dispatch; its deadline must be judged by
        # that job, not by the previous one's.
        if task._pending_nominals:
            return task._pending_nominals[0] + task.deadline_ns
        if task._release_nominal is None:
            return None
        return task._release_nominal + task.deadline_ns

    def _key(self, task):
        deadline = self._absolute_deadline(task)
        if deadline is None:
            return (1, task.priority, 0)
        return (0, deadline, task.priority)

    def add(self, task):
        if task in self._entries:
            raise SchedulerError("task %s already ready" % task.name)
        entry = [self._key(task), next(self._counter), task, True]
        self._entries[task] = entry
        heapq.heappush(self._heap, entry)
        self._enqueues.inc()

    def remove(self, task):
        entry = self._entries.pop(task, None)
        if entry is None:
            raise SchedulerError("task %s not in ready set" % task.name)
        entry[3] = False  # lazy deletion
        self._dequeues.inc()

    def pick(self):
        while self._heap:
            entry = self._heap[0]
            if not entry[3]:
                heapq.heappop(self._heap)
                continue
            return entry[2]
        return None

    def would_preempt(self, candidate, running):
        return self._key(candidate) < self._key(running)


def make_scheduler(policy, rr_quantum_ns=None):
    """Factory used by kernel configuration.

    ``policy`` is ``"priority"`` or ``"edf"``; ``rr_quantum_ns`` only
    applies to the priority policy.
    """
    if policy == "priority":
        return PriorityScheduler(rr_quantum_ns=rr_quantum_ns)
    if policy == "edf":
        return EDFScheduler()
    raise ValueError("unknown scheduling policy: %r" % (policy,))
