"""Ready-queue scheduling policies.

The kernel keeps one scheduler instance per CPU.  A scheduler only
manages the *ready set*; dispatching, preemption and time accounting stay
in the kernel.  Two policies are provided:

* :class:`PriorityScheduler` -- fixed-priority, preemptive, FIFO within a
  priority level, with optional round-robin rotation among equal
  priorities (the paper: "The scheduler used in the test is round-robin
  algorithm", i.e. RTAI's SCHED_RR within a priority level).
* :class:`ArrayPriorityScheduler` -- the same policy over an array-backed
  level table (policy name ``"priority-array"``); see below.
* :class:`EDFScheduler` -- earliest-deadline-first, used by the admission
  policy ablation (experiment A2).

Performance notes (see docs/PERFORMANCE.md)
-------------------------------------------
Both fixed-priority schedulers keep an **occupancy bitmap**: bit ``p``
is set exactly while priority level ``p`` holds a ready task, so
:meth:`pick` isolates the lowest set bit (``bitmap & -bitmap``) instead
of running ``min()`` over the level keys -- the same O(1) trick RTAI's
own scheduler uses over its 2-level bitmap.  A side ``set`` of ready
tasks turns the duplicate-insert guard from an O(level) deque scan into
one hash probe.  Priorities are expected to be small non-negative
integers (RTAI convention; descriptor validation keeps them in range) --
the bitmap is an arbitrary-precision int, so larger values stay correct,
they just cost proportionally more bits.

:class:`ArrayPriorityScheduler` additionally replaces the priority→deque
dict with a flat list indexed by priority (grown on demand), trading the
hash probe per add/remove for a list index.  It is selected with
``KernelConfig(scheduler_policy="priority-array")`` and is behaviourally
identical to ``"priority"`` -- every trace is bit-equal.
"""

import heapq
import itertools
from collections import deque

from repro.rtos.errors import SchedulerError
from repro.telemetry.metrics import NULL_COUNTER


class Scheduler:
    """Interface shared by all ready-queue policies."""

    #: Human-readable policy name (used in traces and benchmarks).
    policy = "abstract"

    #: Telemetry counters for ready-queue traffic.  Class-level null
    #: defaults keep standalone schedulers (unit tests, analyses)
    #: zero-cost; the kernel rebinds them via :meth:`bind_counters`.
    _enqueues = NULL_COUNTER
    _dequeues = NULL_COUNTER

    def bind_counters(self, enqueues, dequeues):
        """Attach telemetry counters for add/remove traffic (the kernel
        shares one pair across all per-CPU scheduler instances)."""
        self._enqueues = enqueues
        self._dequeues = dequeues

    def add(self, task):
        """Insert a task into the ready set."""
        raise NotImplementedError

    def remove(self, task):
        """Remove a task from the ready set (it must be present)."""
        raise NotImplementedError

    def pick(self):
        """Return the best ready task without removing it, or ``None``."""
        raise NotImplementedError

    def rotate(self, task):
        """Round-robin hook: move ``task`` behind its equal-priority
        peers.  Policies without a notion of rotation may ignore this."""

    def would_preempt(self, candidate, running):
        """Whether ``candidate`` should preempt ``running`` right now."""
        raise NotImplementedError

    def peers_ready(self, task):
        """Whether another ready task shares ``task``'s scheduling class
        (drives round-robin quantum arming)."""
        return False

    def __len__(self):
        raise NotImplementedError


class PriorityScheduler(Scheduler):
    """Fixed-priority preemptive scheduler, FIFO/RR within a level.

    ``rr_quantum_ns`` enables round-robin among equal-priority tasks;
    ``None`` means run-to-block (plain FIFO), matching RTAI's default.
    """

    policy = "priority"

    def __init__(self, rr_quantum_ns=None):
        self._levels = {}
        self._bitmap = 0
        self._ready = set()
        self.rr_quantum_ns = rr_quantum_ns

    def __len__(self):
        return len(self._ready)

    def add(self, task):
        if task in self._ready:
            raise SchedulerError("task %s already ready" % task.name)
        priority = task.priority
        queue = self._levels.get(priority)
        if queue is None:
            queue = self._levels[priority] = deque()
            self._bitmap |= 1 << priority
        queue.append(task)
        self._ready.add(task)
        self._enqueues.inc()

    def remove(self, task):
        if task not in self._ready:
            raise SchedulerError("task %s not in ready set" % task.name)
        priority = task.priority
        queue = self._levels[priority]
        if queue[0] is task:
            # The common case: the picked/front task leaves the level.
            queue.popleft()
        else:
            queue.remove(task)
        if not queue:
            del self._levels[priority]
            self._bitmap &= ~(1 << priority)
        self._ready.discard(task)
        self._dequeues.inc()

    def pick(self):
        bitmap = self._bitmap
        if not bitmap:
            return None
        return self._levels[(bitmap & -bitmap).bit_length() - 1][0]

    def rotate(self, task):
        queue = self._levels.get(task.priority)
        if queue and queue[0] is task:
            queue.rotate(-1)

    def would_preempt(self, candidate, running):
        # Strictly higher priority (smaller number) preempts; equal
        # priority does not preempt -- it waits for quantum expiry or
        # for the running task to block.
        return candidate.priority < running.priority

    def peers_ready(self, task):
        queue = self._levels.get(task.priority)
        return bool(queue)


class ArrayPriorityScheduler(PriorityScheduler):
    """Array-backed fixed-priority scheduler (policy ``priority-array``).

    Identical semantics to :class:`PriorityScheduler`; the level table is
    a flat list indexed by priority instead of a dict, grown on demand.
    Chosen with ``KernelConfig(scheduler_policy="priority-array")``.
    """

    policy = "priority-array"

    def __init__(self, rr_quantum_ns=None):
        super().__init__(rr_quantum_ns=rr_quantum_ns)
        self._levels = []

    def _level(self, priority):
        levels = self._levels
        if priority >= len(levels):
            levels.extend([None] * (priority + 1 - len(levels)))
        return levels[priority]

    def add(self, task):
        if task in self._ready:
            raise SchedulerError("task %s already ready" % task.name)
        priority = task.priority
        queue = self._level(priority)
        if queue is None:
            queue = self._levels[priority] = deque()
        if not queue:
            self._bitmap |= 1 << priority
        queue.append(task)
        self._ready.add(task)
        self._enqueues.inc()

    def remove(self, task):
        if task not in self._ready:
            raise SchedulerError("task %s not in ready set" % task.name)
        priority = task.priority
        queue = self._levels[priority]
        if queue[0] is task:
            queue.popleft()
        else:
            queue.remove(task)
        if not queue:
            self._bitmap &= ~(1 << priority)
        self._ready.discard(task)
        self._dequeues.inc()

    def pick(self):
        bitmap = self._bitmap
        if not bitmap:
            return None
        return self._levels[(bitmap & -bitmap).bit_length() - 1][0]

    def rotate(self, task):
        priority = task.priority
        queue = self._levels[priority] if priority < len(self._levels) \
            else None
        if queue and queue[0] is task:
            queue.rotate(-1)

    def peers_ready(self, task):
        priority = task.priority
        if priority >= len(self._levels):
            return False
        return bool(self._levels[priority])


class EDFScheduler(Scheduler):
    """Earliest-deadline-first scheduler.

    Deadlines are absolute (``task._release_nominal + task.deadline_ns``);
    tasks without a live deadline (aperiodic, no deadline declared) sort
    after all deadline-bearing tasks, by static priority.
    """

    policy = "edf"

    def __init__(self):
        self._heap = []
        self._entries = {}
        self._counter = itertools.count()

    def __len__(self):
        return len(self._entries)

    @staticmethod
    def _absolute_deadline(task):
        if task.deadline_ns is None:
            return None
        # A freshly released task carries its new nominal in the
        # pending queue until dispatch; its deadline must be judged by
        # that job, not by the previous one's.
        if task._pending_nominals:
            return task._pending_nominals[0] + task.deadline_ns
        if task._release_nominal is None:
            return None
        return task._release_nominal + task.deadline_ns

    def _key(self, task):
        deadline = self._absolute_deadline(task)
        if deadline is None:
            return (1, task.priority, 0)
        return (0, deadline, task.priority)

    def add(self, task):
        if task in self._entries:
            raise SchedulerError("task %s already ready" % task.name)
        entry = [self._key(task), next(self._counter), task, True]
        self._entries[task] = entry
        heapq.heappush(self._heap, entry)
        self._enqueues.inc()

    def remove(self, task):
        entry = self._entries.pop(task, None)
        if entry is None:
            raise SchedulerError("task %s not in ready set" % task.name)
        entry[3] = False  # lazy deletion
        self._dequeues.inc()

    def pick(self):
        while self._heap:
            entry = self._heap[0]
            if not entry[3]:
                heapq.heappop(self._heap)
                continue
            return entry[2]
        return None

    def would_preempt(self, candidate, running):
        return self._key(candidate) < self._key(running)


def make_scheduler(policy, rr_quantum_ns=None):
    """Factory used by kernel configuration.

    ``policy`` is ``"priority"``, ``"priority-array"`` or ``"edf"``;
    ``rr_quantum_ns`` only applies to the fixed-priority policies.
    """
    if policy == "priority":
        return PriorityScheduler(rr_quantum_ns=rr_quantum_ns)
    if policy == "priority-array":
        return ArrayPriorityScheduler(rr_quantum_ns=rr_quantum_ns)
    if policy == "edf":
        return EDFScheduler()
    raise ValueError("unknown scheduling policy: %r" % (policy,))
