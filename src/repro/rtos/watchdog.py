"""The RTAI-style watchdog.

RTAI ships a watchdog module precisely because a runaway hard-RT task
-- one that never yields -- locks the machine: it outranks all of
Linux, so nothing else can intervene.  The watchdog runs conceptually
*above* the task layer and polices continuous CPU occupancy.

This watchdog checks every ``check_period_ns`` whether a task has been
computing without interruption for longer than ``limit_ns``, and then
applies its policy:

* ``"suspend"`` (RTAI's default) -- the offender is suspended and can
  be resumed by management once fixed;
* ``"fault"`` -- the offender is quarantined like a raising body
  (:meth:`~repro.rtos.kernel.RTKernel._fault_task`), which also
  notifies the DRCR's fault handler so the owning component is
  disabled.
"""

from repro.rtos.task import TaskState


class Watchdog:
    """Polices continuous CPU occupancy of RT tasks on one kernel."""

    def __init__(self, kernel, limit_ns, check_period_ns=None,
                 policy="suspend"):
        if limit_ns <= 0:
            raise ValueError("limit must be positive")
        if policy not in ("suspend", "fault"):
            raise ValueError("policy must be 'suspend' or 'fault', "
                             "got %r" % (policy,))
        self.kernel = kernel
        self.limit_ns = int(limit_ns)
        self.check_period_ns = int(check_period_ns or limit_ns // 4
                                    or 1)
        self.policy = policy
        #: (time_ns, task_name, occupancy_ns) per intervention.
        self.interventions = []
        self._event = None
        self._immune = set()
        # Telemetry: interventions must be visible in the metrics path
        # (and hence in system_report), not only in the trace.
        metrics = kernel.sim.telemetry.registry("rtos")
        self._m_interventions = metrics.counter(
            "watchdog_interventions_total")
        self._m_suspends = metrics.counter("watchdog_suspends_total")
        self._m_evictions = metrics.counter("watchdog_evictions_total")

    # ------------------------------------------------------------------
    def start(self):
        """Arm the watchdog (idempotent)."""
        if self._event is None:
            self._arm()
        return self

    def stop(self):
        """Disarm the watchdog."""
        if self._event is not None:
            self._event.cancel_if_pending()
            self._event = None

    def grant_immunity(self, task_name):
        """Exempt a task (RTAI lets you shield known-long workers)."""
        self._immune.add(task_name.upper())

    # ------------------------------------------------------------------
    def _arm(self):
        self._event = self.kernel.sim.schedule(
            self.check_period_ns, self._check, label="watchdog")

    def _check(self):
        self._event = None
        now = self.kernel.now
        for cpu, task in list(self.kernel._running.items()):
            if task is None or task.name in self._immune:
                continue
            if task.state is not TaskState.RUNNING:
                continue
            started = task._compute_started
            if started is None or started > now:
                continue
            occupancy = now - started
            if occupancy > self.limit_ns:
                self._intervene(task, occupancy)
        self._arm()

    def _intervene(self, task, occupancy):
        self.interventions.append((self.kernel.now, task.name,
                                   occupancy))
        self._m_interventions.inc()
        self.kernel.sim.trace.record(
            self.kernel.now, "watchdog", task=task.name,
            occupancy_ns=occupancy, policy=self.policy)
        if self.policy == "suspend":
            self._m_suspends.inc()
            self.kernel.suspend_task(task)
        else:
            self._m_evictions.inc()
            self.kernel._fault_task(task, RuntimeError(
                "watchdog: task %s occupied the CPU for %d ns "
                "(limit %d ns)" % (task.name, occupancy,
                                   self.limit_ns)))

    def __repr__(self):
        return "Watchdog(limit=%dns, policy=%s, %d interventions)" % (
            self.limit_ns, self.policy, len(self.interventions))
