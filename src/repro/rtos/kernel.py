"""The simulated dual-kernel RTOS (the repository's RTAI stand-in).

One :class:`RTKernel` owns a set of CPUs, a hardware timer, the RT task
set, the IPC objects, and the *Linux domain* -- everything RTAI provides
underneath the paper's framework.  The defining dual-kernel property is
built in structurally: **real-time tasks are the only things that occupy
simulated CPU time**; the Linux domain (OSGi, JVM, load generators) only
ever receives the time RT tasks leave idle, so no amount of Linux load
can delay an RT dispatch.  Linux load *does* influence the hardware
wakeup path (idle states, caches), which is what the latency model
captures -- exactly the effect the paper measures in Table 1.

Execution model
---------------
A task body is a generator; the kernel drives it (see
:mod:`repro.rtos.requests`).  ``Compute`` segments occupy the CPU and are
preemptible; every other request is processed in zero simulated time at
the instant it is yielded.  All rescheduling is funnelled through a
coalesced same-instant event (``_request_resched``) so that arbitrarily
deep wake chains (a send waking a receiver waking a sender...) settle
deterministically before time advances.
"""

from repro.rtos import requests as rq
from repro.rtos.errors import (
    DuplicateNameError,
    TaskStateError,
    TimerNotStartedError,
    UnknownObjectError,
)
from repro.rtos.latency import LatencyModel
from repro.rtos.mailbox import Mailbox
from repro.rtos.scheduler import make_scheduler
from repro.rtos.sem import Semaphore
from repro.rtos.shm import SharedMemory
from repro.rtos.task import (
    SUSPENDABLE_STATES,
    RTTask,
    TaskState,
    TaskType,
)
from repro.sim.events import PRIORITY_INTERRUPT, PRIORITY_LATE, \
    PRIORITY_NORMAL

TIMER_PERIODIC = "periodic"
TIMER_ONESHOT = "oneshot"


class KernelConfig:
    """Tunable constants of the simulated hardware/kernel.

    All times in nanoseconds.  ``irq_entry_ns`` is charged between the
    hardware timer firing and the release becoming visible to the
    scheduler; ``scheduler_overhead_ns + context_switch_ns`` are charged
    whenever a task is put on a CPU.  The calibrated latency profiles in
    :mod:`repro.rtos.latency` assume the default total of 1000 ns.
    """

    def __init__(self, num_cpus=1, scheduler_policy="priority",
                 rr_quantum_ns=None, irq_entry_ns=300,
                 scheduler_overhead_ns=200, context_switch_ns=500,
                 latency_model=None, trace_kernel=True):
        if num_cpus < 1:
            raise ValueError("need at least one CPU")
        self.num_cpus = num_cpus
        self.scheduler_policy = scheduler_policy
        self.rr_quantum_ns = rr_quantum_ns
        self.irq_entry_ns = irq_entry_ns
        self.scheduler_overhead_ns = scheduler_overhead_ns
        self.context_switch_ns = context_switch_ns
        self.latency_model = latency_model or LatencyModel()
        self.trace_kernel = trace_kernel

    @property
    def dispatch_cost_ns(self):
        """Total cost of putting a task on a CPU."""
        return self.scheduler_overhead_ns + self.context_switch_ns


class RTKernel:
    """The simulated real-time kernel.  See the module docstring."""

    def __init__(self, sim, config=None):
        self.sim = sim
        self.config = config or KernelConfig()
        cpus = range(self.config.num_cpus)
        self._schedulers = {
            cpu: make_scheduler(self.config.scheduler_policy,
                                self.config.rr_quantum_ns)
            for cpu in cpus
        }
        self._running = {cpu: None for cpu in cpus}
        self._segment_start = {cpu: None for cpu in cpus}
        self._resched_pending = {cpu: False for cpu in cpus}
        self._rt_busy_ns = {cpu: 0 for cpu in cpus}
        # Linux-domain accounting.
        self._loads = []
        self._linux_work_ns = {cpu: 0.0 for cpu in cpus}
        self._last_settle = {cpu: (0, 0) for cpu in cpus}  # (time, busy)
        # Hardware timer.
        self._timer_started = False
        self._timer_mode = TIMER_PERIODIC
        self._timer_period_ns = None
        self._timer_epoch = 0
        # Object registry (single RTAI-style namespace).
        self._registry = {}
        self.tasks = []
        # Hot-path caches: dispatch cost is a property sum, the latency
        # model's sample entry is a bound method, and the zero-offset
        # flag lets the null model skip the whole sampling path (no RNG
        # stream touch, no Linux-demand aggregation) per release.
        self._dispatch_cost = self.config.dispatch_cost_ns
        self._irq_entry = self.config.irq_entry_ns
        self._sample_offset = self.config.latency_model.sample_release_offset
        self._zero_offset = getattr(self.config.latency_model,
                                    "zero_offset", False)
        # Round-robin is off by default; when it is, _begin_compute can
        # skip the quantum-arming helper entirely.
        self._rr_enabled = bool(self.config.rr_quantum_ns)
        # Telemetry instruments (cached; no-ops when telemetry is off).
        # The counters touched per dispatch/release cache the bound
        # ``inc`` method itself -- when telemetry is disabled these are
        # the shared null singletons' no-ops, so there is no enabled/
        # disabled branch anywhere on the hot path.
        metrics = sim.telemetry.registry("rtos")
        self._m_dispatches = metrics.counter("dispatches_total")
        self._m_context_switches = metrics.counter(
            "context_switches_total")
        self._m_preemptions = metrics.counter("preemptions_total")
        self._m_releases = metrics.counter("releases_total")
        self._m_overruns = metrics.counter("overruns_total")
        self._m_deadline_misses = metrics.counter("deadline_misses_total")
        self._m_faults = metrics.counter("task_faults_total")
        self._m_latency = metrics.histogram("dispatch_latency_ns")
        self._inc_dispatches = self._m_dispatches.inc
        self._inc_releases = self._m_releases.inc
        self._observe_latency = self._m_latency.observe
        ready_enqueues = metrics.counter("ready_enqueues_total")
        ready_dequeues = metrics.counter("ready_dequeues_total")
        for scheduler in self._schedulers.values():
            scheduler.bind_counters(ready_enqueues, ready_dequeues)
        self._last_ran = {cpu: None for cpu in cpus}
        #: Optional callback ``(task, error)`` invoked (deferred to the
        #: current instant's end) when a task body raises.  The DRCR
        #: hooks this to quarantine the owning component.
        self.on_task_fault = None

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------
    @property
    def now(self):
        """Current simulated time (ns)."""
        return self.sim.now

    def _trace(self, category, **fields):
        if self.config.trace_kernel:
            self.sim.trace.record(self.sim.now, category, **fields)

    def _register(self, name, obj):
        if name in self._registry:
            raise DuplicateNameError("kernel object %r already exists"
                                     % name)
        self._registry[name] = obj

    def lookup(self, name):
        """Find a kernel object (task/SHM/mailbox/semaphore) by name."""
        obj = self._registry.get(name.upper())
        if obj is None:
            raise UnknownObjectError("no kernel object named %r" % name)
        return obj

    def exists(self, name):
        """Whether a kernel object with that name exists."""
        return name.upper() in self._registry

    def unique_name(self, prefix):
        """Allocate an unused 6-character name like ``$C0042``.

        Used for anonymous kernel objects (e.g. the hybrid container's
        command/status mailboxes) whose names are plumbing, not shared
        references.  Names live in the ``$`` namespace: ``$`` is legal
        in RTAI names but rejected by descriptor port/task validation,
        so plumbing can never collide with component-declared names.
        """
        prefix = ("$" + prefix.upper())[:2]
        for index in range(10000):
            candidate = "%s%04d" % (prefix, index)
            if candidate not in self._registry:
                return candidate
        raise DuplicateNameError("name space %s exhausted" % prefix)

    # ------------------------------------------------------------------
    # hardware timer
    # ------------------------------------------------------------------
    @property
    def timer_started(self):
        """Whether ``start_timer`` has been called."""
        return self._timer_started

    @property
    def timer_period_ns(self):
        """The programmed timer tick (None before start)."""
        return self._timer_period_ns

    def set_timer_mode(self, mode):
        """Select TIMER_PERIODIC or TIMER_ONESHOT (before start)."""
        if mode not in (TIMER_PERIODIC, TIMER_ONESHOT):
            raise ValueError("unknown timer mode: %r" % (mode,))
        self._timer_mode = mode

    def start_timer(self, period_ns):
        """Start the hardware timer (RTAI ``start_rt_timer``)."""
        if period_ns <= 0:
            raise ValueError("timer period must be positive")
        self._timer_started = True
        self._timer_period_ns = int(period_ns)
        self._timer_epoch = self.sim.now
        self._trace("timer_start", period_ns=self._timer_period_ns,
                    mode=self._timer_mode)

    def stop_timer(self):
        """Stop the hardware timer (periodic tasks stop releasing)."""
        self._timer_started = False
        self._trace("timer_stop")

    def quantize(self, when):
        """Snap an absolute time onto the timer grid (periodic mode)."""
        if not self._timer_started:
            raise TimerNotStartedError("timer not started")
        if self._timer_mode == TIMER_ONESHOT:
            return max(when, self.sim.now)
        tick = self._timer_period_ns
        offset = when - self._timer_epoch
        ticks = -(-offset // tick)  # ceil division
        return self._timer_epoch + ticks * tick

    # ------------------------------------------------------------------
    # Linux domain (load generators)
    # ------------------------------------------------------------------
    @property
    def linux_demand(self):
        """Aggregate Linux-side CPU demand in [0, 1] per CPU."""
        return min(1.0, sum(load.demand for load in self._loads))

    def register_load(self, load):
        """Attach a Linux-domain load generator."""
        self._settle_linux_accounting()
        self._loads.append(load)
        load.attached(self)
        self._trace("load_register", load=load.describe(),
                    demand=self.linux_demand)

    def unregister_load(self, load):
        """Detach a Linux-domain load generator."""
        self._settle_linux_accounting()
        self._loads.remove(load)
        load.detached(self)
        self._trace("load_unregister", load=load.describe(),
                    demand=self.linux_demand)

    def _busy_now(self, cpu):
        busy = self._rt_busy_ns[cpu]
        if self._segment_start[cpu] is not None:
            busy += self.sim.now - self._segment_start[cpu]
        return busy

    def _settle_linux_accounting(self):
        demand = self.linux_demand
        for cpu in self._running:
            last_time, last_busy = self._last_settle[cpu]
            busy = self._busy_now(cpu)
            idle = (self.sim.now - last_time) - (busy - last_busy)
            if idle > 0:
                self._linux_work_ns[cpu] += idle * demand
            self._last_settle[cpu] = (self.sim.now, busy)

    def linux_work_ns(self, cpu=None):
        """Linux-domain CPU time executed so far (one CPU or total)."""
        self._settle_linux_accounting()
        if cpu is not None:
            return self._linux_work_ns[cpu]
        return sum(self._linux_work_ns.values())

    def rt_busy_ns(self, cpu=None):
        """Real-time-domain CPU time consumed so far."""
        if cpu is not None:
            return self._busy_now(cpu)
        return sum(self._busy_now(c) for c in self._running)

    def rt_utilization(self, cpu=0):
        """Fraction of elapsed time the RT domain used on ``cpu``."""
        if self.sim.now == 0:
            return 0.0
        return self._busy_now(cpu) / self.sim.now

    # ------------------------------------------------------------------
    # task API
    # ------------------------------------------------------------------
    def create_task(self, name, body, priority, cpu=0,
                    task_type=TaskType.PERIODIC, period_ns=None,
                    deadline_ns=None, collect_latency=False, hybrid=False):
        """Create (but do not start) an RT task.

        ``hybrid`` marks the task as carrying the HRC management poll,
        which feeds the latency model's mode selection (see
        :mod:`repro.rtos.latency`).
        """
        if cpu not in self._running:
            raise ValueError("no such CPU: %r" % (cpu,))
        task = RTTask(self, name, body, priority, cpu=cpu,
                      task_type=task_type, period_ns=period_ns,
                      deadline_ns=deadline_ns,
                      collect_latency=collect_latency)
        task.hybrid = hybrid
        self._register(task.name, task)
        self.tasks.append(task)
        self._trace("task_create", task=task.name, priority=task.priority,
                    cpu=task.cpu, type=task_type.value)
        return task

    def start_task(self, task, start_at=None):
        """Start a task.

        Periodic tasks get an initialization run immediately (the body
        runs until its first ``WaitPeriod``) and are then released on the
        timer grid, first release at ``quantize(start_at or now+period)``.
        Aperiodic tasks simply become ready.
        """
        task._require_state(TaskState.DORMANT)
        if task.is_periodic and not self._timer_started:
            raise TimerNotStartedError(
                "start the hardware timer before starting periodic task %s"
                % task.name)
        task._started = True
        task._gen = task.body(task)
        task._remaining_ns = 0
        task._needs_advance = True
        task._pending_value = None
        task._pending_kind = None
        if task.is_periodic:
            nominal = start_at if start_at is not None \
                else self.sim.now + task.period_ns
            task._next_release = self.quantize(nominal)
            self._arm_release(task)
        else:
            task.stats.activations += 1
            task._release_nominal = self.sim.now
            task._last_release_time = self.sim.now
        self._trace("task_start", task=task.name)
        self._make_ready(task)

    def release_task(self, task):
        """Explicitly release an aperiodic or sporadic task (one job).

        If the task already ended its previous run it is restarted with
        a fresh generator; if it is still busy the release is an
        overrun.  Sporadic tasks enforce their minimum inter-arrival
        time: an early release is *deferred* to the earliest legal
        instant (at most one deferral queues; further early releases
        are dropped and counted as throttled).
        """
        if task.is_periodic:
            raise TaskStateError(
                "release_task is for aperiodic tasks; %s is periodic"
                % task.name)
        if task.suspended:
            raise TaskStateError(
                "cannot release suspended task %s" % task.name)
        if task.task_type is TaskType.SPORADIC:
            earliest = ((task._last_release_time or 0)
                        + task.period_ns)
            if task._last_release_time is not None \
                    and self.sim.now < earliest:
                task.stats.throttled_releases += 1
                if task._deferred_release_event is None:
                    task._deferred_release_event = self.sim.schedule_at(
                        earliest, self._on_deferred_release, task,
                        label="sporadic:%s" % task.name)
                self._trace("sporadic_throttle", task=task.name,
                            earliest=earliest)
                return
        self._do_event_release(task)

    def _on_deferred_release(self, task):
        task._deferred_release_event = None
        if task.state is TaskState.DELETED or task.suspended:
            return
        self._do_event_release(task)

    def _do_event_release(self, task):
        task._last_release_time = self.sim.now
        if task._tap is not None:
            task._tap.on_release(self.sim.now)
        if task.state is TaskState.DORMANT:
            task._started = True
            task._gen = task.body(task)
            task._remaining_ns = 0
            task._needs_advance = True
            task._pending_value = None
            task._release_nominal = self.sim.now
            task.stats.activations += 1
            self._m_releases.inc()
            self._trace("task_release", task=task.name)
            self._make_ready(task)
        else:
            task.stats.overruns += 1
            self._m_overruns.inc()
            self._trace("task_release_overrun", task=task.name)

    def suspend_task(self, task):
        """Externally suspend a task (management interface; nests)."""
        if task.state is TaskState.DELETED:
            raise TaskStateError("cannot suspend deleted task %s"
                                 % task.name)
        task._suspend_depth += 1
        task.stats.suspensions += 1
        if task._suspend_depth > 1:
            return
        if task.state not in SUSPENDABLE_STATES:
            task._resume_state = "dormant"
            return
        if task.state is TaskState.RUNNING:
            self._take_off_cpu(task)
            task._resume_state = "ready"
        elif task.state is TaskState.READY:
            self._schedulers[task.cpu].remove(task)
            task._resume_state = "ready"
        elif task.state is TaskState.WAITING_PERIOD:
            task._resume_state = "waiting"
        else:  # BLOCKED: stays parked in the IPC object
            task._resume_state = "blocked"
        task.state = TaskState.SUSPENDED
        self._trace("task_suspend", task=task.name)
        self._request_resched(task.cpu)

    def resume_task(self, task):
        """Undo one suspend level; restores the pre-suspend situation."""
        if task._suspend_depth == 0:
            raise TaskStateError("task %s is not suspended" % task.name)
        task._suspend_depth -= 1
        if task._suspend_depth > 0:
            return
        self._trace("task_resume", task=task.name)
        resume_state = task._resume_state
        task._resume_state = None
        if task.state is not TaskState.SUSPENDED:
            return  # suspend happened in a non-schedulable state
        if resume_state == "blocked":
            if task._deferred_wake is not None:
                value = task._deferred_wake[0]
                task._deferred_wake = None
                task._needs_advance = True
                task._pending_value = value
                self._make_ready(task)
            else:
                task.state = TaskState.BLOCKED
        elif resume_state == "waiting":
            # Releases were skipped during suspension; rejoin the grid.
            task.state = TaskState.WAITING_PERIOD
        else:
            task._needs_advance = task._remaining_ns == 0 \
                and task._needs_advance
            self._make_ready(task)

    def set_task_priority(self, task, priority):
        """Change a task's priority at run time.

        Used by priority inheritance (:class:`~repro.rtos.sem
        .ResourceSemaphore`) and by adaptation managers
        (``rt_change_prio``).  Ready-queue membership is refreshed and
        a rescheduling pass triggered.
        """
        if priority < 0:
            raise ValueError("priority must be >= 0, got %r"
                             % (priority,))
        if priority == task.priority:
            return
        old = task.priority
        if task.state is TaskState.READY:
            self._schedulers[task.cpu].remove(task)
            task.priority = priority
            self._schedulers[task.cpu].add(task)
        else:
            task.priority = priority
        self._trace("priority_change", task=task.name, old=old,
                    new=priority)
        self._request_resched(task.cpu)

    def attach_sample_tap(self, task, tap):
        """Attach a per-task sample tap (contract monitoring surface).

        ``tap`` must expose ``on_release(now_ns)`` and
        ``on_complete(cpu_time_total_ns)``; the kernel invokes them on
        every release and job completion of ``task``.  One tap per
        task; the hooks cost a single attribute test when no tap is
        attached (docs/PERFORMANCE.md discipline).
        """
        task._tap = tap

    def detach_sample_tap(self, task, tap=None):
        """Remove a previously attached sample tap.

        With ``tap`` given, detach only if that exact tap is still the
        one attached -- so a monitor that lost the race with a newer
        attachment cannot tear down someone else's tap.
        """
        if tap is None or task._tap is tap:
            task._tap = None

    def inject_fault(self, task, error):
        """Force-fault a task from outside its body (fault injection).

        Behaves exactly as if the task's body had raised ``error``: the
        task is quarantined to FAULTED, its events are cancelled, and
        the embedder's ``on_task_fault`` callback (the DRCR) is
        notified.  This is the public surface :mod:`repro.faults` uses;
        the watchdog's ``fault`` policy takes the same path.
        """
        if task.state is TaskState.DELETED:
            raise TaskStateError("cannot fault deleted task %s"
                                 % task.name)
        self._fault_task(task, error)

    def delete_task(self, task):
        """Remove a task from the kernel entirely."""
        if task.state is TaskState.DELETED:
            return
        if task.state is TaskState.RUNNING:
            self._take_off_cpu(task)
        elif task.state is TaskState.READY:
            self._schedulers[task.cpu].remove(task)
        elif task.state is TaskState.BLOCKED and task._blocked_on is not None:
            task._blocked_on._forget_waiter(task)
        self._cancel_task_events(task)
        task.state = TaskState.DELETED
        if task._gen is not None:
            # Close the body so its finally blocks run at delete time
            # rather than at garbage collection.
            try:
                task._gen.close()
            except (RuntimeError, ValueError):
                pass  # deleting from within the body itself
        task._gen = None
        task._blocked_on = None
        self._registry.pop(task.name, None)
        if task in self.tasks:
            self.tasks.remove(task)
        self._trace("task_delete", task=task.name)
        self._request_resched(task.cpu)

    # ------------------------------------------------------------------
    # IPC factories
    # ------------------------------------------------------------------
    def shm_alloc(self, name, dtype, size, owner=None):
        """Create or attach a shared-memory segment (rt_shm_alloc)."""
        key = name.upper()
        existing = self._registry.get(key)
        if existing is not None:
            if not isinstance(existing, SharedMemory):
                raise DuplicateNameError(
                    "%r names a non-SHM kernel object" % name)
            if existing.dtype != dtype or existing.size != int(size):
                raise DuplicateNameError(
                    "SHM %r exists with different type/size" % name)
            return existing.attach(owner)
        segment = SharedMemory(lambda: self.sim.now, name, dtype, size)
        self._register(segment.name, segment)
        self._trace("shm_alloc", name=segment.name, dtype=dtype, size=size)
        return segment.attach(owner)

    def shm_free(self, name, owner=None):
        """Detach from a segment; the last detach frees it."""
        segment = self.lookup(name)
        if segment.detach(owner):
            self._registry.pop(segment.name, None)
            self._trace("shm_free", name=segment.name)

    def mailbox(self, name, capacity=16):
        """Create a mailbox (rt_mbx_init)."""
        box = Mailbox(self, name, capacity)
        self._register(box.name, box)
        self._trace("mbx_init", name=box.name, capacity=capacity)
        return box

    def semaphore(self, name, initial=1):
        """Create a semaphore (rt_sem_init)."""
        sem = Semaphore(self, name, initial)
        self._register(sem.name, sem)
        self._trace("sem_init", name=sem.name, initial=initial)
        return sem

    def resource_semaphore(self, name):
        """Create a priority-inheritance resource semaphore (RES_SEM)."""
        from repro.rtos.sem import ResourceSemaphore
        sem = ResourceSemaphore(self, name)
        self._register(sem.name, sem)
        self._trace("res_sem_init", name=sem.name)
        return sem

    def fifo_create(self, name, capacity, wakeup_model=None):
        """Create an RT->Linux FIFO (rtf_create)."""
        from repro.rtos.fifo import RTFifo
        fifo = RTFifo(self, name, capacity, wakeup_model=wakeup_model)
        self._register(fifo.name, fifo)
        self._trace("fifo_create", name=fifo.name, capacity=capacity)
        return fifo

    def free_object(self, name):
        """Remove a mailbox/semaphore from the registry."""
        obj = self.lookup(name)
        if isinstance(obj, RTTask):
            raise TaskStateError("use delete_task for tasks")
        self._registry.pop(obj.name, None)
        self._trace("obj_free", name=obj.name)

    # ==================================================================
    # internals
    # ==================================================================
    # -- periodic release machinery ------------------------------------
    def _arm_release(self, task):
        """Arm the hardware timer for the task's next nominal release."""
        if not self._timer_started:
            return
        nominal = task._next_release
        if self._zero_offset:
            # Null latency model: skip RNG/demand sampling entirely.
            fire = nominal + self._irq_entry
        else:
            offset = self._sample_offset(
                self.sim.rng, task.name, self.linux_demand, task.hybrid)
            fire = nominal + offset + self._irq_entry
        floor = self.sim.now + 1
        if fire < floor:
            fire = floor
        task._release_event = self.sim.schedule_interrupt(
            fire, self._on_release, task, nominal,
            label=task._label_release)

    def _on_release(self, task, nominal):
        """A periodic release interrupt reached the scheduler.

        This is the hottest kernel callback: the bodies of
        ``_arm_release``, ``_make_ready`` and ``_request_resched`` are
        inlined on its fast branch (docs/PERFORMANCE.md); the named
        helpers remain the canonical copies for every other caller.
        """
        task._release_event = None
        state = task.state
        if state in (TaskState.DELETED, TaskState.FAULTED) \
                or not self._timer_started:
            return
        # Chain the next release immediately: the hardware timer keeps
        # ticking regardless of what the task is doing.
        # (inline _arm_release)
        sim = self.sim
        task._next_release = chained = nominal + task.period_ns
        if self._zero_offset:
            fire = chained + self._irq_entry
        else:
            fire = chained + self._irq_entry + self._sample_offset(
                sim.rng, task.name, self.linux_demand, task.hybrid)
        floor = sim._now + 1
        if fire < floor:
            fire = floor
        task._release_event = sim._push(
            fire, PRIORITY_INTERRUPT, self._on_release, (task, chained),
            task._label_release)
        task.stats.activations += 1
        self._inc_releases()
        if task._tap is not None:
            task._tap.on_release(nominal)
        if state is TaskState.SUSPENDED:
            # Releases are skipped (not queued) while suspended: on
            # resume the task waits for the next fresh release instead
            # of burning through stale catch-up jobs.
            task.stats.skipped_releases += 1
            self._trace("release_while_suspended", task=task.name)
            return
        if state is TaskState.WAITING_PERIOD:
            task._pending_kind = "period"
            task._pending_nominals.append(nominal)
            task._needs_advance = True
            if self.config.trace_kernel:
                self._trace("release", task=task.name, nominal=nominal)
            # (inline _make_ready + _request_resched)
            task.state = TaskState.READY
            cpu = task.cpu
            self._schedulers[cpu].add(task)
            running = self._running[cpu]
            if running is not None and running.priority == task.priority:
                self._arm_quantum(running)
            if not self._resched_pending[cpu]:
                self._resched_pending[cpu] = True
                sim._push(sim._now, PRIORITY_LATE, self._do_resched,
                          (cpu,), "resched")
        else:
            # Task has not finished its previous job yet: overrun.  The
            # pending nominal makes the next WaitPeriod return at once.
            task.stats.overruns += 1
            self._m_overruns.inc()
            task._pending_nominals.append(nominal)
            self._trace("overrun", task=task.name, nominal=nominal)

    # -- ready/dispatch/preemption --------------------------------------
    def _make_ready(self, task):
        task.state = TaskState.READY
        self._schedulers[task.cpu].add(task)
        running = self._running[task.cpu]
        if running is not None and running.priority == task.priority:
            self._arm_quantum(running)
        self._request_resched(task.cpu)

    def _request_resched(self, cpu):
        if self._resched_pending[cpu]:
            return
        self._resched_pending[cpu] = True
        self.sim.call_soon(self._do_resched, cpu, label="resched")

    def _do_resched(self, cpu):
        """Pick-and-dispatch for one CPU (the coalesced resched event).

        Dispatch is inlined here rather than split into a ``_dispatch``
        helper: this event runs once per job in steady state, and the
        period-resume bookkeeping of ``_consume_pending_value`` is
        folded into the common branch (docs/PERFORMANCE.md).
        """
        self._resched_pending[cpu] = False
        scheduler = self._schedulers[cpu]
        current = self._running[cpu]
        task = scheduler.pick()
        if current is not None:
            if task is None or not scheduler.would_preempt(task, current):
                return
            self._preempt(cpu, current)
        elif task is None:
            return
        scheduler.remove(task)
        task.state = TaskState.RUNNING
        self._running[cpu] = task
        now = self.sim._now
        if self._segment_start[cpu] is None:
            self._segment_start[cpu] = now
        self._inc_dispatches()
        if self._last_ran[cpu] is not task:
            self._m_context_switches.inc()
            self._last_ran[cpu] = task
        if self.config.trace_kernel:
            self._trace("dispatch", task=task.name, cpu=cpu)
        if task._needs_advance:
            task._needs_advance = False
            # (inline _consume_pending_value)
            if task._pending_kind == "period":
                nominal = task._pending_nominals.popleft()
                task._release_nominal = nominal
                task._pending_kind = None
                value = now + self._dispatch_cost - nominal
                if task.stats.latency is not None:
                    task.stats.latency.add(value)
                self._observe_latency(value)
                if self.config.trace_kernel:
                    self._trace("period_resume", task=task.name,
                                nominal=nominal, latency=value)
            else:
                value = task._pending_value
                task._pending_value = None
            outcome = self._advance(task, value)
            if outcome != "compute":
                return  # the task left the CPU again (blocked/ended)
        elif task._remaining_ns <= 0:
            # Preempted exactly at a compute boundary: the completion
            # event was cancelled, so finish the segment now.
            outcome = self._advance(task, None)
            if outcome != "compute":
                return
        self._begin_compute(cpu, task)

    def _begin_compute(self, cpu, task):
        sim = self.sim
        start = sim._now + self._dispatch_cost
        task._compute_started = start
        task._completion_event = sim._push(
            start + task._remaining_ns, PRIORITY_NORMAL,
            self._on_compute_complete, (task,), task._label_complete)
        if self._rr_enabled:
            self._arm_quantum(task)

    def _arm_quantum(self, task):
        """Arm round-robin rotation if equal-priority peers are ready."""
        scheduler = self._schedulers[task.cpu]
        quantum = getattr(scheduler, "rr_quantum_ns", None)
        if not quantum or task._quantum_event is not None:
            return
        if not scheduler.peers_ready(task):
            return
        task._quantum_event = self.sim.schedule(
            quantum + self.config.dispatch_cost_ns, self._on_quantum, task,
            label=task._label_quantum)

    def _on_quantum(self, task):
        task._quantum_event = None
        if task.state is not TaskState.RUNNING:
            return
        scheduler = self._schedulers[task.cpu]
        if scheduler.peers_ready(task):
            self._preempt(task.cpu, task)
            self._request_resched(task.cpu)
        elif task._remaining_ns > 0 or task._compute_started is not None:
            self._arm_quantum(task)

    def _preempt(self, cpu, task):
        """Take a RUNNING task off the CPU back into the ready queue."""
        self._take_off_cpu(task)
        task.state = TaskState.READY
        task.stats.preemptions += 1
        self._m_preemptions.inc()
        self._schedulers[cpu].add(task)
        if self.config.trace_kernel:
            self._trace("preempt", task=task.name, cpu=cpu)

    def _take_off_cpu(self, task):
        """Account the partial compute segment and free the CPU."""
        cpu = task.cpu
        if self._running[cpu] is not task:
            raise TaskStateError("task %s not running on CPU %d"
                                 % (task.name, cpu))
        if task._completion_event is not None:
            task._completion_event.cancel_if_pending()
            task._completion_event = None
        if task._quantum_event is not None:
            task._quantum_event.cancel_if_pending()
            task._quantum_event = None
        if task._compute_started is not None:
            consumed = max(0, self.sim.now - task._compute_started)
            consumed = min(consumed, task._remaining_ns)
            task._remaining_ns -= consumed
            task.stats.cpu_time_ns += consumed
            task._compute_started = None
        self._running[cpu] = None
        if self._segment_start[cpu] is not None:
            self._rt_busy_ns[cpu] += self.sim.now - self._segment_start[cpu]
            self._segment_start[cpu] = None
        if self.config.trace_kernel:
            self._trace("off_cpu", task=task.name, cpu=cpu)

    def _on_compute_complete(self, task):
        """The current Compute segment finished; advance the body."""
        task._completion_event = None
        task.stats.cpu_time_ns += task._remaining_ns
        task._remaining_ns = 0
        task._compute_started = None
        outcome = self._advance(task, None)
        if outcome == "compute":
            self._begin_compute(task.cpu, task)

    # -- generator driving ------------------------------------------------
    def _advance(self, task, value):
        """Feed ``value`` into the task body and process zero-time
        requests until the task computes, parks, or ends.

        Returns ``"compute"`` (task stays on CPU with ``_remaining_ns``
        set), ``"parked"`` or ``"ended"`` (CPU already released).
        """
        while True:
            try:
                request = task._gen.send(value)
            except StopIteration:
                self._end_task_run(task)
                return "ended"
            except Exception as error:  # noqa: BLE001 -- quarantine
                self._fault_task(task, error)
                return "ended"
            value = None
            if isinstance(request, rq.Compute):
                if request.ns == 0:
                    continue
                task._remaining_ns = request.ns
                return "compute"
            if isinstance(request, rq.WaitPeriod):
                if task.task_type is not TaskType.PERIODIC:
                    self._fault_task(task, TaskStateError(
                        "aperiodic task %s called WaitPeriod"
                        % task.name))
                    return "ended"
                done = self._handle_wait_period(task)
                if done is not None:
                    value = done
                    continue
                return "parked"
            if isinstance(request, rq.Sleep):
                self._park(task, None)
                self.sim.schedule(request.ns, self._on_sleep_done, task,
                                  label=task._label_sleep)
                return "parked"
            if isinstance(request, rq.Receive):
                completed, result = request.mailbox._task_receive(
                    task, request.blocking)
                if completed:
                    value = result
                    continue
                self._park(task, request.mailbox, request.timeout_ns)
                return "parked"
            if isinstance(request, rq.Send):
                completed, result = request.mailbox._task_send(
                    task, request.message, request.blocking)
                if completed:
                    value = result
                    continue
                self._park(task, request.mailbox)
                return "parked"
            if isinstance(request, rq.SemWait):
                completed, result = request.semaphore._task_wait(task)
                if completed:
                    value = result
                    continue
                self._park(task, request.semaphore, request.timeout_ns)
                return "parked"
            if isinstance(request, rq.SemSignal):
                request.semaphore.signal()
                continue
            if isinstance(request, rq.SuspendSelf):
                self._release_cpu_if_running(task)
                task._suspend_depth += 1
                task.stats.suspensions += 1
                task._resume_state = "ready"
                task._needs_advance = True
                task._pending_value = None
                task.state = TaskState.SUSPENDED
                self._trace("task_self_suspend", task=task.name)
                self._request_resched(task.cpu)
                return "parked"
            # An unknown request is a programming error in the body;
            # quarantine the task rather than unwinding the simulator.
            self._fault_task(task, TypeError(
                "task %s yielded unknown request %r"
                % (task.name, request)))
            return "ended"

    def _handle_wait_period(self, task):
        """Process a WaitPeriod.  Returns the latency when the task can
        continue immediately (overrun catch-up), else ``None`` after
        parking it."""
        # Job-completion bookkeeping for the job that just ended.
        if task._release_nominal is not None:
            task.stats.completions += 1
            if task._tap is not None:
                task._tap.on_complete(task.stats.cpu_time_ns)
            if task.deadline_ns is not None:
                deadline = task._release_nominal + task.deadline_ns
                if self.sim.now > deadline:
                    task.stats.deadline_misses += 1
                    self._m_deadline_misses.inc()
                    self._trace("deadline_miss", task=task.name,
                                nominal=task._release_nominal,
                                lateness=self.sim.now - deadline)
        if task._pending_nominals:
            nominal = task._pending_nominals.popleft()
            task._release_nominal = nominal
            latency = self.sim.now - nominal
            if task.stats.latency is not None:
                task.stats.latency.add(latency)
            self._observe_latency(latency)
            return latency
        if task.state is TaskState.RUNNING:
            self._take_off_cpu(task)
        task.state = TaskState.WAITING_PERIOD
        # (inline _request_resched)
        cpu = task.cpu
        if not self._resched_pending[cpu]:
            self._resched_pending[cpu] = True
            sim = self.sim
            sim._push(sim._now, PRIORITY_LATE, self._do_resched, (cpu,),
                      "resched")
        return None

    def _release_cpu_if_running(self, task):
        if task.state is TaskState.RUNNING:
            self._take_off_cpu(task)

    def _park(self, task, blocked_on, timeout_ns=None):
        """Block a task on an IPC object (or pure sleep)."""
        self._release_cpu_if_running(task)
        task.state = TaskState.BLOCKED
        task._blocked_on = blocked_on
        if timeout_ns is not None:
            task._timeout_event = self.sim.schedule(
                timeout_ns, self._on_ipc_timeout, task,
                label=task._label_timeout)
        if self.config.trace_kernel:
            self._trace("block", task=task.name,
                        on=getattr(blocked_on, "name", "sleep"))
        self._request_resched(task.cpu)

    def _on_sleep_done(self, task):
        if task.state is TaskState.BLOCKED and task._blocked_on is None:
            self._wake_task(task, None)
        elif task.state is TaskState.SUSPENDED \
                and task._resume_state == "blocked":
            task._deferred_wake = (None,)

    def _on_ipc_timeout(self, task):
        task._timeout_event = None
        if task.state is TaskState.BLOCKED and task._blocked_on is not None:
            obj = task._blocked_on
            obj._forget_waiter(task)
            task._blocked_on = None
            timeout_value = False if isinstance(obj, Semaphore) else None
            self._wake_task(task, timeout_value)

    def _wake_task(self, task, value):
        """Wake a blocked task with ``value`` (IPC completion)."""
        if task.state is TaskState.SUSPENDED:
            # Deliver later: record the wake, drop the block.
            task._deferred_wake = (value,)
            task._blocked_on = None
            task._resume_state = "blocked"
            return
        if task.state is not TaskState.BLOCKED:
            raise TaskStateError("cannot wake task %s in state %s"
                                 % (task.name, task.state.name))
        task._blocked_on = None
        if task._timeout_event is not None:
            task._timeout_event.cancel_if_pending()
            task._timeout_event = None
        task._needs_advance = True
        task._pending_value = value
        if self.config.trace_kernel:
            self._trace("wake", task=task.name)
        self._make_ready(task)

    def _fault_task(self, task, error):
        """A task body raised: quarantine the task.

        The fault must not take the simulation down (one misbehaving
        component must not halt the platform -- the whole point of
        central management).  The task is parked in FAULTED, its events
        cancelled, and the embedder's fault callback scheduled.
        """
        self._release_cpu_if_running(task)
        self._cancel_task_events(task)
        if task._blocked_on is not None:
            task._blocked_on._forget_waiter(task)
            task._blocked_on = None
        task._gen = None
        task.state = TaskState.FAULTED
        task.fault = error
        self._m_faults.inc()
        self._trace("task_fault", task=task.name, error=repr(error))
        if self.on_task_fault is not None:
            self.sim.call_soon(self.on_task_fault, task, error,
                               label="fault:%s" % task.name)
        self._request_resched(task.cpu)

    def _end_task_run(self, task):
        """The body generator returned: the run is over."""
        self._release_cpu_if_running(task)
        self._cancel_task_events(task)
        task._gen = None
        task.state = TaskState.DORMANT
        if task._release_nominal is not None:
            task.stats.completions += 1
            if task._tap is not None:
                task._tap.on_complete(task.stats.cpu_time_ns)
            if task.deadline_ns is not None:
                deadline = task._release_nominal + task.deadline_ns
                if self.sim.now > deadline:
                    task.stats.deadline_misses += 1
                    self._m_deadline_misses.inc()
                    self._trace("deadline_miss", task=task.name,
                                nominal=task._release_nominal,
                                lateness=self.sim.now - deadline)
        self._trace("task_end", task=task.name)
        self._request_resched(task.cpu)

    def _cancel_task_events(self, task):
        for attr in ("_completion_event", "_quantum_event",
                     "_timeout_event", "_release_event",
                     "_deferred_release_event"):
            event = getattr(task, attr, None)
            if event is not None:
                event.cancel_if_pending()
                setattr(task, attr, None)
