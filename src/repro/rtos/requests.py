"""Requests a task body may yield to the kernel.

A task body is a generator function; each ``yield`` hands a request to
the kernel, which resumes the generator (possibly much later in simulated
time) with the request's result.  This mirrors how an RTAI task
alternates between computing and calling blocking kernel services::

    def body(task):
        while True:
            yield Compute(50 * USEC)          # burn CPU (preemptible)
            task.shm_write("images", frame)    # zero-time side effect
            cmd = yield Receive(mbx, blocking=False)   # poll, never block
            yield WaitPeriod()                 # rt_task_wait_period()
"""


class Request:
    """Base class for kernel requests (useful for isinstance checks)."""

    __slots__ = ()


class Compute(Request):
    """Consume ``ns`` nanoseconds of CPU time; preemptible."""

    __slots__ = ("ns",)

    def __init__(self, ns):
        if ns < 0:
            raise ValueError("compute time must be >= 0, got %r" % (ns,))
        self.ns = int(ns)

    def __repr__(self):
        return "Compute(%d)" % self.ns


class WaitPeriod(Request):
    """End the current job and wait for the next periodic release.

    Resumes with the job's *scheduling latency* in nanoseconds (actual
    resume time minus nominal release time), the quantity the paper's
    Table 1 reports.
    """

    __slots__ = ()

    def __repr__(self):
        return "WaitPeriod()"


class Sleep(Request):
    """Block for ``ns`` nanoseconds of simulated time."""

    __slots__ = ("ns",)

    def __init__(self, ns):
        if ns < 0:
            raise ValueError("sleep time must be >= 0, got %r" % (ns,))
        self.ns = int(ns)

    def __repr__(self):
        return "Sleep(%d)" % self.ns


class Receive(Request):
    """Receive from a mailbox.

    ``blocking=False`` polls: resumes immediately with the message or
    ``None``.  ``blocking=True`` blocks until a message arrives or
    ``timeout_ns`` elapses (resuming with ``None`` on timeout).
    """

    __slots__ = ("mailbox", "blocking", "timeout_ns")

    def __init__(self, mailbox, blocking=True, timeout_ns=None):
        self.mailbox = mailbox
        self.blocking = blocking
        self.timeout_ns = timeout_ns

    def __repr__(self):
        return "Receive(%s, blocking=%s)" % (self.mailbox.name,
                                             self.blocking)


class Send(Request):
    """Send ``message`` to a mailbox.

    ``blocking=False`` resumes immediately with ``True`` (delivered) or
    ``False`` (mailbox full).  ``blocking=True`` blocks until space is
    available (always resumes with ``True``).
    """

    __slots__ = ("mailbox", "message", "blocking")

    def __init__(self, mailbox, message, blocking=False):
        self.mailbox = mailbox
        self.message = message
        self.blocking = blocking

    def __repr__(self):
        return "Send(%s, blocking=%s)" % (self.mailbox.name, self.blocking)


class SemWait(Request):
    """Wait (P) on a semaphore; resumes with ``True`` once acquired, or
    ``False`` on timeout."""

    __slots__ = ("semaphore", "timeout_ns")

    def __init__(self, semaphore, timeout_ns=None):
        self.semaphore = semaphore
        self.timeout_ns = timeout_ns

    def __repr__(self):
        return "SemWait(%s)" % self.semaphore.name


class SemSignal(Request):
    """Signal (V) a semaphore; never blocks, resumes with ``None``."""

    __slots__ = ("semaphore",)

    def __init__(self, semaphore):
        self.semaphore = semaphore

    def __repr__(self):
        return "SemSignal(%s)" % self.semaphore.name


class SuspendSelf(Request):
    """Suspend the calling task until an external ``resume``."""

    __slots__ = ()

    def __repr__(self):
        return "SuspendSelf()"
