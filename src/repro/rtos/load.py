"""Linux-domain load generators.

The paper's stress mode runs "three commands accompany with our OSGi
platform" until "the CPU usage is close to 100%" (section 4.4).  In the
dual-kernel model Linux load can never delay an RT dispatch -- it only
(a) soaks up the CPU time the RT domain leaves idle, and (b) changes the
hardware wakeup-path conditions that the latency model keys on
(:class:`repro.rtos.latency.LatencyModel`).

Each generator declares a *demand* fraction; the kernel sums demands to
classify the system as light or stress and to account Linux throughput.
"""

from repro.sim.engine import MSEC


class LoadGenerator:
    """Base class: a named source of Linux-side CPU demand."""

    def __init__(self, name, demand):
        if not 0.0 <= demand <= 1.0:
            raise ValueError("demand must be in [0, 1], got %r" % (demand,))
        self.name = name
        self.demand = demand
        self._kernel = None

    def attached(self, kernel):
        """Called by the kernel on :meth:`RTKernel.register_load`."""
        self._kernel = kernel

    def detached(self, kernel):
        """Called by the kernel on :meth:`RTKernel.unregister_load`."""
        self._kernel = None

    def describe(self):
        """Short description used in kernel traces."""
        return "%s(demand=%.2f)" % (self.name, self.demand)


class CPUHogLoad(LoadGenerator):
    """A pure CPU burner, like ``while true; do :; done`` or the paper's
    stress commands."""

    def __init__(self, demand=1.0, name="cpuhog"):
        super().__init__(name, demand)


class IOStressLoad(LoadGenerator):
    """Disk/IO stress: moderate CPU demand, cache-thrashing pattern."""

    def __init__(self, demand=0.35, name="iostress"):
        super().__init__(name, demand)


class ForkStormLoad(LoadGenerator):
    """Process-creation storm (``fork`` benchmark): high, bursty demand."""

    def __init__(self, demand=0.9, name="forkstorm"):
        super().__init__(name, demand)


class JVMGarbageCollectorLoad(LoadGenerator):
    """The OSGi platform's JVM garbage collector.

    The paper stresses that the dual-kernel approach "solves one of the
    biggest challenges in this context[:] to prevent Java's garbage
    collector from interfering with real-time task scheduling" (section
    4.4).  Modelled as a bursty Linux-side demand; being a *Linux*
    citizen it structurally cannot delay RT dispatches, which is exactly
    the property the ablation benchmark asserts.
    """

    def __init__(self, demand=0.25, pause_ms=40, name="jvm-gc"):
        super().__init__(name, demand)
        self.pause_ms = pause_ms

    def worst_case_pause_ns(self):
        """Worst-case stop-the-world pause (affects only Linux work)."""
        return self.pause_ms * MSEC


def stress_suite():
    """The paper's stress workload: three concurrent load commands that
    drive Linux CPU usage to ~100% (section 4.4)."""
    return [
        CPUHogLoad(demand=0.40, name="stress-cpu"),
        ForkStormLoad(demand=0.35, name="stress-fork"),
        IOStressLoad(demand=0.25, name="stress-io"),
    ]


def apply_stress(kernel):
    """Register the stress suite on a kernel; returns the generators so
    the caller can unregister them later."""
    loads = stress_suite()
    for load in loads:
        kernel.register_load(load)
    return loads


def remove_loads(kernel, loads):
    """Unregister a list of generators previously applied."""
    for load in loads:
        kernel.unregister_load(load)
