"""RTAI-style 6-character object names.

RTAI identifies kernel objects (tasks, shared memory, mailboxes,
semaphores) by an unsigned integer derived from a name of **at most six
characters** drawn from a 39-symbol alphabet; the paper notes that "the
ports are characterized by a six character name because the underlying
real time OS use the six character name to refer to the real time tasks"
(section 2.3).  This module reimplements RTAI's ``nam2num``/``num2nam``
pair and the validation the rest of the repository relies on.
"""

from repro.rtos.errors import InvalidTaskNameError

#: Characters accepted in RTAI names, in encoding order: digits, letters
#: (case-folded to upper case), underscore.  Index 0 is reserved for the
#: string terminator, exactly as in RTAI's base-39 encoding.
_ALPHABET = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ_"
_BASE = len(_ALPHABET) + 2  # RTAI uses base 39: alphabet, '$', terminator
MAX_NAME_LENGTH = 6


def _char_value(ch):
    upper = ch.upper()
    idx = _ALPHABET.find(upper)
    if idx >= 0:
        return idx + 1
    if upper == "$":
        return len(_ALPHABET) + 1
    raise InvalidTaskNameError("character %r not allowed in RTAI name" % ch)


def validate_name(name):
    """Validate ``name`` and return its canonical (upper-case) form.

    Raises :class:`InvalidTaskNameError` for empty names, names longer
    than six characters, or names with characters outside the RTAI
    alphabet.
    """
    if not isinstance(name, str):
        raise InvalidTaskNameError("name must be a string, got %r" % (name,))
    if not name:
        raise InvalidTaskNameError("name must not be empty")
    if len(name) > MAX_NAME_LENGTH:
        raise InvalidTaskNameError(
            "name %r is longer than %d characters (RTAI limit)"
            % (name, MAX_NAME_LENGTH))
    for ch in name:
        _char_value(ch)
    return name.upper()


def nam2num(name):
    """Encode a validated name as RTAI's base-39 unsigned integer."""
    name = validate_name(name)
    value = 0
    for ch in name:
        value = value * _BASE + _char_value(ch)
    for _ in range(MAX_NAME_LENGTH - len(name)):
        value = value * _BASE
    return value


def num2nam(value):
    """Decode ``nam2num`` output back to the canonical name string."""
    if value < 0:
        raise InvalidTaskNameError("encoded name must be non-negative")
    digits = []
    for _ in range(MAX_NAME_LENGTH):
        digits.append(value % _BASE)
        value //= _BASE
    if value:
        raise InvalidTaskNameError("encoded value too large for a name")
    chars = []
    for digit in reversed(digits):
        if digit == 0:
            continue
        if digit == len(_ALPHABET) + 1:
            chars.append("$")
        else:
            chars.append(_ALPHABET[digit - 1])
    name = "".join(chars)
    if not name:
        raise InvalidTaskNameError("encoded value decodes to empty name")
    return name


def derive_port_name(component_name, port_name, index=0):
    """Derive a unique 6-char kernel name for a component port.

    Component and port names in DRCom descriptors may be longer than six
    characters; the kernel objects backing them need RTAI names.  We take
    the first three characters of each and a disambiguating index digit
    when needed, mirroring the convention used in the authors' prototype.
    """
    base = (component_name[:3] + port_name[:3]).upper()
    cleaned = "".join(ch if ch.upper() in _ALPHABET else "_" for ch in base)
    if index:
        cleaned = cleaned[:5] + str(index % 10)
    return validate_name(cleaned[:MAX_NAME_LENGTH])
