"""Hardware scheduling-latency model.

The paper measures, for a 1000 Hz periodic RTAI task, the difference
between the nominal release time and the instant the task actually
resumes ("there will be always a drift between time baseline and the one
the task are really scheduled", section 4.4).  Table 1 reports the
AVERAGE / AVEDEV / MIN / MAX of that difference in nanoseconds, in a
*light* and a *stress* (about 100% Linux CPU load) mode, and its headline
observations are:

* latencies are small and mostly **negative** (the periodic timer is
  programmed in hardware ticks, so it fires slightly early relative to
  the nanosecond baseline);
* under **stress** the distribution *shifts* strongly negative but gets
  much *tighter* (AVEDEV drops from ~3.7 us to ~0.35 us): with the CPU
  always busy it never enters deep idle states, so the wakeup path cost is
  constant, whereas in light mode idle-state exit and cache refill add
  heavy-tailed jitter;
* the hybrid (HRC) implementation is statistically indistinguishable
  from pure RTAI in both modes, because the RT side only *polls* its
  management mailbox (asynchronous command protocol, section 3.2).

This module reproduces those distributions mechanically: the kernel asks
:class:`LatencyModel` for a *timer fire offset* every time it arms a
periodic release, conditioned on the Linux-domain load and on whether the
task carries the hybrid management poll.  Deterministic dispatch costs
(IRQ entry, scheduler pass, context switch) are added by the kernel
itself and are accounted for in the calibration constants below.
"""

#: Deterministic cost charged by the kernel on the uncontended dispatch
#: path (see :class:`repro.rtos.kernel.KernelConfig`): IRQ entry +
#: scheduler pass + context switch.  The calibrated offsets below subtract
#: it so the *measured* latency lands on the paper's figures.
DEFAULT_DISPATCH_COST_NS = 1000


class LatencyProfile:
    """Distribution parameters for one (mode, implementation) cell.

    The sampled offset is ``base + jitter`` where jitter is a mixture of
    a Gaussian bulk and a uniform heavy tail (SMI / DMA / idle-exit
    spikes), clamped to ``[clamp_lo, clamp_hi]``.
    """

    __slots__ = ("base_ns", "sigma_ns", "tail_prob", "tail_lo_ns",
                 "tail_hi_ns", "clamp_lo_ns", "clamp_hi_ns")

    def __init__(self, base_ns, sigma_ns, tail_prob, tail_lo_ns,
                 tail_hi_ns, clamp_lo_ns, clamp_hi_ns):
        self.base_ns = base_ns
        self.sigma_ns = sigma_ns
        self.tail_prob = tail_prob
        self.tail_lo_ns = tail_lo_ns
        self.tail_hi_ns = tail_hi_ns
        self.clamp_lo_ns = clamp_lo_ns
        self.clamp_hi_ns = clamp_hi_ns

    def sample(self, rng, stream):
        """Draw one offset (ns, may be negative) from named stream."""
        if rng.random(stream) < self.tail_prob:
            jitter = rng.uniform(stream, self.tail_lo_ns, self.tail_hi_ns)
        else:
            jitter = rng.gauss(stream, 0.0, self.sigma_ns)
        value = self.base_ns + jitter
        if value < self.clamp_lo_ns:
            value = self.clamp_lo_ns
        elif value > self.clamp_hi_ns:
            value = self.clamp_hi_ns
        return int(value)


def _light_profile(extra_shift_ns):
    """Light mode: idle-exit jitter dominates -- wide, heavy-tailed."""
    return LatencyProfile(
        base_ns=-1600 + extra_shift_ns,
        sigma_ns=4300.0,
        tail_prob=0.03,
        tail_lo_ns=-23500.0,
        tail_hi_ns=23500.0,
        clamp_lo_ns=-25500,
        clamp_hi_ns=24000,
    )


def _stress_profile(extra_shift_ns):
    """Stress mode: constant hot-path wakeup, strongly early, tight."""
    return LatencyProfile(
        base_ns=-22200 + extra_shift_ns,
        sigma_ns=430.0,
        tail_prob=0.01,
        tail_lo_ns=-4000.0,
        tail_hi_ns=3200.0,
        clamp_lo_ns=-26000,
        clamp_hi_ns=-17000,
    )


class LatencyModel:
    """Samples timer fire offsets for periodic releases.

    Parameters
    ----------
    hybrid_shift_light_ns / hybrid_shift_stress_ns:
        Mean shift a hybrid (HRC) task's management-mailbox poll imposes
        on the wakeup path, per mode.  Calibrated against Table 1
        (light: HRC ~700 ns earlier on average; stress: ~100 ns later);
        both are an order of magnitude below the mode's AVEDEV, i.e. the
        "no much difference" the paper reports.
    busy_threshold:
        Linux-domain demand fraction above which the stress profile is
        used.
    """

    #: Class-level fast-path flag: when true, the kernel skips sampling
    #: entirely and fires releases exactly on the timer grid (plus IRQ
    #: entry).  Overridden by :class:`NullLatencyModel`; checked once at
    #: kernel construction (docs/PERFORMANCE.md).
    zero_offset = False

    def __init__(self, hybrid_shift_light_ns=-700,
                 hybrid_shift_stress_ns=100, busy_threshold=0.75):
        self.busy_threshold = busy_threshold
        self._profiles = {
            ("light", False): _light_profile(0),
            ("light", True): _light_profile(hybrid_shift_light_ns),
            ("stress", False): _stress_profile(0),
            ("stress", True): _stress_profile(hybrid_shift_stress_ns),
        }

    def mode_for(self, linux_demand):
        """Classify a Linux-domain demand fraction as light/stress."""
        return "stress" if linux_demand >= self.busy_threshold else "light"

    def profile(self, mode, hybrid):
        """Return the :class:`LatencyProfile` for a (mode, hybrid) cell."""
        return self._profiles[(mode, bool(hybrid))]

    def sample_release_offset(self, rng, task_name, linux_demand, hybrid):
        """Draw the timer fire offset for one periodic release.

        A dedicated stream per task keeps task latencies statistically
        independent and runs reproducible.
        """
        mode = self.mode_for(linux_demand)
        profile = self.profile(mode, hybrid)
        return profile.sample(rng, "latency/%s" % task_name)


class NullLatencyModel(LatencyModel):
    """A latency model that always returns zero offset.

    Used by tests and by the analysis benchmarks, where scheduling
    behaviour should be exact rather than jittered.
    """

    zero_offset = True

    def __init__(self):
        super().__init__()

    def sample_release_offset(self, rng, task_name, linux_demand, hybrid):
        return 0
