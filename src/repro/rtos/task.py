"""The real-time task model.

An :class:`RTTask` corresponds to an RTAI (LXRT) task: a named, prioritised
unit of execution pinned to one CPU, either *periodic* (released on the
hardware timer grid) or *aperiodic* (released explicitly).  Tasks are
created through :meth:`repro.rtos.kernel.RTKernel.create_task`; the class
here holds state and statistics, while the kernel owns every transition.

Priority convention follows RTAI: **smaller number = higher priority**,
0 is the highest.
"""

import enum
from collections import deque

from repro.rtos import names
from repro.rtos.errors import TaskStateError
from repro.sim.stats import SampleSeries


class TaskType(enum.Enum):
    """Task release discipline (the descriptor's ``type`` attribute).

    PERIODIC and APERIODIC are the paper's set (section 2.3); SPORADIC
    extends it with event-driven tasks whose *minimum inter-arrival
    time* is enforced by the kernel, making them admissible by the same
    schedulability analyses as periodic tasks.
    """

    PERIODIC = "periodic"
    APERIODIC = "aperiodic"
    SPORADIC = "sporadic"


class TaskState(enum.Enum):
    """Kernel-level task states."""

    DORMANT = "dormant"          # created, never started / ended
    READY = "ready"              # in a ready queue
    RUNNING = "running"          # executing on a CPU
    WAITING_PERIOD = "waiting"   # between periodic jobs
    BLOCKED = "blocked"          # on IPC / sleep
    SUSPENDED = "suspended"      # externally suspended (management)
    FAULTED = "faulted"          # body raised; quarantined by kernel
    DELETED = "deleted"          # removed from the kernel


#: States in which the task occupies a ready queue or a CPU.
SCHEDULABLE_STATES = frozenset({TaskState.READY, TaskState.RUNNING})

#: States from which an external suspend is meaningful.
SUSPENDABLE_STATES = frozenset({
    TaskState.READY, TaskState.RUNNING, TaskState.WAITING_PERIOD,
    TaskState.BLOCKED,
})


class TaskStats:
    """Per-task counters and (optional) latency series."""

    __slots__ = ("activations", "completions", "deadline_misses",
                 "overruns", "preemptions", "suspensions",
                 "skipped_releases", "throttled_releases", "cpu_time_ns",
                 "latency")

    def __init__(self, collect_latency=False):
        self.activations = 0
        self.completions = 0
        self.deadline_misses = 0
        self.overruns = 0
        self.preemptions = 0
        self.suspensions = 0
        self.skipped_releases = 0
        self.throttled_releases = 0
        self.cpu_time_ns = 0
        self.latency = SampleSeries() if collect_latency else None

    def as_dict(self):
        """Snapshot of the counters (used by the management interface)."""
        snapshot = {
            "activations": self.activations,
            "completions": self.completions,
            "deadline_misses": self.deadline_misses,
            "overruns": self.overruns,
            "preemptions": self.preemptions,
            "suspensions": self.suspensions,
            "skipped_releases": self.skipped_releases,
            "throttled_releases": self.throttled_releases,
            "cpu_time_ns": self.cpu_time_ns,
        }
        if self.latency is not None:
            snapshot["latency"] = self.latency.summary()
        return snapshot


class RTTask:
    """A simulated RTAI task.  Construct via ``RTKernel.create_task``.

    ``__slots__`` keeps task records compact and attribute access flat:
    the kernel touches a dozen of these fields per dispatch, and the
    slotted layout both removes the per-instance ``__dict__`` and makes
    every load a fixed-offset read (docs/PERFORMANCE.md).  The
    ``_label_*`` fields precompute the event-label strings the kernel
    would otherwise format once per release/compute/timeout event.
    """

    __slots__ = (
        "kernel", "name", "num", "body", "priority", "cpu", "task_type",
        "period_ns", "deadline_ns", "state", "stats", "fault", "hybrid",
        "_gen", "_remaining_ns", "_compute_started", "_completion_event",
        "_quantum_event", "_timeout_event", "_release_event",
        "_release_nominal", "_next_release", "_pending_nominals",
        "_pending_kind", "_pending_value", "_needs_advance",
        "_deferred_wake", "_last_release_time", "_deferred_release_event",
        "_suspend_depth", "_resume_state", "_started", "_blocked_on",
        "_tap",
        "_label_release", "_label_complete", "_label_quantum",
        "_label_timeout", "_label_sleep",
    )

    def __init__(self, kernel, name, body, priority, cpu=0,
                 task_type=TaskType.PERIODIC, period_ns=None,
                 deadline_ns=None, collect_latency=False):
        self.kernel = kernel
        self.name = names.validate_name(name)
        self.num = names.nam2num(self.name)
        self.body = body
        self.priority = int(priority)
        self.cpu = int(cpu)
        self.task_type = task_type
        self.period_ns = period_ns
        #: Relative deadline; defaults to the period for periodic tasks.
        self.deadline_ns = deadline_ns if deadline_ns is not None else period_ns
        self.state = TaskState.DORMANT
        self.stats = TaskStats(collect_latency=collect_latency)
        #: The exception that faulted the task (None while healthy).
        self.fault = None

        if self.priority < 0:
            raise ValueError("priority must be >= 0 (0 = highest)")
        if task_type is TaskType.PERIODIC:
            if not period_ns or period_ns <= 0:
                raise ValueError(
                    "periodic task %s needs a positive period_ns" % name)
        if task_type is TaskType.SPORADIC:
            # period_ns doubles as the enforced minimum inter-arrival.
            if not period_ns or period_ns <= 0:
                raise ValueError(
                    "sporadic task %s needs a positive period_ns "
                    "(minimum inter-arrival time)" % name)

        #: Whether the task carries the HRC management-mailbox poll
        #: (feeds the latency model); set by ``RTKernel.create_task``.
        self.hybrid = False

        # -- kernel-private execution state -------------------------------
        self._gen = None                # live generator for current run
        self._remaining_ns = 0          # outstanding Compute time
        self._compute_started = None    # when current compute slice began
        self._completion_event = None   # pending compute-complete event
        self._quantum_event = None      # pending round-robin rotation
        self._timeout_event = None      # pending IPC timeout
        self._release_event = None      # pending timer release interrupt
        self._release_nominal = None    # nominal release of current job
        self._next_release = None       # nominal next periodic release
        self._pending_nominals = deque()  # releases not yet consumed
        self._pending_kind = None       # "period" when woken by a release
        self._pending_value = None      # value to feed the generator
        self._needs_advance = False     # generator must be advanced
        self._deferred_wake = None      # wake delivered while suspended
        self._last_release_time = None  # sporadic inter-arrival anchor
        self._deferred_release_event = None  # throttled sporadic release
        self._suspend_depth = 0         # nested external suspends
        self._resume_state = None       # state to restore after suspend
        self._started = False
        self._blocked_on = None         # IPC object currently blocked on
        self._tap = None                # sample tap (contract monitor)

        # Precomputed event labels (kernel hot path; see class docstring).
        self._label_release = "release:" + self.name
        self._label_complete = "complete:" + self.name
        self._label_quantum = "quantum:" + self.name
        self._label_timeout = "timeout:" + self.name
        self._label_sleep = "sleep:" + self.name

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def is_periodic(self):
        """Whether the task is released on the timer grid."""
        return self.task_type is TaskType.PERIODIC

    @property
    def started(self):
        """Whether the task has been started at least once."""
        return self._started

    @property
    def suspended(self):
        """Whether at least one external suspend is in effect."""
        return self._suspend_depth > 0

    @property
    def utilization(self):
        """Measured CPU utilisation so far (cpu time / elapsed)."""
        now = self.kernel.now
        if now <= 0:
            return 0.0
        return self.stats.cpu_time_ns / now

    def status(self):
        """Status snapshot for the management interface (section 2.4)."""
        return {
            "name": self.name,
            "state": self.state.value,
            "priority": self.priority,
            "cpu": self.cpu,
            "type": self.task_type.value,
            "period_ns": self.period_ns,
            "suspend_depth": self._suspend_depth,
            "stats": self.stats.as_dict(),
        }

    def _require_state(self, *states):
        if self.state not in states:
            raise TaskStateError(
                "task %s is %s; expected one of %s"
                % (self.name, self.state.name,
                   "/".join(s.name for s in states)))

    def __repr__(self):
        return "RTTask(%s, prio=%d, cpu=%d, %s, %s)" % (
            self.name, self.priority, self.cpu, self.task_type.value,
            self.state.value)
