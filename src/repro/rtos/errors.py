"""Exceptions raised by the simulated real-time kernel."""


class RTOSError(Exception):
    """Base class for all kernel errors."""


class InvalidTaskNameError(RTOSError):
    """A task/IPC object name violates the 6-character RTAI name rules."""


class DuplicateNameError(RTOSError):
    """An object with that registry name already exists."""


class UnknownObjectError(RTOSError):
    """Lookup of a kernel object by name failed."""


class TimerNotStartedError(RTOSError):
    """A periodic task was started before ``start_rt_timer`` was called."""


class TaskStateError(RTOSError):
    """An operation is not valid in the task's current state."""


class SchedulerError(RTOSError):
    """Internal scheduler invariant violated."""


class IPCError(RTOSError):
    """Base class for IPC (shared memory / mailbox / semaphore) errors."""


class MailboxFullError(IPCError):
    """A non-blocking send found the mailbox full."""


class MailboxEmptyError(IPCError):
    """A non-blocking receive found the mailbox empty."""


class ShmTypeError(IPCError):
    """A shared-memory access used the wrong data type or size."""
