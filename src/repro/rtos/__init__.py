"""The simulated RTAI-like dual-kernel real-time OS.

This package is the repository's stand-in for the paper's RTAI-patched
Linux (see DESIGN.md, "Substitutions").  The public surface:

* :class:`~repro.rtos.kernel.RTKernel` / :class:`~repro.rtos.kernel.KernelConfig`
  -- the kernel itself,
* :class:`~repro.rtos.task.RTTask` and the request vocabulary in
  :mod:`repro.rtos.requests` -- how task bodies are written,
* :class:`~repro.rtos.lxrt.LXRT` -- the RTAI-LXRT procedural facade,
* IPC: :class:`~repro.rtos.shm.SharedMemory`,
  :class:`~repro.rtos.mailbox.Mailbox`, :class:`~repro.rtos.sem.Semaphore`,
* :mod:`~repro.rtos.latency` -- the calibrated scheduling-latency model,
* :mod:`~repro.rtos.load` -- Linux-domain load generators (stress mode).
"""

from repro.rtos.dio import (
    ConstantSignal,
    DigitalIOModule,
    RandomWalk,
    SignalSource,
    SineWave,
    SquareWave,
    attach_dio,
)
from repro.rtos.fifo import LinuxWakeupModel, RTFifo
from repro.rtos.errors import (
    DuplicateNameError,
    InvalidTaskNameError,
    IPCError,
    MailboxEmptyError,
    MailboxFullError,
    RTOSError,
    SchedulerError,
    ShmTypeError,
    TaskStateError,
    TimerNotStartedError,
    UnknownObjectError,
)
from repro.rtos.kernel import (
    TIMER_ONESHOT,
    TIMER_PERIODIC,
    KernelConfig,
    RTKernel,
)
from repro.rtos.latency import LatencyModel, LatencyProfile, NullLatencyModel
from repro.rtos.load import (
    CPUHogLoad,
    ForkStormLoad,
    IOStressLoad,
    JVMGarbageCollectorLoad,
    LoadGenerator,
    apply_stress,
    remove_loads,
    stress_suite,
)
from repro.rtos.lxrt import LXRT, PIT_FREQUENCY_HZ
from repro.rtos.mailbox import Mailbox
from repro.rtos.names import (
    MAX_NAME_LENGTH,
    derive_port_name,
    nam2num,
    num2nam,
    validate_name,
)
from repro.rtos.requests import (
    Compute,
    Receive,
    Send,
    SemSignal,
    SemWait,
    Sleep,
    SuspendSelf,
    WaitPeriod,
)
from repro.rtos.scheduler import EDFScheduler, PriorityScheduler, Scheduler
from repro.rtos.sem import ResourceSemaphore, Semaphore
from repro.rtos.shm import SharedMemory, element_size_bytes
from repro.rtos.task import RTTask, TaskState, TaskStats, TaskType
from repro.rtos.watchdog import Watchdog

__all__ = [
    "attach_dio",
    "Compute",
    "ConstantSignal",
    "DigitalIOModule",
    "CPUHogLoad",
    "DuplicateNameError",
    "EDFScheduler",
    "ForkStormLoad",
    "InvalidTaskNameError",
    "IOStressLoad",
    "IPCError",
    "JVMGarbageCollectorLoad",
    "KernelConfig",
    "LatencyModel",
    "LatencyProfile",
    "LinuxWakeupModel",
    "LoadGenerator",
    "LXRT",
    "Mailbox",
    "MailboxEmptyError",
    "MailboxFullError",
    "MAX_NAME_LENGTH",
    "NullLatencyModel",
    "PIT_FREQUENCY_HZ",
    "PriorityScheduler",
    "Receive",
    "ResourceSemaphore",
    "RTFifo",
    "RTKernel",
    "RTOSError",
    "RTTask",
    "RandomWalk",
    "Scheduler",
    "SignalSource",
    "SineWave",
    "SquareWave",
    "SchedulerError",
    "Semaphore",
    "SemSignal",
    "SemWait",
    "Send",
    "SharedMemory",
    "ShmTypeError",
    "Sleep",
    "SuspendSelf",
    "TaskState",
    "TaskStateError",
    "TaskStats",
    "TaskType",
    "TimerNotStartedError",
    "TIMER_ONESHOT",
    "TIMER_PERIODIC",
    "UnknownObjectError",
    "WaitPeriod",
    "Watchdog",
    "apply_stress",
    "derive_port_name",
    "element_size_bytes",
    "nam2num",
    "num2nam",
    "remove_loads",
    "stress_suite",
    "validate_name",
]
