"""Counting semaphores (RTAI ``rt_sem`` analogue).

Wakeups are **priority ordered** (highest-priority waiter first, FIFO
within a priority), matching RTAI's resource-queue semantics.  Blocking
is orchestrated by the kernel, as with mailboxes.
"""

from repro.rtos import names


class Semaphore:
    """A counting semaphore identified by a 6-character name."""

    def __init__(self, kernel, name, initial=1):
        if initial < 0:
            raise ValueError("initial count must be >= 0, got %r"
                             % (initial,))
        self._kernel = kernel
        self.name = names.validate_name(name)
        self.count = int(initial)
        self._waiters = []  # kept sorted by (priority, arrival seq)
        self._arrival = 0
        self.wait_count = 0
        self.signal_count = 0

    @property
    def waiter_count(self):
        """Number of tasks currently blocked on the semaphore."""
        return len(self._waiters)

    def _task_wait(self, task):
        """Kernel entry for SemWait.  Returns ``(completed, result)``."""
        self.wait_count += 1
        if self.count > 0:
            self.count -= 1
            return True, True
        self._arrival += 1
        self._waiters.append((task.priority, self._arrival, task))
        self._waiters.sort(key=lambda entry: (entry[0], entry[1]))
        return False, None

    def signal(self):
        """Signal (V); wake the best waiter or bump the count.

        Callable both from task context (via the SemSignal request) and
        from external, non-RT code.
        """
        self.signal_count += 1
        while self._waiters:
            _, _, task = self._waiters.pop(0)
            if task._blocked_on is not self:
                continue  # stale (timed out / deleted)
            self._kernel._wake_task(task, True)
            return
        self.count += 1

    def _forget_waiter(self, task):
        """Drop a parked task (timeout / deletion); stale-safe."""
        self._waiters = [entry for entry in self._waiters
                         if entry[2] is not task]

    def __repr__(self):
        return "Semaphore(%s, count=%d, waiters=%d)" % (
            self.name, self.count, len(self._waiters))


class ResourceSemaphore(Semaphore):
    """A binary resource semaphore with **priority inheritance**
    (RTAI's RES_SEM).

    While a task owns the resource and a higher-priority task blocks on
    it, the owner runs at the blocker's priority, bounding the classic
    priority-inversion window (a medium-priority task can no longer
    starve the owner and thereby the high-priority blocker).  The
    owner's base priority is restored on release.

    Single-resource inheritance only (no transitive chains across
    nested resources) -- sufficient for the port-based components this
    substrate hosts, and documented as such.
    """

    def __init__(self, kernel, name):
        super().__init__(kernel, name, initial=1)
        #: The task currently holding the resource (None when free).
        self.owner = None
        self._owner_base_priority = None
        #: Number of times inheritance boosted an owner.
        self.boost_count = 0

    def _task_wait(self, task):
        self.wait_count += 1
        if self.count > 0:
            self.count -= 1
            self._take_ownership(task)
            return True, True
        # Contended: inherit the blocker's (higher) priority.
        if self.owner is not None \
                and task.priority < self.owner.priority:
            self.boost_count += 1
            self._kernel.set_task_priority(self.owner, task.priority)
        self._arrival += 1
        self._waiters.append((task.priority, self._arrival, task))
        self._waiters.sort(key=lambda entry: (entry[0], entry[1]))
        return False, None

    def signal(self):
        """Release the resource: restore the owner's base priority and
        hand off to the best waiter."""
        self.signal_count += 1
        self._restore_owner_priority()
        self.owner = None
        while self._waiters:
            _, _, task = self._waiters.pop(0)
            if task._blocked_on is not self:
                continue
            self._take_ownership(task)
            self._kernel._wake_task(task, True)
            return
        self.count += 1

    def _take_ownership(self, task):
        self.owner = task
        self._owner_base_priority = task.priority

    def _restore_owner_priority(self):
        if (self.owner is not None
                and self._owner_base_priority is not None
                and self.owner.priority != self._owner_base_priority):
            self._kernel.set_task_priority(self.owner,
                                           self._owner_base_priority)
        self._owner_base_priority = None

    def __repr__(self):
        return "ResourceSemaphore(%s, owner=%s, waiters=%d)" % (
            self.name, self.owner.name if self.owner else None,
            len(self._waiters))
