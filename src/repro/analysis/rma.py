"""Fixed-priority response-time analysis (exact, for constrained
deadlines D <= T).

``R_i = C_i + sum_{j in hp(i)} ceil(R_i / T_j) C_j`` iterated to a fixed
point (Joseph & Pandya / Audsley).
"""


def rate_monotonic_priorities(specs):
    """Return new priority numbers assigned rate-monotonically.

    Shorter period -> smaller (higher) priority number, ties broken by
    name for determinism.  Returns ``{name: priority}``.
    """
    ordered = sorted(specs, key=lambda s: (s.period_ns, s.name))
    return {spec.name: index for index, spec in enumerate(ordered)}


def response_time(spec, higher_priority, blocking_ns=0, limit=None):
    """Worst-case response time of ``spec`` given the hp set.

    ``blocking_ns`` is the task's worst-case blocking term B_i: the
    longest critical section of any lower-priority task sharing a
    priority-inheritance resource with it (one term suffices under PI
    with non-nested resources).

    Returns ``None`` when the iteration exceeds ``limit`` (defaults to
    the spec's deadline: past that the task is unschedulable anyway).
    """
    if limit is None:
        limit = spec.deadline_ns
    base = spec.wcet_ns + blocking_ns
    response = base
    while True:
        interference = 0
        for hp in higher_priority:
            jobs = -(-response // hp.period_ns)  # ceil
            interference += jobs * hp.wcet_ns
        next_response = base + interference
        if next_response > limit:
            return None
        if next_response == response:
            return response
        response = next_response


def rta_schedulable(specs, blocking=None):
    """Exact fixed-priority schedulability of the whole set.

    Priorities are taken from the specs (smaller number = higher).
    Equal-priority tasks are treated as mutually interfering (each sees
    the other in its hp set), which is conservative and matches the
    round-robin-within-priority behaviour of the simulated kernel.
    ``blocking`` optionally maps task names to worst-case blocking
    terms (see :func:`response_time`).

    Returns ``(ok, {name: response_time_or_None})``.
    """
    specs = list(specs)
    blocking = blocking or {}
    results = {}
    ok = True
    for spec in specs:
        interfering = [other for other in specs
                       if other is not spec
                       and other.priority <= spec.priority]
        response = response_time(spec, interfering,
                                 blocking_ns=blocking.get(spec.name, 0))
        results[spec.name] = response
        if response is None or response > spec.deadline_ns:
            ok = False
    return ok, results
