"""Schedulability analysis.

Admission policies in :mod:`repro.core.policies` delegate here.  The
central abstraction is :class:`TaskSpec`, a pure description of one
periodic task (period, WCET, deadline, priority) derived from a DRCom
real-time contract.
"""

from repro.analysis.edf import (
    edf_processor_demand_test,
    edf_utilization_test,
)
from repro.analysis.hyperperiod import hyperperiod, lcm_all
from repro.analysis.rma import (
    response_time,
    rta_schedulable,
    rate_monotonic_priorities,
)
from repro.analysis.taskspec import TaskSpec
from repro.analysis.utilization import (
    hyperbolic_bound_test,
    liu_layland_bound,
    liu_layland_test,
    total_utilization,
)

__all__ = [
    "TaskSpec",
    "edf_processor_demand_test",
    "edf_utilization_test",
    "hyperbolic_bound_test",
    "hyperperiod",
    "lcm_all",
    "liu_layland_bound",
    "liu_layland_test",
    "rate_monotonic_priorities",
    "response_time",
    "rta_schedulable",
    "total_utilization",
]
