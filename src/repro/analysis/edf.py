"""EDF schedulability tests."""

from repro.analysis.hyperperiod import hyperperiod
from repro.analysis.utilization import total_utilization


def edf_utilization_test(specs):
    """Exact EDF test for implicit deadlines: U <= 1."""
    return total_utilization(specs) <= 1.0 + 1e-12


def _demand(specs, t):
    """Processor demand h(t) = sum max(0, floor((t-D)/T)+1) * C."""
    demand = 0
    for spec in specs:
        jobs = (t - spec.deadline_ns) // spec.period_ns + 1
        if jobs > 0:
            demand += jobs * spec.wcet_ns
    return demand


def edf_processor_demand_test(specs, max_points=200_000):
    """Baruah's processor-demand criterion for constrained deadlines.

    Checks ``h(t) <= t`` at every absolute deadline up to the testing
    bound (min of the hyperperiod and the busy-period-style La bound).
    ``max_points`` caps the number of checked deadlines: analyses beyond
    it raise rather than silently pass.

    Returns ``(ok, first_violation_t_or_None)``.
    """
    specs = list(specs)
    if not specs:
        return True, None
    utilization = total_utilization(specs)
    if utilization > 1.0 + 1e-12:
        return False, 0
    # Testing bound: hyperperiod is always sufficient; when U < 1 the
    # La bound can be much smaller.
    bound = hyperperiod(spec.period_ns for spec in specs)
    if utilization < 1.0:
        la = sum(
            max(0, spec.period_ns - spec.deadline_ns) * spec.utilization
            for spec in specs
        ) / (1.0 - utilization)
        bound = min(bound, int(la) + 1)
        bound = max(bound, max(spec.deadline_ns for spec in specs))
    checkpoints = set()
    for spec in specs:
        deadline = spec.deadline_ns
        while deadline <= bound:
            checkpoints.add(deadline)
            if len(checkpoints) > max_points:
                raise ValueError(
                    "EDF demand test needs more than %d checkpoints; "
                    "periods too co-prime for exact analysis" % max_points)
            deadline += spec.period_ns
    for t in sorted(checkpoints):
        if _demand(specs, t) > t:
            return False, t
    return True, None
