"""Hyperperiod utilities."""

import math
from functools import reduce


def lcm_all(values):
    """Least common multiple of an iterable of positive ints."""
    values = list(values)
    if not values:
        return 1
    for value in values:
        if value <= 0:
            raise ValueError("lcm needs positive values, got %r" % (value,))
    return reduce(lambda a, b: a * b // math.gcd(a, b), values, 1)


def hyperperiod(periods):
    """The task set's hyperperiod (lcm of periods)."""
    return lcm_all(periods)
