"""The task description analysis functions operate on."""


class TaskSpec:
    """One periodic task for schedulability analysis.

    All times in nanoseconds; ``priority`` follows the RTAI convention
    (smaller = higher).  ``deadline_ns`` defaults to the period
    (implicit deadlines).
    """

    __slots__ = ("name", "period_ns", "wcet_ns", "deadline_ns", "priority")

    def __init__(self, name, period_ns, wcet_ns, deadline_ns=None,
                 priority=0):
        if period_ns <= 0:
            raise ValueError("period must be positive: %r" % (period_ns,))
        if wcet_ns < 0:
            raise ValueError("wcet must be >= 0: %r" % (wcet_ns,))
        deadline = deadline_ns if deadline_ns is not None else period_ns
        if deadline <= 0:
            raise ValueError("deadline must be positive: %r" % (deadline,))
        self.name = name
        self.period_ns = int(period_ns)
        self.wcet_ns = int(wcet_ns)
        self.deadline_ns = int(deadline)
        self.priority = priority

    @property
    def utilization(self):
        """WCET / period."""
        return self.wcet_ns / self.period_ns

    @classmethod
    def from_contract(cls, contract):
        """Build a spec from a DRCom real-time contract.

        The descriptor declares CPU usage as a fraction (``cpuusage``)
        and a frequency; WCET is derived as ``cpuusage * period``,
        rounded up by the contract (a demand bound must not truncate).
        """
        period = contract.period_ns
        wcet = contract.wcet_ns
        return cls(contract.name, period, wcet,
                   deadline_ns=contract.deadline_ns,
                   priority=contract.priority)

    def __eq__(self, other):
        if not isinstance(other, TaskSpec):
            return NotImplemented
        return (self.name, self.period_ns, self.wcet_ns, self.deadline_ns,
                self.priority) == (other.name, other.period_ns,
                                   other.wcet_ns, other.deadline_ns,
                                   other.priority)

    def __hash__(self):
        return hash((self.name, self.period_ns, self.wcet_ns,
                     self.deadline_ns, self.priority))

    def __repr__(self):
        return "TaskSpec(%s, T=%d, C=%d, D=%d, P=%s)" % (
            self.name, self.period_ns, self.wcet_ns, self.deadline_ns,
            self.priority)
