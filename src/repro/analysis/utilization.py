"""Utilization-based schedulability tests."""


def total_utilization(specs):
    """Sum of WCET/period over the task set."""
    return sum(spec.utilization for spec in specs)


def liu_layland_bound(n):
    """The Liu & Layland RM bound ``n (2^(1/n) - 1)``.

    Approaches ln 2 (~0.693) as n grows; 1.0 for n=1.
    """
    if n <= 0:
        return 0.0
    return n * (2.0 ** (1.0 / n) - 1.0)


def liu_layland_test(specs):
    """Sufficient RM test: U <= n(2^(1/n)-1).

    Conservative: returning False does *not* mean unschedulable (use
    :func:`repro.analysis.rma.rta_schedulable` for the exact test).
    """
    specs = list(specs)
    return total_utilization(specs) <= liu_layland_bound(len(specs)) + 1e-12


def hyperbolic_bound_test(specs):
    """Bini-Buttazzo hyperbolic bound: prod(U_i + 1) <= 2.

    Tighter than Liu-Layland, still only sufficient.
    """
    product = 1.0
    for spec in specs:
        product *= spec.utilization + 1.0
    return product <= 2.0 + 1e-12
