"""``python -m repro adapt``: the C5 load-spike experiment, runnable.

Runs the rule-driven arm of the load-spike scenario
(:mod:`repro.adapt.scenario`) -- and, with ``--compare``, the static
arm on the identical seed -- then prints windowed deadline-miss rates
and the ``adapt.*`` counters behind the EXPERIMENTS.md C5 claim.

Examples::

    python -m repro adapt
    python -m repro adapt --rules examples/settopbox.rules.json
    python -m repro adapt --compare --seconds 2 --seed 11
    python -m repro adapt --static --json spike.json
"""

import argparse
import json
import sys

from repro.adapt.rules import RuleSchemaError, load_rule_file
from repro.adapt.scenario import (
    default_rules,
    run_comparison,
    run_load_spike,
)
from repro.sim.engine import MSEC


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="python -m repro adapt",
        description="Run the C5 load-spike scenario: declarative "
                    "rules shed load while a static deployment "
                    "degrades.")
    parser.add_argument("--rules", metavar="RULES.json", default=None,
                        help="rule file to drive the adaptive arm "
                             "(default: the stock miss-rate guard "
                             "from workloads.generate_rule_set)")
    parser.add_argument("--seconds", type=float, default=2.0,
                        metavar="S",
                        help="simulated seconds (default 2)")
    parser.add_argument("--epoch-ms", type=int, default=20,
                        metavar="MS",
                        help="adaptation epoch (default 20 ms)")
    parser.add_argument("--seed", type=int, default=7,
                        help="master seed (default 7)")
    parser.add_argument("--static", action="store_true",
                        help="run only the static (rule-free) arm")
    parser.add_argument("--compare", action="store_true",
                        help="run both arms and print them side by "
                             "side")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the report(s) as JSON")
    return parser.parse_args(argv)


def _print_arm(report):
    print("== %s arm (seed %d, %.2f s) =="
          % (report["arm"], report["seed"], report["seconds"]))
    for window in ("pre", "post"):
        stats = report[window]
        print("  %-4s spike: miss rate %6.2f%%  (%d misses / %d "
              "releases)" % (window, 100.0 * stats["miss_rate"],
                             stats["deadline_misses"],
                             stats["releases"]))
    print("  protected %s misses: %s"
          % (report["protected"]["component"],
             report["protected"]["deadline_misses"]))
    print("  active components: %s"
          % (", ".join(report["active"]) or "-"))
    adapt = report.get("adapt")
    if adapt:
        counters = adapt["counters"]
        print("  adapt: %d epochs, %d fired, %d suppressed, %d "
              "actions (%d errors)"
              % (counters["epochs_total"],
                 counters["rules_fired_total"],
                 counters["rules_suppressed_total"],
                 counters["actions_executed_total"],
                 counters["action_errors_total"]))
        for entry in adapt["history"]:
            print("    %8.3f s  %-18s %s"
                  % (entry["at_ns"] / 1e9, entry["rule"],
                     entry["outcome"]))


def main(argv=None):
    """Run the scenario; returns a process exit code."""
    args = _parse_args(sys.argv[2:] if argv is None else argv)
    epoch_ns = args.epoch_ms * MSEC
    try:
        rules = (load_rule_file(args.rules)
                 if args.rules else default_rules(epoch_ns))
    except (RuleSchemaError, OSError) as error:
        print("adapt: %s" % error, file=sys.stderr)
        return 2
    kwargs = {"seed": args.seed, "seconds": args.seconds,
              "epoch_ns": epoch_ns}
    if args.compare:
        reports = run_comparison(rules=rules, **kwargs)
        _print_arm(reports["static"])
        _print_arm(reports["rules"])
        degradation = (reports["static"]["post"]["miss_rate"]
                       / max(reports["rules"]["post"]["miss_rate"],
                             1e-9))
        print("static post-spike miss rate is %.1fx the rule-driven "
              "one" % degradation)
        document = reports
    elif args.static:
        document = run_load_spike(rules=None, **kwargs)
        _print_arm(document)
    else:
        document = run_load_spike(rules=rules, **kwargs)
        _print_arm(document)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
        print("wrote report to %s" % args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
