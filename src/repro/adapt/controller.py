"""The adaptation controller: the CoBAUI loop, closed.

One :class:`AdaptationController` owns the epoch cadence.  Every
``epoch_ns`` of *simulated* time it

1. merges the context from every provider (built-ins derived from the
   platform, explicitly added ones, and any service registered in OSGi
   under :data:`~repro.adapt.rules.CONTEXT_PROVIDER_INTERFACE`),
2. collects the rule set the same way (local providers plus OSGi
   :data:`~repro.adapt.rules.RULE_PROVIDER_INTERFACE` services -- the
   per-epoch registry query is what makes hot add/remove work),
3. lets the :class:`~repro.adapt.evaluator.RuleEvaluator` decide, and
4. executes the surviving firings.

Execution is deliberately unprivileged: every action goes through the
same public surface an operator script would use -- the §2.4 management
service located by LDAP filter (or :meth:`Cluster.manage` in a
federation), the DRCR's lifecycle and reconfiguration methods, the
graceful-degradation resolver, and the cluster coordinator's
``migrate``/placement path.  The controller holds no back door into
any subsystem, so a rule can never do something the management API
forbids (`tests/integration/test_adaptation_scenario.py` enforces the
no-private-access property over this package).

An action that raises is contained: the error is counted
(``adapt.action_errors_total``), logged in :attr:`history`, and the
epoch continues -- a broken rule degrades to a no-op, it does not take
the control loop down with it.
"""

import time

from repro.adapt.context import (
    ClusterContextProvider,
    KernelContextProvider,
    TelemetryContextProvider,
)
from repro.adapt.evaluator import RuleEvaluator
from repro.adapt.rules import (
    CONTEXT_PROVIDER_INTERFACE,
    RULE_PROVIDER_INTERFACE,
    StaticRuleProvider,
)
from repro.core.management import MANAGEMENT_SERVICE_INTERFACE
from repro.sim.engine import MSEC

#: Default epoch: 50 ms of simulated time.
DEFAULT_EPOCH_NS = 50 * MSEC

#: Wall-clock buckets for ``adapt.action_latency_ns`` (actions run
#: Python code, not simulated code, so this is host time).
ACTION_LATENCY_BOUNDS_NS = (
    1_000, 5_000, 10_000, 50_000, 100_000, 500_000,
    1_000_000, 5_000_000, 10_000_000, 100_000_000,
)

#: Bounded length of :attr:`AdaptationController.history`.
HISTORY_LIMIT = 256


class ActionError(RuntimeError):
    """An action could not be executed (unknown component, no cluster,
    no degradation service, ...)."""


class AdaptationController:
    """Close the telemetry -> rules -> management loop (see module
    docstring).

    ``platform`` may be anything platform-shaped (``sim`` /
    ``framework`` / ``drcr`` / ``kernel`` / ``telemetry`` attributes;
    :class:`~repro.platform.Platform` and
    :class:`~repro.cluster.node.ClusterNode` both qualify); pass
    ``cluster=`` instead for fleet-scope adaptation.  ``degradation``
    is an optional
    :class:`~repro.faults.recovery.GracefulDegradationService` the
    ``set_degradation_cap`` action adjusts.
    """

    def __init__(self, platform=None, *, cluster=None, sim=None,
                 framework=None, drcr=None, kernel=None,
                 telemetry=None, epoch_ns=DEFAULT_EPOCH_NS,
                 max_actions_per_epoch=8, degradation=None,
                 providers=(), rules=None):
        if platform is not None:
            sim = sim or platform.sim
            framework = framework or platform.framework
            drcr = drcr or platform.drcr
            kernel = kernel or getattr(platform, "kernel", None)
        if cluster is not None:
            sim = sim or cluster.sim
        if sim is None:
            raise ValueError("AdaptationController needs a platform, "
                             "a cluster, or an explicit sim")
        if epoch_ns <= 0:
            raise ValueError("epoch_ns must be positive")
        self.sim = sim
        self.framework = framework
        self.drcr = drcr
        self.cluster = cluster
        self.degradation = degradation
        self.epoch_ns = epoch_ns
        self.evaluator = RuleEvaluator(
            max_actions_per_epoch=max_actions_per_epoch)
        telemetry = telemetry if telemetry is not None \
            else sim.telemetry
        self._metrics = metrics = telemetry.registry("adapt")
        self._m_epochs = metrics.counter("epochs_total")
        self._m_evaluated = metrics.counter("rules_evaluated_total")
        self._m_fired = metrics.counter("rules_fired_total")
        self._m_suppressed = metrics.counter("rules_suppressed_total")
        self._m_suppressed_by = {
            reason: metrics.counter(
                "rules_suppressed_%s_total" % reason)
            for reason in ("hysteresis", "cooldown", "exhausted",
                           "conflict")
        }
        self._m_actions = metrics.counter("actions_executed_total")
        self._m_action_errors = metrics.counter("action_errors_total")
        self._m_action_latency = metrics.histogram(
            "action_latency_ns", bounds=ACTION_LATENCY_BOUNDS_NS)
        self._m_rules_loaded = metrics.gauge("rules_loaded")
        self._m_context_params = metrics.gauge("context_params")
        self._context_providers = []
        if telemetry is not None and cluster is None:
            self._context_providers.append(
                TelemetryContextProvider(telemetry))
        if kernel is not None:
            self._context_providers.append(
                KernelContextProvider(kernel))
        if cluster is not None:
            self._context_providers.append(
                TelemetryContextProvider(cluster.sim.telemetry))
            self._context_providers.append(
                ClusterContextProvider(cluster))
        self._context_providers.extend(providers)
        self._rule_providers = []
        if rules:
            self.add_rules(rules)
        #: Recent executed/failed actions, newest last (bounded).
        self.history = []
        self._epoch_event = None

    # ------------------------------------------------------------------
    # providers
    # ------------------------------------------------------------------
    def add_context_provider(self, provider):
        """Add a local context provider (sampled every epoch)."""
        self._context_providers.append(provider)

    def add_rule_provider(self, provider):
        """Add a local rule provider (queried every epoch)."""
        self._rule_providers.append(provider)

    def add_rules(self, rules, name="inline"):
        """Wrap already-parsed rules in a local provider."""
        self.add_rule_provider(StaticRuleProvider(rules, name=name))

    def _frameworks(self):
        """Every OSGi framework to query for registered providers."""
        if self.cluster is not None:
            return [node.framework
                    for node in self.cluster.alive_nodes()]
        return [self.framework] if self.framework is not None else []

    def _registered_services(self, interface):
        services = []
        for framework in self._frameworks():
            registry = framework.registry
            for reference in registry.get_references(interface):
                service = registry.get_service(reference)
                if service is not None:
                    services.append(service)
        return services

    def current_rules(self):
        """This epoch's rule set: local providers first, then every
        OSGi-registered provider; first occurrence of a name wins."""
        rules = []
        seen = set()
        providers = list(self._rule_providers)
        providers.extend(
            self._registered_services(RULE_PROVIDER_INTERFACE))
        for provider in providers:
            for rule in provider.rules():
                if rule.name not in seen:
                    seen.add(rule.name)
                    rules.append(rule)
        return rules

    def collect_context(self):
        """This epoch's merged context (later providers win clashes)."""
        now = self.sim.now
        context = {}
        providers = list(self._context_providers)
        providers.extend(
            self._registered_services(CONTEXT_PROVIDER_INTERFACE))
        for provider in providers:
            context.update(provider.collect(now))
        return context

    # ------------------------------------------------------------------
    # the epoch
    # ------------------------------------------------------------------
    def start(self):
        """Begin evaluating every ``epoch_ns`` of simulated time."""
        if self._epoch_event is None:
            self._arm()
        return self

    def stop(self):
        """Stop evaluating (pending epoch cancelled)."""
        if self._epoch_event is not None:
            self._epoch_event.cancel_if_pending()
            self._epoch_event = None

    def _arm(self):
        self._epoch_event = self.sim.schedule(
            self.epoch_ns, self._on_epoch, label="adapt-epoch")

    def _on_epoch(self):
        self._epoch_event = None
        self.step()
        if self._epoch_event is None:  # an action may have stopped us
            self._arm()

    def step(self):
        """Run one epoch now; returns the executed firings."""
        context = self.collect_context()
        rules = self.current_rules()
        self._m_epochs.inc()
        self._m_evaluated.inc(len(rules))
        self._m_rules_loaded.set(len(rules))
        self._m_context_params.set(len(context))
        firings, suppressed = self.evaluator.evaluate(
            rules, context, self.sim.now)
        for reason, count in suppressed.items():
            if count:
                self._m_suppressed.inc(count)
                self._m_suppressed_by[reason].inc(count)
        for firing in firings:
            self._m_fired.inc()
            for action in firing.rule.actions:
                self._run_action(firing.rule, action)
        return firings

    def _run_action(self, rule, action):
        started = time.perf_counter_ns()
        try:
            outcome = self.execute(action)
        except Exception as error:  # contained: see module docstring
            self._m_action_errors.inc()
            self._log(rule, action, "error: %s" % error)
        else:
            self._m_actions.inc()
            self._log(rule, action, outcome)
        finally:
            self._m_action_latency.observe(
                time.perf_counter_ns() - started)

    def _log(self, rule, action, outcome):
        self.history.append({
            "at_ns": self.sim.now,
            "rule": rule.name,
            "action": dict(action),
            "outcome": outcome,
        })
        if len(self.history) > HISTORY_LIMIT:
            del self.history[0]

    # ------------------------------------------------------------------
    # action execution (public APIs only)
    # ------------------------------------------------------------------
    def _require_drcr(self):
        if self.drcr is None:
            raise ActionError("no DRCR attached to this controller")
        return self.drcr

    def _require_cluster(self):
        if self.cluster is None:
            raise ActionError("action needs a cluster, controller has "
                              "none")
        return self.cluster

    def _manage(self, component, op, *args):
        """Route one §2.4 operation through the management service."""
        if self.cluster is not None:
            return self.cluster.manage(component, op, *args)
        if self.framework is None:
            raise ActionError("no framework to locate management "
                              "services in")
        registry = self.framework.registry
        reference = registry.get_reference(
            MANAGEMENT_SERVICE_INTERFACE,
            "(drcom.name=%s)" % component)
        if reference is None:
            raise ActionError("no management service for %r"
                              % component)
        return getattr(registry.get_service(reference), op)(*args)

    def _component_drcr(self, component):
        """The DRCR owning ``component`` (its home node's in a
        federation)."""
        if self.cluster is not None:
            home = self.cluster.deployments.get(component)
            if home is None:
                raise ActionError("component %r is not deployed "
                                  "anywhere" % component)
            return self.cluster.nodes[home].drcr
        return self._require_drcr()

    def execute(self, action):
        """Execute one validated action; returns an outcome string."""
        kind = action["action"]
        if kind in ("suspend", "resume"):
            self._manage(action["component"], kind)
            return "%s %s" % (kind, action["component"])
        if kind == "set_property":
            self._manage(action["component"], "set_property",
                         action["property"], action["value"])
            return "set %s.%s=%r" % (action["component"],
                                     action["property"],
                                     action["value"])
        if kind == "enable":
            self._component_drcr(
                action["component"]).enable_component(
                    action["component"])
            return "enable %s" % action["component"]
        if kind == "disable":
            self._component_drcr(
                action["component"]).disable_component(
                    action["component"])
            return "disable %s" % action["component"]
        if kind == "shed_lowest_priority":
            from repro.faults.recovery import shed_lowest_priority
            drcr = self._require_drcr()
            shed = []
            for _ in range(action.get("count", 1)):
                victim = shed_lowest_priority(drcr,
                                              cpu=action.get("cpu"))
                if victim is None:
                    break
                shed.append(victim)
            return "shed %s" % (", ".join(shed) or "nothing")
        if kind == "set_degradation_cap":
            if self.degradation is None:
                raise ActionError("no GracefulDegradationService "
                                  "attached to this controller")
            self.degradation.cap = float(action["cap"])
            self._require_drcr().reconfigure()
            return "degradation cap -> %.2f" % action["cap"]
        if kind == "reconfigure":
            self._require_drcr().reconfigure(
                full=action.get("full", True))
            return "reconfigured"
        if kind == "migrate":
            migration = self._require_cluster().migrate(
                action["component"], dst=action.get("dst"))
            return "migrate %s (%s)" % (action["component"], migration)
        if kind == "rebalance":
            return self._rebalance(action)
        raise ActionError("unknown action kind %r" % kind)

    def _rebalance(self, action):
        cluster = self._require_cluster()
        node_name = action.get("node")
        if node_name is None:
            alive = cluster.alive_nodes()
            if not alive:
                raise ActionError("no alive nodes to rebalance")
            node = max(alive,
                       key=lambda n: (len(n.drcr.registry.active()),
                                      n.name))
            node_name = node.name
        elif node_name not in cluster.nodes:
            raise ActionError("unknown node %r" % node_name)
        node = cluster.nodes[node_name]
        moved = []
        for _ in range(action.get("count", 1)):
            candidates = [component for component
                          in node.drcr.registry.active()
                          if component.name not in moved]
            if not candidates:
                break
            victim = max(candidates,
                         key=lambda c: (c.contract.priority, c.name))
            cluster.migrate(victim.name)
            moved.append(victim.name)
        return "rebalance %s: moved %s" % (node_name,
                                           ", ".join(moved) or
                                           "nothing")

    def report(self):
        """Plain-data summary: counters plus recent action history."""
        counters = {
            name: instrument.value
            for name, instrument in (
                ("epochs_total", self._m_epochs),
                ("rules_evaluated_total", self._m_evaluated),
                ("rules_fired_total", self._m_fired),
                ("rules_suppressed_total", self._m_suppressed),
                ("actions_executed_total", self._m_actions),
                ("action_errors_total", self._m_action_errors),
            )
        }
        return {
            "epoch_ns": self.epoch_ns,
            "counters": counters,
            "history": list(self.history),
        }

    def __repr__(self):
        return "AdaptationController(epoch=%dns)" % self.epoch_ns
