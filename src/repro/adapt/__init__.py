"""repro.adapt -- the declarative adaptation-rule subsystem.

The paper's §2.4/§4 adaptation managers observe the platform through
the management interface and steer deployments at run time; this
package is that loop made declarative, following the CoBAUI
decomposition (SNIPPETS.md):

* **Context Providers** (:mod:`repro.adapt.context`) sample live
  telemetry instruments, kernel task statistics and cluster
  membership into named context parameters, windowed per epoch;
* **Rule Providers** (:mod:`repro.adapt.rules`) contribute
  JSON-declared, schema-validated rules -- statically, or hot
  added/removed at run time through the OSGi service registry;
* the **Rule Evaluator** (:mod:`repro.adapt.evaluator`) decides each
  epoch, damped by arming/release hysteresis, per-rule cooldown and
  priority-ordered conflict resolution;
* the **Adaptation Controller** (:mod:`repro.adapt.controller`)
  executes the surviving actions strictly through public APIs: §2.4
  management services, the DRCR's lifecycle/reconfiguration methods,
  graceful degradation, and the cluster coordinator.

Everything is observable as ``adapt.*`` telemetry
(docs/OBSERVABILITY.md), lintable as DRT5xx (docs/STATIC_ANALYSIS.md),
and documented in docs/ADAPTATION.md; ``python -m repro adapt`` runs
the C5 load-spike experiment from EXPERIMENTS.md.
"""

from repro.adapt.actions import ACTIONS, target_key, validate_action
from repro.adapt.context import (
    CONTEXT_PARAMS,
    ClusterContextProvider,
    ContextProvider,
    KernelContextProvider,
    StaticContextProvider,
    TelemetryContextProvider,
    scoped,
)
from repro.adapt.controller import ActionError, AdaptationController
from repro.adapt.evaluator import Firing, RuleEvaluator
from repro.adapt.rules import (
    CONTEXT_PROVIDER_INTERFACE,
    RULE_PROVIDER_INTERFACE,
    RULE_SCHEMA_VERSION,
    AdaptationRule,
    JsonRuleProvider,
    Predicate,
    RuleProvider,
    RuleSchemaError,
    StaticRuleProvider,
    load_rule_file,
    parse_rule_document,
)

__all__ = [
    "ACTIONS",
    "CONTEXT_PARAMS",
    "CONTEXT_PROVIDER_INTERFACE",
    "RULE_PROVIDER_INTERFACE",
    "RULE_SCHEMA_VERSION",
    "ActionError",
    "AdaptationController",
    "AdaptationRule",
    "ClusterContextProvider",
    "ContextProvider",
    "Firing",
    "JsonRuleProvider",
    "KernelContextProvider",
    "Predicate",
    "RuleEvaluator",
    "RuleProvider",
    "RuleSchemaError",
    "StaticContextProvider",
    "StaticRuleProvider",
    "TelemetryContextProvider",
    "load_rule_file",
    "parse_rule_document",
    "scoped",
    "target_key",
    "validate_action",
]
