"""The rule evaluator: epoch-by-epoch decisions, thrash-proofed.

Each epoch the controller hands the evaluator the merged context and
the current rule set; the evaluator answers with the firings that
survived four layers of damping:

* **arming hysteresis** -- a predicate with ``for_epochs: N`` must hold
  for N *consecutive* epochs before the rule arms, so one noisy sample
  cannot trigger an action;
* **release hysteresis** -- a rule with a ``clear`` predicate latches
  after firing and stays silent until the clear condition holds, the
  classic two-threshold band (fire above X, re-arm below Y);
* **cooldown** -- a fired rule is silent for ``cooldown_ns`` of
  simulated time, bounding the action rate per rule;
* **conflict resolution** -- surviving firings are ordered by
  ``(priority, name)`` (lower number = more important, as everywhere
  in this repository) and walked in order; a firing whose actions
  touch a target some earlier firing already claimed this epoch is
  dropped, as is everything past ``max_actions_per_epoch``.

Every suppression is counted by reason; the controller publishes the
counts as ``adapt.rules_suppressed_*`` so a mis-tuned rule set is
visible in telemetry rather than silently inert (docs/ADAPTATION.md).

Evaluator state is keyed by rule *name*: a provider removed and
re-registered resumes its cooldown clock rather than resetting it,
which is what you want when a rule file is hot-reloaded in place.
"""

from repro.adapt.actions import target_key
from repro.adapt.context import scoped
from repro.adapt.rules import OPS

#: Epochs of context history kept for trend predicates.
HISTORY_EPOCHS = 32


class _RuleState:
    """Per-rule runtime state (streaks, latches, cooldown clock)."""

    __slots__ = ("streak", "latched", "last_fired_ns", "firings")

    def __init__(self):
        self.streak = 0
        self.latched = False
        self.last_fired_ns = None
        self.firings = 0


class Firing:
    """One rule that fired this epoch (actions not yet executed)."""

    __slots__ = ("rule", "at_ns")

    def __init__(self, rule, at_ns):
        self.rule = rule
        self.at_ns = at_ns

    def __repr__(self):
        return "Firing(%s @ %d)" % (self.rule.name, self.at_ns)


class RuleEvaluator:
    """Stateful predicate evaluation with damping (module docstring)."""

    def __init__(self, max_actions_per_epoch=None):
        self.max_actions_per_epoch = max_actions_per_epoch
        self._states = {}
        self._history = []

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def _series(self, key, epochs):
        """The last ``epochs`` observed values of ``key`` (oldest
        first), or ``None`` if any epoch lacks the parameter."""
        if len(self._history) < epochs:
            return None
        window = self._history[-epochs:]
        values = [snapshot.get(key) for snapshot in window]
        if any(value is None for value in values):
            return None
        return values

    def holds(self, predicate, context):
        """Whether ``predicate`` holds against the current context.

        A missing parameter makes a leaf false, never an error: a
        node-scoped parameter disappears when its node dies, and a
        rule about a dead node has nothing left to say.
        """
        kind = predicate.kind
        if kind == "all":
            return all(self.holds(child, context)
                       for child in predicate.children)
        if kind == "any":
            return any(self.holds(child, context)
                       for child in predicate.children)
        key = scoped(predicate.param, predicate.node)
        if kind == "trend":
            values = self._series(key, predicate.epochs)
            if values is None:
                return False
            pairs = zip(values, values[1:])
            if predicate.trend == "rising":
                return all(a < b for a, b in pairs)
            return all(a > b for a, b in pairs)
        value = context.get(key)
        if value is None:
            return False
        return OPS[predicate.op](value, predicate.value)

    # ------------------------------------------------------------------
    # the epoch
    # ------------------------------------------------------------------
    def evaluate(self, rules, context, now_ns):
        """Run one epoch; returns ``(firings, suppressed)``.

        ``firings`` is the conflict-resolved, priority-ordered list of
        :class:`Firing`; ``suppressed`` maps reason (``"hysteresis"``,
        ``"cooldown"``, ``"exhausted"``, ``"conflict"``) to a count.
        """
        self._history.append(context)
        if len(self._history) > HISTORY_EPOCHS:
            del self._history[0]
        suppressed = {"hysteresis": 0, "cooldown": 0,
                      "exhausted": 0, "conflict": 0}
        candidates = []
        for rule in rules:
            state = self._states.get(rule.name)
            if state is None:
                state = self._states[rule.name] = _RuleState()
            if state.latched and (
                    rule.clear is None
                    or self.holds(rule.clear, context)):
                state.latched = False
            if not self.holds(rule.when, context):
                state.streak = 0
                continue
            state.streak += 1
            needed = max(leaf.for_epochs
                         for leaf in rule.when.leaves())
            if state.streak < needed or state.latched:
                suppressed["hysteresis"] += 1
                continue
            if rule.max_firings is not None \
                    and state.firings >= rule.max_firings:
                suppressed["exhausted"] += 1
                continue
            if rule.cooldown_ns and state.last_fired_ns is not None \
                    and now_ns - state.last_fired_ns < rule.cooldown_ns:
                suppressed["cooldown"] += 1
                continue
            candidates.append(rule)
        candidates.sort(key=lambda rule: (rule.priority, rule.name))
        firings = []
        claimed = set()
        budget = self.max_actions_per_epoch
        for rule in candidates:
            keys = {target_key(action) for action in rule.actions}
            if claimed & keys or (
                    budget is not None
                    and len(firings) + 1 > budget):
                suppressed["conflict"] += 1
                continue
            claimed |= keys
            state = self._states[rule.name]
            state.last_fired_ns = now_ns
            state.firings += 1
            state.latched = rule.clear is not None
            firings.append(Firing(rule, now_ns))
        return firings, suppressed
