"""Context providers: live platform state as named parameters.

A *context parameter* is one number with a stable name --
``deadline_miss_rate``, ``dispatch_latency_p99``, ``alive_nodes`` --
sampled once per adaptation epoch.  Rules (:mod:`repro.adapt.rules`)
predicate over these names only; they never touch an instrument, a
kernel or a registry themselves.  That indirection is the Context
Provider half of the CoBAUI split: providers translate *platform*
vocabulary (telemetry instruments, task stats, membership tables) into
*rule* vocabulary, and everything downstream is plain data.

Windowing
---------
Telemetry instruments are cumulative: a counter only ever grows and a
histogram keeps every sample since boot.  A rule like "miss rate above
2%" is about *now*, not about the whole run, so
:class:`TelemetryContextProvider` snapshots instrument state each epoch
and publishes the **delta** since the previous epoch.  Percentiles are
approximated from the delta of the histogram's bucket counts: the
reported ``p99`` is the smallest bucket upper bound covering 99% of the
window's samples (exact summary stats only exist cumulatively --
:class:`~repro.telemetry.metrics.Histogram` carries no per-sample
memory).

Node scoping
------------
In a federation every node shares one simulator and therefore one
telemetry switchboard, so the ``rtos`` registry aggregates the whole
fleet.  :class:`ClusterContextProvider` recovers per-node visibility
from each node's *public* kernel task list (``kernel.tasks`` /
``task.stats``) and publishes node-scoped parameters under
``<param>@<node>`` -- the form a rule's ``"node"`` field resolves to.
"""

import math

from repro.telemetry.metrics import DEFAULT_LATENCY_BOUNDS_NS

#: The largest value a grid percentile can report: samples past the
#: last finite histogram bound clamp to it (see
#: :func:`percentile_from_buckets` and docs/ADAPTATION.md).
LATENCY_GRID_MAX_NS = float(DEFAULT_LATENCY_BOUNDS_NS[-1])

#: Catalog of context parameters the built-in providers can publish.
#: ``range`` is the closed interval of values the parameter can take
#: (``None`` = unbounded on that side); drtlint's DRT504 unreachable-
#: predicate check reads it.  ``node_scoped`` marks parameters that are
#: (also) published per node as ``<param>@<node>``.  ``clamp_max``
#: marks parameters whose reported value saturates at that number even
#: though the underlying quantity is unbounded (histogram-grid
#: percentiles, see :func:`percentile_from_buckets`); drtlint's DRT506
#: unreachable-threshold check reads it.
CONTEXT_PARAMS = {
    "deadline_miss_rate": {
        "description": "deadline misses per release this epoch",
        "range": (0.0, 1.0), "node_scoped": True,
    },
    "deadline_misses": {
        "description": "deadline misses this epoch",
        "range": (0.0, None), "node_scoped": True,
    },
    "releases": {
        "description": "task releases this epoch",
        "range": (0.0, None), "node_scoped": False,
    },
    "overruns": {
        "description": "WCET overruns this epoch",
        "range": (0.0, None), "node_scoped": False,
    },
    "preemptions": {
        "description": "preemptions this epoch",
        "range": (0.0, None), "node_scoped": False,
    },
    "dispatch_latency_p50": {
        "description": "median dispatch latency this epoch (ns, "
                       "bucket upper bound)",
        "range": (None, None), "node_scoped": False,
        "clamp_max": LATENCY_GRID_MAX_NS,
    },
    "dispatch_latency_p95": {
        "description": "95th-percentile dispatch latency this epoch "
                       "(ns, bucket upper bound)",
        "range": (None, None), "node_scoped": False,
        "clamp_max": LATENCY_GRID_MAX_NS,
    },
    "dispatch_latency_p99": {
        "description": "99th-percentile dispatch latency this epoch "
                       "(ns, bucket upper bound)",
        "range": (None, None), "node_scoped": False,
        "clamp_max": LATENCY_GRID_MAX_NS,
    },
    "dispatch_latency_mean": {
        "description": "mean dispatch latency this epoch (ns)",
        "range": (None, None), "node_scoped": False,
    },
    "active_components": {
        "description": "components currently ACTIVE",
        "range": (0.0, None), "node_scoped": True,
    },
    "quarantines": {
        "description": "components quarantined this epoch",
        "range": (0.0, None), "node_scoped": False,
    },
    "admission_rejections": {
        "description": "admissions rejected this epoch",
        "range": (0.0, None), "node_scoped": False,
    },
    "rt_utilization": {
        "description": "fraction of the epoch the RT domain was busy",
        "range": (0.0, None), "node_scoped": True,
    },
    "alive_nodes": {
        "description": "cluster members currently alive",
        "range": (0.0, None), "node_scoped": False,
    },
    "dead_nodes": {
        "description": "cluster members declared dead",
        "range": (0.0, None), "node_scoped": False,
    },
    "migrations": {
        "description": "migrations begun this epoch",
        "range": (0.0, None), "node_scoped": False,
    },
    "failovers": {
        "description": "failovers begun this epoch",
        "range": (0.0, None), "node_scoped": False,
    },
    "stochastic_violations": {
        "description": "stochastic-contract violations this epoch",
        "range": (0.0, None), "node_scoped": True,
    },
    "stochastic_checks": {
        "description": "stochastic-contract checks evaluated this epoch",
        "range": (0.0, None), "node_scoped": False,
    },
}


def scoped(param, node=None):
    """The context key for ``param`` on ``node`` (``None`` = global)."""
    return param if node is None else "%s@%s" % (param, node)


def param_range(param):
    """``(lo, hi)`` documented range (``None`` ends = unbounded), or
    ``(None, None)`` for parameters outside the catalog."""
    entry = CONTEXT_PARAMS.get(param.split("@", 1)[0])
    if entry is None:
        return (None, None)
    return entry["range"]


def param_clamp_max(param):
    """The saturation ceiling of a grid-clamped parameter (the largest
    value it can ever report), or ``None`` for unclamped parameters."""
    entry = CONTEXT_PARAMS.get(param.split("@", 1)[0])
    if entry is None:
        return None
    return entry.get("clamp_max")


class ContextProvider:
    """One source of context parameters.

    Subclasses (or duck-typed peers registered in OSGi under
    :data:`~repro.adapt.rules.CONTEXT_PROVIDER_INTERFACE`) implement
    :meth:`collect`, returning ``{parameter name: number}`` for the
    epoch ending at ``now_ns``.  Providers own their windowing state;
    the controller merges the dicts (later providers win name clashes).
    """

    def collect(self, now_ns):
        """Sample this provider's parameters; returns a dict."""
        raise NotImplementedError


def percentile_from_buckets(bounds, delta_counts, quantile):
    """Smallest bucket upper bound covering ``quantile`` of the window.

    ``bounds`` are the histogram's upper edges, ``delta_counts`` the
    per-bucket sample counts of this window (``len(bounds) + 1``, the
    tail being the overflow bucket).  Samples in the overflow bucket
    report the last finite bound -- the grid cannot see further.
    Returns ``None`` for an empty window.
    """
    total = sum(delta_counts)
    if total <= 0:
        return None
    rank = max(1, int(math.ceil(quantile * total)))
    cumulative = 0
    for index, count in enumerate(delta_counts):
        cumulative += count
        if cumulative >= rank:
            return float(bounds[min(index, len(bounds) - 1)])
    return float(bounds[-1])


class _CounterWindow:
    """Delta tracker for one cumulative counter/gauge value."""

    __slots__ = ("_last",)

    def __init__(self):
        self._last = 0

    def delta(self, value):
        change = value - self._last
        self._last = value
        return change


class TelemetryContextProvider(ContextProvider):
    """Global parameters from the platform's telemetry switchboard.

    Reads the public ``rtos`` and ``drcr`` metric registries of one
    :class:`~repro.telemetry.metrics.Telemetry` and publishes the
    windowed parameters of the catalog above.  With telemetry disabled
    every instrument is a null singleton reporting zero, so the
    provider degrades to an empty-but-valid context rather than
    failing.
    """

    def __init__(self, telemetry):
        self._telemetry = telemetry
        self._windows = {}
        self._hist_counts = None
        self._hist_stats = (0, 0.0)  # (count, sum)

    def _window(self, key, value):
        window = self._windows.get(key)
        if window is None:
            window = self._windows[key] = _CounterWindow()
        return window.delta(value)

    def collect(self, now_ns):
        rtos = self._telemetry.registry("rtos")
        drcr = self._telemetry.registry("drcr")
        misses = self._window(
            "misses", rtos.counter("deadline_misses_total").value)
        releases = self._window(
            "releases", rtos.counter("releases_total").value)
        context = {
            "deadline_misses": float(misses),
            "releases": float(releases),
            "deadline_miss_rate":
                misses / releases if releases > 0 else 0.0,
            "overruns": float(self._window(
                "overruns", rtos.counter("overruns_total").value)),
            "preemptions": float(self._window(
                "preemptions",
                rtos.counter("preemptions_total").value)),
            "active_components":
                float(drcr.gauge("components_active").value),
            "quarantines": float(self._window(
                "quarantines",
                drcr.counter("quarantines_total").value)),
            "admission_rejections": float(self._window(
                "rejections",
                drcr.counter("admission_rejections_total").value)),
        }
        context.update(self._latency_params(
            rtos.histogram("dispatch_latency_ns")))
        return context

    def _latency_params(self, histogram):
        bounds = getattr(histogram, "bounds", None)
        counts = getattr(histogram, "counts", None)
        if not bounds or counts is None:
            return {}
        if self._hist_counts is None:
            self._hist_counts = [0] * len(counts)
        delta = [now - before for now, before
                 in zip(counts, self._hist_counts)]
        self._hist_counts = list(counts)
        stats = histogram.stats
        count, total = stats.count, stats.count * stats.mean
        last_count, last_total = self._hist_stats
        self._hist_stats = (count, total)
        params = {}
        for quantile, name in ((0.50, "dispatch_latency_p50"),
                               (0.95, "dispatch_latency_p95"),
                               (0.99, "dispatch_latency_p99")):
            value = percentile_from_buckets(bounds, delta, quantile)
            if value is not None:
                params[name] = value
        if count > last_count:
            params["dispatch_latency_mean"] = (
                (total - last_total) / (count - last_count))
        return params


class KernelContextProvider(ContextProvider):
    """Per-kernel parameters from public task statistics.

    Sums :class:`~repro.rtos.kernel.TaskStats` over ``kernel.tasks``
    and windows the totals.  With ``node`` given, every parameter is
    published node-scoped (``<param>@<node>``) -- this is how a
    federation gets per-node miss rates out of a shared telemetry
    switchboard.
    """

    def __init__(self, kernel, node=None):
        self._kernel = kernel
        self._node = node
        self._windows = {}
        self._last_now = None

    def _window(self, key, value):
        window = self._windows.get(key)
        if window is None:
            window = self._windows[key] = _CounterWindow()
        return window.delta(value)

    def collect(self, now_ns):
        kernel = self._kernel
        misses = activations = 0
        for task in kernel.tasks:
            stats = task.stats
            misses += stats.deadline_misses
            activations += stats.activations
        misses = self._window("misses", misses)
        activations = self._window("activations", activations)
        busy = self._window("busy", kernel.rt_busy_ns())
        elapsed = (now_ns - self._last_now
                   if self._last_now is not None else now_ns)
        self._last_now = now_ns
        node = self._node
        return {
            scoped("deadline_misses", node): float(misses),
            scoped("deadline_miss_rate", node):
                misses / activations if activations > 0 else 0.0,
            scoped("rt_utilization", node):
                busy / elapsed if elapsed > 0 else 0.0,
        }


class ClusterContextProvider(ContextProvider):
    """Federation parameters: membership plus per-node kernel stats.

    Publishes the global ``alive_nodes``/``dead_nodes``/``migrations``/
    ``failovers`` parameters from the cluster's public API and
    telemetry, and delegates to one :class:`KernelContextProvider` per
    member for the node-scoped parameters.  Nodes that crash simply
    stop being sampled; their last values drop out of the context
    (absent parameter = predicate false, see the evaluator).
    """

    def __init__(self, cluster):
        self._cluster = cluster
        self._windows = {}
        self._per_node = {
            name: KernelContextProvider(node.kernel, node=name)
            for name, node in cluster.nodes.items()
        }

    def _window(self, key, value):
        window = self._windows.get(key)
        if window is None:
            window = self._windows[key] = _CounterWindow()
        return window.delta(value)

    def collect(self, now_ns):
        cluster = self._cluster
        alive = cluster.alive_nodes()
        metrics = cluster.sim.telemetry.registry("cluster")
        context = {
            "alive_nodes": float(len(alive)),
            "dead_nodes": float(len(cluster.nodes) - len(alive)),
            "migrations": float(self._window(
                "migrations",
                metrics.counter("migrations_total").value)),
            "failovers": float(self._window(
                "failovers",
                metrics.counter("failovers_total").value)),
        }
        for node in alive:
            provider = self._per_node.get(node.name)
            if provider is not None:
                context.update(provider.collect(now_ns))
            context[scoped("active_components", node.name)] = float(
                len(node.drcr.registry.active()))
        return context


class StaticContextProvider(ContextProvider):
    """A fixed parameter map -- test/benchmark scaffolding."""

    def __init__(self, params):
        self.params = dict(params)

    def collect(self, now_ns):
        return dict(self.params)
