"""Declarative adaptation rules: JSON schema, validation, providers.

A rule file is one JSON document::

    {
      "schema_version": 1,
      "rules": [
        {
          "name": "latency-guard",
          "priority": 10,
          "when": {"param": "dispatch_latency_p99", "op": ">",
                   "value": 50000, "for_epochs": 2},
          "clear": {"op": "<=", "value": 20000},
          "then": [{"action": "shed_lowest_priority", "count": 1}],
          "cooldown_ns": 100000000
        }
      ]
    }

``when`` is a predicate tree: a *threshold* leaf (``param``/``op``/
``value``, optional ``node`` scope and ``for_epochs`` arming
hysteresis), a *trend* leaf (``param``/``trend``: ``rising`` or
``falling`` over ``epochs`` consecutive observations), or an ``all``/
``any`` group of sub-predicates.  ``clear`` (optional) latches the rule
after a firing until the clear condition holds -- release hysteresis.
``then`` is one action or a list; the catalog lives in
:mod:`repro.adapt.actions`.  Lower ``priority`` numbers win conflicts,
matching task priorities everywhere else in this repository.

Validation is eager and total: :func:`parse_rule_document` either
returns fully-checked :class:`AdaptationRule` records or raises
:class:`RuleSchemaError` listing *every* problem -- the same contract
:mod:`repro.lint` wraps into DRT50x diagnostics, so the CLI, the
controller and the linter cannot disagree about what a valid rule is.

Providers
---------
Rules reach the controller through *providers*, mirroring how
``LintResolvingService`` plugs into the DRCR: anything registered in
the OSGi service registry under :data:`RULE_PROVIDER_INTERFACE` with a
``rules()`` method contributes its rules from the next epoch on, and
stops contributing the moment it is unregistered -- hot add/remove
needs no controller cooperation beyond the per-epoch registry query.
"""

from repro.adapt.actions import validate_action
from repro.adapt.context import CONTEXT_PARAMS

#: OSGi service interface for rule providers (``rules()`` duck type).
RULE_PROVIDER_INTERFACE = "drcom.adapt.RuleProvider"

#: OSGi service interface for extra context providers (``collect(now)``
#: duck type, see :class:`repro.adapt.context.ContextProvider`).
CONTEXT_PROVIDER_INTERFACE = "drcom.adapt.ContextProvider"

#: Schema version accepted by :func:`parse_rule_document`.
RULE_SCHEMA_VERSION = 1

#: Comparison operators a threshold predicate may use.
OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

#: Directions a trend predicate may use.
TRENDS = ("rising", "falling")


class RuleSchemaError(ValueError):
    """A rule document failed validation; ``problems`` lists why."""

    def __init__(self, problems):
        self.problems = list(problems)
        super().__init__("; ".join(self.problems))


class Predicate:
    """One validated ``when``/``clear`` node.

    ``kind`` is ``"threshold"``, ``"trend"``, ``"all"`` or ``"any"``.
    Leaves carry ``param`` (catalog name), optional ``node`` scope,
    and either ``op``/``value`` or ``trend``/``epochs``; groups carry
    ``children``.
    """

    __slots__ = ("kind", "param", "node", "op", "value", "trend",
                 "epochs", "for_epochs", "children")

    def __init__(self, kind, param=None, node=None, op=None,
                 value=None, trend=None, epochs=2, for_epochs=1,
                 children=()):
        self.kind = kind
        self.param = param
        self.node = node
        self.op = op
        self.value = value
        self.trend = trend
        self.epochs = epochs
        self.for_epochs = for_epochs
        self.children = tuple(children)

    def leaves(self):
        """Every threshold/trend leaf under this node (inclusive)."""
        if self.kind in ("all", "any"):
            found = []
            for child in self.children:
                found.extend(child.leaves())
            return found
        return [self]

    def as_dict(self):
        """Plain-data view (round-trips through the JSON schema)."""
        if self.kind in ("all", "any"):
            return {self.kind: [c.as_dict() for c in self.children]}
        if self.kind == "trend":
            data = {"param": self.param, "trend": self.trend,
                    "epochs": self.epochs}
        else:
            data = {"param": self.param, "op": self.op,
                    "value": self.value}
        if self.node is not None:
            data["node"] = self.node
        if self.for_epochs != 1:
            data["for_epochs"] = self.for_epochs
        return data

    def __repr__(self):
        return "Predicate(%r)" % (self.as_dict(),)


class AdaptationRule:
    """One validated rule, ready for the evaluator."""

    __slots__ = ("name", "priority", "when", "clear", "actions",
                 "cooldown_ns", "max_firings")

    def __init__(self, name, when, actions, priority=100, clear=None,
                 cooldown_ns=0, max_firings=None):
        self.name = name
        self.priority = priority
        self.when = when
        self.clear = clear
        self.actions = tuple(actions)
        self.cooldown_ns = cooldown_ns
        self.max_firings = max_firings

    def as_dict(self):
        """Plain-data view (round-trips through the JSON schema)."""
        data = {
            "name": self.name,
            "priority": self.priority,
            "when": self.when.as_dict(),
            "then": [dict(action) for action in self.actions],
        }
        if self.clear is not None:
            data["clear"] = self.clear.as_dict()
        if self.cooldown_ns:
            data["cooldown_ns"] = self.cooldown_ns
        if self.max_firings is not None:
            data["max_firings"] = self.max_firings
        return data

    def __repr__(self):
        return "AdaptationRule(%s, priority=%d)" % (self.name,
                                                    self.priority)


def _is_number(value):
    return isinstance(value, (int, float)) \
        and not isinstance(value, bool)


def _parse_predicate(data, where, problems, default_param=None):
    """Validate one predicate node; returns a :class:`Predicate` or
    ``None`` (problems appended either way)."""
    if not isinstance(data, dict):
        problems.append("%s: predicate must be an object, got %r"
                        % (where, type(data).__name__))
        return None
    for group in ("all", "any"):
        if group in data:
            extra = set(data) - {group}
            if extra:
                problems.append(
                    "%s: %r group takes no sibling keys, got %s"
                    % (where, group, sorted(extra)))
            children = data[group]
            if not isinstance(children, list) or not children:
                problems.append("%s: %r must be a non-empty list"
                                % (where, group))
                return None
            parsed = [_parse_predicate(child,
                                       "%s.%s[%d]" % (where, group, i),
                                       problems)
                      for i, child in enumerate(children)]
            if any(child is None for child in parsed):
                return None
            return Predicate(group, children=parsed)
    param = data.get("param", default_param)
    if not isinstance(param, str) or not param:
        problems.append("%s: missing 'param'" % where)
        return None
    if param not in CONTEXT_PARAMS:
        problems.append("%s: unknown context parameter %r"
                        % (where, param))
    node = data.get("node")
    if node is not None:
        if not isinstance(node, str) or not node:
            problems.append("%s: 'node' must be a non-empty string"
                            % where)
            node = None
        elif param in CONTEXT_PARAMS \
                and not CONTEXT_PARAMS[param]["node_scoped"]:
            problems.append("%s: parameter %r is not node-scoped"
                            % (where, param))
    for_epochs = data.get("for_epochs", 1)
    if not isinstance(for_epochs, int) or isinstance(for_epochs, bool) \
            or for_epochs < 1:
        problems.append("%s: 'for_epochs' must be a positive integer"
                        % where)
        for_epochs = 1
    known = {"param", "node", "for_epochs", "op", "value", "trend",
             "epochs"}
    extra = set(data) - known
    if extra:
        problems.append("%s: unknown keys %s" % (where, sorted(extra)))
    if "trend" in data:
        if "op" in data or "value" in data:
            problems.append("%s: 'trend' excludes 'op'/'value'" % where)
        trend = data["trend"]
        if trend not in TRENDS:
            problems.append("%s: trend must be one of %s, got %r"
                            % (where, "/".join(TRENDS), trend))
            return None
        epochs = data.get("epochs", 2)
        if not isinstance(epochs, int) or isinstance(epochs, bool) \
                or epochs < 2:
            problems.append("%s: 'epochs' must be an integer >= 2"
                            % where)
            epochs = 2
        return Predicate("trend", param=param, node=node, trend=trend,
                         epochs=epochs, for_epochs=for_epochs)
    op = data.get("op")
    if op not in OPS:
        problems.append("%s: 'op' must be one of %s, got %r"
                        % (where, " ".join(sorted(OPS)), op))
        return None
    value = data.get("value")
    if not _is_number(value):
        problems.append("%s: 'value' must be a number, got %r"
                        % (where, value))
        return None
    return Predicate("threshold", param=param, node=node, op=op,
                     value=value, for_epochs=for_epochs)


def _parse_rule(data, index, problems):
    where = "rules[%d]" % index
    if not isinstance(data, dict):
        problems.append("%s: rule must be an object" % where)
        return None
    name = data.get("name")
    if not isinstance(name, str) or not name:
        problems.append("%s: missing 'name'" % where)
        name = "<%s>" % where
    where = "rule %r" % name
    priority = data.get("priority", 100)
    if not isinstance(priority, int) or isinstance(priority, bool):
        problems.append("%s: 'priority' must be an integer" % where)
        priority = 100
    cooldown = data.get("cooldown_ns", 0)
    if not isinstance(cooldown, int) or isinstance(cooldown, bool) \
            or cooldown < 0:
        problems.append("%s: 'cooldown_ns' must be a non-negative "
                        "integer" % where)
        cooldown = 0
    max_firings = data.get("max_firings")
    if max_firings is not None and (
            not isinstance(max_firings, int)
            or isinstance(max_firings, bool) or max_firings < 1):
        problems.append("%s: 'max_firings' must be a positive integer "
                        "or absent" % where)
        max_firings = None
    known = {"name", "priority", "when", "clear", "then",
             "cooldown_ns", "max_firings"}
    extra = set(data) - known
    if extra:
        problems.append("%s: unknown keys %s" % (where, sorted(extra)))
    if "when" not in data:
        problems.append("%s: missing 'when'" % where)
        return None
    when = _parse_predicate(data["when"], "%s when" % where, problems)
    clear = None
    if "clear" in data:
        default_param = None
        if when is not None and when.kind in ("threshold", "trend"):
            default_param = when.param
        clear = _parse_predicate(data["clear"], "%s clear" % where,
                                 problems,
                                 default_param=default_param)
    then = data.get("then")
    if then is None:
        problems.append("%s: missing 'then'" % where)
        return None
    if isinstance(then, dict):
        then = [then]
    if not isinstance(then, list) or not then:
        problems.append("%s: 'then' must be an action or a non-empty "
                        "list of actions" % where)
        return None
    actions = []
    for position, action in enumerate(then):
        action_problems = validate_action(action)
        if action_problems:
            problems.extend("%s then[%d]: %s" % (where, position, p)
                            for p in action_problems)
        else:
            actions.append(dict(action))
    if when is None or len(actions) != len(then):
        return None
    return AdaptationRule(name, when, actions, priority=priority,
                          clear=clear, cooldown_ns=cooldown,
                          max_firings=max_firings)


def parse_rule_document_tolerant(document):
    """Validate a rule document; returns ``(rules, problems)``.

    Rules that validate individually are returned even when sibling
    rules (or the envelope) have problems -- drtlint uses this so one
    malformed rule cannot mask findings about the valid ones.
    """
    problems = []
    if not isinstance(document, dict):
        return [], ["document must be a JSON object"]
    version = document.get("schema_version", RULE_SCHEMA_VERSION)
    if version != RULE_SCHEMA_VERSION:
        problems.append("unsupported schema_version %r (supported: %d)"
                        % (version, RULE_SCHEMA_VERSION))
    extra = set(document) - {"schema_version", "rules"}
    if extra:
        problems.append("unknown top-level keys %s" % sorted(extra))
    rules_data = document.get("rules")
    if not isinstance(rules_data, list):
        problems.append("missing 'rules' list")
        return [], problems
    rules = []
    seen = set()
    for index, data in enumerate(rules_data):
        before = len(problems)
        rule = _parse_rule(data, index, problems)
        if rule is None:
            continue
        if rule.name in seen:
            problems.append("duplicate rule name %r" % rule.name)
        seen.add(rule.name)
        if len(problems) == before:
            rules.append(rule)
    return rules, problems


def parse_rule_document(document):
    """Validate a rule document (a dict) into a list of rules.

    Raises :class:`RuleSchemaError` carrying *every* problem found;
    returns the fully-validated :class:`AdaptationRule` list otherwise.
    """
    rules, problems = parse_rule_document_tolerant(document)
    if problems:
        raise RuleSchemaError(problems)
    return rules


def load_rule_file(path):
    """Parse and validate one rule ``.json`` file into rules."""
    import json
    with open(path, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except ValueError as error:
            raise RuleSchemaError(
                ["%s: invalid JSON: %s" % (path, error)]) from error
    return parse_rule_document(document)


class RuleProvider:
    """Base rule provider: a named, stable source of rules."""

    def __init__(self, name="rules"):
        self.name = name

    def rules(self):
        """The provider's current rules (re-queried every epoch)."""
        raise NotImplementedError

    def register(self, framework, properties=None):
        """Register in ``framework``'s OSGi service registry under
        :data:`RULE_PROVIDER_INTERFACE`; returns the registration
        (``registration.unregister()`` removes the rules again)."""
        merged = {"drcom.adapt.provider": self.name}
        if properties:
            merged.update(properties)
        return framework.registry.register(
            RULE_PROVIDER_INTERFACE, self, properties=merged)

    def __repr__(self):
        return "%s(%s)" % (type(self).__name__, self.name)


class JsonRuleProvider(RuleProvider):
    """Rules from a JSON document, dict, or ``.json`` file path.

    Validation happens at construction -- a provider that registers
    successfully can never feed the evaluator malformed rules.
    """

    def __init__(self, source, name=None):
        if isinstance(source, str) and source.lstrip().startswith("{"):
            import json
            source = json.loads(source)
        if isinstance(source, dict):
            self._rules = parse_rule_document(source)
            origin = "<document>"
        else:
            self._rules = load_rule_file(source)
            origin = str(source)
        super().__init__(name or origin)

    def rules(self):
        return list(self._rules)


class StaticRuleProvider(RuleProvider):
    """Already-parsed rules -- programmatic construction and tests."""

    def __init__(self, rules, name="static"):
        super().__init__(name)
        self._rules = list(rules)

    def rules(self):
        return list(self._rules)
