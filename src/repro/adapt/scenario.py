"""The C5 load-spike scenario (EXPERIMENTS.md).

One CPU under :class:`~repro.core.policies.AlwaysAcceptPolicy` (the
operator has turned admission off -- the same premise as phase 2 of
``examples/adaptive_settopbox.py``): a well-behaved baseline fleet
runs for a while, then a flash-crowd of extra components lands
mid-run and pushes declared demand far past 1.0.  A *static*
deployment just misses deadlines from then on.  A *rule-driven*
deployment runs the same timeline with an
:class:`~repro.adapt.controller.AdaptationController` whose rules
shed the least-important components as soon as the windowed miss rate
crosses a threshold -- the deadline-miss rate recovers within a few
epochs and stays flat.

:func:`run_load_spike` runs one arm and reports windowed miss rates
before and after the spike; :func:`run_comparison` runs both arms on
identical seeds and returns them side by side.  The CLI
(``python -m repro adapt``), the integration test
(``tests/integration/test_adaptation_scenario.py``) and the CI
``adapt-smoke`` job all call these two functions, so the experiment
cannot drift from what ships.
"""

from repro.adapt.controller import AdaptationController
from repro.core.policies import AlwaysAcceptPolicy
from repro.platform import build_platform
from repro.sim.engine import MSEC, SEC
from repro.sim.rng import RandomStreams
from repro.workloads import (
    deploy_component_set,
    generate_component_set,
    generate_rule_set,
)

#: Priority offset of spike components: far less important than any
#: baseline component, so shedding eats the spike first.
SPIKE_PRIORITY_OFFSET = 100


def _rtos_window(telemetry):
    """Cumulative ``(deadline misses, releases)`` right now."""
    rtos = telemetry.registry("rtos")
    return (rtos.counter("deadline_misses_total").value,
            rtos.counter("releases_total").value)


def _rate(misses, releases):
    return misses / releases if releases > 0 else 0.0


def run_load_spike(rules=None, seed=7, seconds=2.0,
                   epoch_ns=20 * MSEC, base_count=4,
                   base_utilization=0.55, spike_count=6,
                   spike_utilization=0.90, spike_at_fraction=1 / 3):
    """Run one arm of the experiment; returns a report dict.

    With ``rules`` (already-parsed :class:`AdaptationRule` list) the
    controller runs at ``epoch_ns``; with ``rules=None`` the
    deployment is static.  The report carries ``pre``/``post``
    windowed miss rates, the surviving component states, and (for the
    adaptive arm) the controller's own report.
    """
    platform = build_platform(seed=seed,
                              internal_policy=AlwaysAcceptPolicy())
    platform.start_timer(1 * MSEC)
    rng = RandomStreams(seed)
    base = generate_component_set(rng, "base", base_count,
                                  total_utilization=base_utilization)
    spike = generate_component_set(
        rng, "spike", spike_count,
        total_utilization=spike_utilization,
        priority_offset=SPIKE_PRIORITY_OFFSET)
    deploy_component_set(platform.drcr, base)
    controller = None
    if rules is not None:
        controller = AdaptationController(
            platform, epoch_ns=epoch_ns, rules=rules).start()
    total_ns = int(seconds * SEC)
    spike_at_ns = int(total_ns * spike_at_fraction)
    platform.run_for(spike_at_ns)
    pre_misses, pre_releases = _rtos_window(platform.telemetry)
    deploy_component_set(platform.drcr, spike)
    platform.run_for(total_ns - spike_at_ns)
    end_misses, end_releases = _rtos_window(platform.telemetry)
    post_misses = end_misses - pre_misses
    post_releases = end_releases - pre_releases
    protected = base[0].name
    protected_task = platform.kernel.lookup(protected)
    states = {descriptor.name:
              platform.drcr.component_state(descriptor.name).value
              for descriptor in base + spike}
    report = {
        "arm": "static" if controller is None else "rules",
        "seed": seed,
        "seconds": seconds,
        "pre": {
            "deadline_misses": pre_misses,
            "releases": pre_releases,
            "miss_rate": _rate(pre_misses, pre_releases),
        },
        "post": {
            "deadline_misses": post_misses,
            "releases": post_releases,
            "miss_rate": _rate(post_misses, post_releases),
        },
        "protected": {
            "component": protected,
            "deadline_misses":
                protected_task.stats.deadline_misses
                if protected_task is not None else None,
        },
        "states": states,
        "active": sorted(name for name, state in states.items()
                         if state == "active"),
        "adapt": None,
    }
    if controller is not None:
        controller.stop()
        report["adapt"] = controller.report()
        report["adapt"]["rules_fired_total"] = (
            platform.telemetry.registry("adapt")
            .counter("rules_fired_total").value)
    platform.shutdown()
    return report


def default_rules(epoch_ns=20 * MSEC):
    """The stock C5 rule set: a miss-rate guard that sheds hard."""
    from repro.adapt.rules import parse_rule_document
    return parse_rule_document(generate_rule_set(
        "miss-rate-guard", threshold=0.02, count=2, cooldown_ns=0))


def run_comparison(rules=None, **kwargs):
    """Both arms on identical seeds; returns ``{static, rules}``."""
    if rules is None:
        rules = default_rules()
    return {
        "static": run_load_spike(rules=None, **kwargs),
        "rules": run_load_spike(rules=rules, **kwargs),
    }
