"""The action catalog: what a fired rule may do, and to whom.

Every action routes through a *public* platform API -- the §2.4
management service, the DRCR's lifecycle/reconfiguration methods, the
graceful-degradation resolver, or the cluster coordinator.  The
catalog below is the single source of truth three consumers share: the
rule validator (:func:`validate_action`), drtlint's DRT502/DRT503
checks, and the controller's executor
(:meth:`repro.adapt.controller.AdaptationController.execute`).

``target_key`` gives the conflict-resolution identity of one action
instance: two firings whose actions map to the same key contend for
the same resource in the same epoch, and only the highest-priority
rule's firing survives (see :mod:`repro.adapt.evaluator`).
"""

_NUMBER = (int, float)

#: kind -> {description, scope, required, optional}.  ``required`` /
#: ``optional`` map argument name to the accepted Python types (or a
#: validation callable); ``scope`` is ``"drcr"`` for single-platform
#: actions and ``"cluster"`` for federation-only ones.
ACTIONS = {
    "suspend": {
        "description": "suspend a component via §2.4 management",
        "scope": "drcr",
        "required": {"component": str},
        "optional": {},
    },
    "resume": {
        "description": "resume a suspended component",
        "scope": "drcr",
        "required": {"component": str},
        "optional": {},
    },
    "disable": {
        "description": "disable (operator-quarantine) a component",
        "scope": "drcr",
        "required": {"component": str},
        "optional": {},
    },
    "enable": {
        "description": "re-enable a disabled component",
        "scope": "drcr",
        "required": {"component": str},
        "optional": {},
    },
    "set_property": {
        "description": "set a component property via §2.4 management",
        "scope": "drcr",
        "required": {"component": str, "property": str,
                     "value": (str, int, float, bool)},
        "optional": {},
    },
    "shed_lowest_priority": {
        "description": "disable the least-important admitted "
                       "component(s)",
        "scope": "drcr",
        "required": {},
        "optional": {"cpu": int, "count": int},
    },
    "set_degradation_cap": {
        "description": "lower/raise the graceful-degradation "
                       "utilization cap and reconfigure",
        "scope": "drcr",
        "required": {"cap": _NUMBER},
        "optional": {},
    },
    "reconfigure": {
        "description": "force a reconfiguration pass",
        "scope": "drcr",
        "required": {},
        "optional": {"full": bool},
    },
    "migrate": {
        "description": "migrate a component to another node "
                       "(placement decides when no dst is given)",
        "scope": "cluster",
        "required": {"component": str},
        "optional": {"dst": str},
    },
    "rebalance": {
        "description": "migrate the least-important component away "
                       "from a node (placement picks the destination)",
        "scope": "cluster",
        "required": {},
        "optional": {"node": str, "count": int},
    },
}

#: Action pairs that undo each other -- drtlint's DRT503 flags two
#: simultaneously-satisfiable rules commanding both on one target.
OPPOSITES = {
    "suspend": "resume",
    "resume": "suspend",
    "disable": "enable",
    "enable": "disable",
}


def _type_ok(value, types):
    """Type check that refuses ``bool`` where a number is expected."""
    if not isinstance(types, tuple):
        types = (types,)
    if isinstance(value, bool):
        return bool in types
    return isinstance(value, types)


def validate_action(action):
    """Problems with one ``then`` entry; an empty list means valid."""
    if not isinstance(action, dict):
        return ["action must be an object, got %r"
                % type(action).__name__]
    kind = action.get("action")
    if not isinstance(kind, str):
        return ["missing 'action' kind"]
    spec = ACTIONS.get(kind)
    if spec is None:
        return ["unknown action %r (known: %s)"
                % (kind, ", ".join(sorted(ACTIONS)))]
    problems = []
    for arg, types in spec["required"].items():
        if arg not in action:
            problems.append("action %r missing argument %r"
                            % (kind, arg))
        elif not _type_ok(action[arg], types):
            problems.append("action %r argument %r has wrong type"
                            % (kind, arg))
    for arg, types in spec["optional"].items():
        if arg in action and not _type_ok(action[arg], types):
            problems.append("action %r argument %r has wrong type"
                            % (kind, arg))
    known = {"action"} | set(spec["required"]) | set(spec["optional"])
    extra = set(action) - known
    if extra:
        problems.append("action %r unknown arguments %s"
                        % (kind, sorted(extra)))
    for arg in ("count",):
        if arg in action and isinstance(action.get(arg), int) \
                and action[arg] < 1:
            problems.append("action %r argument %r must be >= 1"
                            % (kind, arg))
    if kind == "set_degradation_cap" and "cap" in action \
            and isinstance(action["cap"], _NUMBER) \
            and action["cap"] <= 0:
        problems.append("action 'set_degradation_cap' cap must be "
                        "positive")
    return problems


def target_key(action):
    """Conflict-resolution identity of one action instance.

    Actions naming a component contend per component; shedding
    contends per CPU; rebalancing contends per node; cap changes and
    forced reconfigurations contend globally.
    """
    kind = action["action"]
    if "component" in action:
        return "component:%s" % action["component"]
    if kind == "shed_lowest_priority":
        return "shed:cpu%s" % action.get("cpu", "*")
    if kind == "rebalance":
        return "rebalance:%s" % action.get("node", "*")
    return "global:%s" % kind
