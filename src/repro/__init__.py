"""repro -- the declarative real-time OSGi component model, reproduced.

A pure-Python reproduction of Gui, De Florio, Sun & Blondia,
"A framework for adaptive real-time applications: the declarative
real-time OSGi component model" (MIDDLEWARE 2008).

Packages
--------
``repro.sim``
    Deterministic discrete-event simulation core (ns resolution).
``repro.rtos``
    The RTAI substitute: dual-kernel RT scheduler, timers, IPC, the
    calibrated scheduling-latency model, Linux-side load generators.
``repro.osgi``
    The Equinox substitute: bundles, wiring, LDAP-filter service
    registry, events, trackers, a Declarative Services subset.
``repro.core``
    The paper's contribution: DRCom descriptors, the Figure-1
    lifecycle, the DRCR runtime, resolving services and admission
    policies, the management interface, adaptation managers.
``repro.hybrid``
    The HRC split container: RT part + management part bridged by the
    asynchronous command protocol.
``repro.analysis``
    Schedulability analysis (RM/RTA, EDF, utilization bounds).
``repro.telemetry``
    Platform observability: per-subsystem metric registries, Chrome
    trace-event export, metric dumps (see ``docs/OBSERVABILITY.md``).
``repro.workloads``
    UUniFast task-set and random component-population generation for
    experiments.

Quickstart
----------
>>> from repro import build_platform
>>> platform = build_platform(seed=1)
>>> platform.kernel.start_timer(1_000_000)   # 1 ms tick
>>> # deploy descriptors via platform.drcr.register_component(...)

See ``examples/quickstart.py`` for the full tour.
"""

from repro.platform import Platform, build_platform

__version__ = "1.0.0"

__all__ = ["Platform", "build_platform", "__version__"]
