"""The runtime stochastic-contract monitor.

:class:`ContractMonitor` closes the loop the ``<stochastic>``
descriptor clause opens: each sim-time epoch it drains per-task sample
taps (inter-release deltas and per-job execution times, attached
through the kernel's public ``attach_sample_tap`` surface), runs the
bucketed chi-square test of :mod:`repro.monitor.gof` against the
declared distributions, and publishes ``contracts.*`` telemetry
(checks/violations counters and per-component p-value gauges).

Layering rule (docs/ARCHITECTURE.md): the monitor only *reads*
telemetry and task statistics; when a contract is violated it acts
exclusively through public surfaces -- ``kernel.inject_fault`` routes
the component into DRCR's quarantine under the installed
:class:`~repro.faults.recovery.QuarantinePolicy`, and
:class:`StochasticContextProvider` exports ``stochastic_violations``
context parameters so adaptation rules can shed or migrate.  It never
deletes tasks or mutates registries directly.
"""

from repro.adapt.context import ContextProvider, scoped
from repro.core.contracts import DEFAULT_MONITOR_EPOCH_NS
from repro.core.errors import DRComError
from repro.monitor.gof import chi_square_gof, equal_probability_edges

#: Per-clause samples kept per epoch; the monitor is a statistical
#: check, not a trace recorder, so the window is bounded.
MAX_SAMPLES_PER_EPOCH = 4096


class StochasticViolation(DRComError):
    """A component's observed timing rejected its declared
    distribution.  Raised *into* the offending task via
    ``kernel.inject_fault`` so the standard quarantine path runs."""


class _SampleTap:
    """Kernel-facing sample sink for one task (see
    ``RTKernel.attach_sample_tap``).  Inter-arrival anchors survive
    epoch drains; sample lists are epoch-windowed."""

    __slots__ = ("interarrival", "exectime", "_last_release", "_last_cpu")

    def __init__(self, cpu_time_ns=0):
        self.interarrival = []
        self.exectime = []
        self._last_release = None
        self._last_cpu = cpu_time_ns

    def on_release(self, now_ns):
        last = self._last_release
        self._last_release = now_ns
        if last is not None \
                and len(self.interarrival) < MAX_SAMPLES_PER_EPOCH:
            self.interarrival.append(now_ns - last)

    def on_complete(self, cpu_time_total_ns):
        last = self._last_cpu
        self._last_cpu = cpu_time_total_ns
        if len(self.exectime) < MAX_SAMPLES_PER_EPOCH:
            self.exectime.append(cpu_time_total_ns - last)

    def drain(self):
        interarrival, exectime = self.interarrival, self.exectime
        self.interarrival = []
        self.exectime = []
        return interarrival, exectime


class _Probe:
    """Monitor-side state for one monitored component."""

    __slots__ = ("name", "task", "stochastic", "tap", "edges",
                 "strikes", "gauges")

    def __init__(self, name, task, stochastic, tap, edges, gauges):
        self.name = name
        self.task = task
        self.stochastic = stochastic
        self.tap = tap
        #: clause name -> equal-probability bucket edges
        self.edges = edges
        #: clause name -> consecutive failed checks
        self.strikes = {clause: 0 for clause in edges}
        #: clause name -> p-value gauge
        self.gauges = gauges


class ContractMonitor:
    """Online distribution checking for ``<stochastic>`` contracts.

    Parameters
    ----------
    platform:
        A :class:`~repro.platform.Platform`; or pass ``drcr`` and
        ``kernel`` explicitly.
    epoch_ns:
        Sim-time between check rounds.
    buckets:
        Equal-probability cells per chi-square test.
    patience:
        Consecutive failed checks (p-value below the contract's
        tolerance) before a violation is declared.  ``1`` reacts
        fastest; the default ``2`` rides out one unlucky epoch.
    quarantine:
        When True (default), a violation faults the task through
        ``kernel.inject_fault`` so DRCR quarantines the component
        under its recovery policy.  When False the monitor only
        counts/exports (observe-only mode).
    """

    def __init__(self, platform=None, *, drcr=None, kernel=None,
                 epoch_ns=DEFAULT_MONITOR_EPOCH_NS, buckets=8,
                 patience=2, quarantine=True):
        if platform is not None:
            drcr = platform.drcr
            kernel = platform.kernel
        if drcr is None or kernel is None:
            raise ValueError(
                "ContractMonitor needs a platform or drcr+kernel")
        self.drcr = drcr
        self.kernel = kernel
        self.sim = kernel.sim
        self.epoch_ns = int(epoch_ns)
        if self.epoch_ns <= 0:
            raise ValueError("epoch_ns must be positive")
        self.buckets = int(buckets)
        self.patience = max(1, int(patience))
        self.quarantine = bool(quarantine)
        self._metrics = self.sim.telemetry.registry("contracts")
        self._m_checks = self._metrics.counter("checks_total")
        self._m_violations = self._metrics.counter("violations_total")
        self._m_quarantines = self._metrics.counter("quarantines_total")
        self._m_monitored = self._metrics.gauge("monitored_components")
        self._probes = {}
        self._epoch_event = None
        self._running = False
        #: Violations declared in the last completed epoch.
        self.last_epoch_violations = 0
        #: Checks evaluated in the last completed epoch.
        self.last_epoch_checks = 0
        #: Total violations since start().
        self.total_violations = 0
        #: ``(time_ns, component, clause, p_value)`` records.
        self.violations = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self):
        """Attach taps to monitored components and begin epochs."""
        if self._running:
            return
        self._running = True
        self._refresh_probes()
        self._epoch_event = self.sim.schedule(
            self.epoch_ns, self._on_epoch, label="contracts:epoch")

    def stop(self):
        """Cancel the epoch loop and detach every tap."""
        if not self._running:
            return
        self._running = False
        if self._epoch_event is not None:
            self._epoch_event.cancel_if_pending()
            self._epoch_event = None
        for probe in self._probes.values():
            self._detach(probe)
        self._probes.clear()
        self._m_monitored.set(0)

    @property
    def monitored(self):
        """Names of the components currently under monitoring."""
        return sorted(self._probes)

    # ------------------------------------------------------------------
    # probe management
    # ------------------------------------------------------------------
    def _detach(self, probe):
        self.kernel.detach_sample_tap(probe.task, probe.tap)

    def _task_for(self, component):
        name = component.descriptor.task_name
        if not self.kernel.exists(name):
            return None
        return self.kernel.lookup(name)

    def _refresh_probes(self):
        """Reconcile probes with the registry: attach newly ACTIVE
        stochastic components, drop departed/re-created ones."""
        wanted = {}
        for component in self.drcr.registry.all():
            if not component.is_active:
                continue
            if component.contract.stochastic is None:
                continue
            wanted[component.name] = component
        for name in list(self._probes):
            probe = self._probes[name]
            component = wanted.get(name)
            task = self._task_for(component) \
                if component is not None else None
            if task is not probe.task:
                # Quarantined, disposed, or re-admitted with a fresh
                # task: drop the probe (a new one attaches below).
                self._detach(probe)
                del self._probes[name]
        for name, component in wanted.items():
            if name in self._probes:
                continue
            task = self._task_for(component)
            if task is None:
                continue
            stochastic = component.contract.stochastic
            edges = {}
            gauges = {}
            for clause, spec in stochastic.clauses():
                if clause == "interarrival" and task.is_periodic:
                    # Periodic releases ride the timer grid; the
                    # declared arrival distribution is meaningless
                    # (drtlint flags it as DRT700).
                    continue
                edges[clause] = equal_probability_edges(
                    spec, self.buckets)
                gauges[clause] = self._metrics.gauge(
                    "p_value.%s.%s" % (name, clause))
            if not edges:
                continue
            tap = _SampleTap(cpu_time_ns=task.stats.cpu_time_ns)
            self.kernel.attach_sample_tap(task, tap)
            self._probes[name] = _Probe(
                name, task, stochastic, tap, edges, gauges)
        self._m_monitored.set(len(self._probes))

    # ------------------------------------------------------------------
    # the epoch check
    # ------------------------------------------------------------------
    def _on_epoch(self):
        self._epoch_event = None
        if not self._running:
            return
        checks = violations = 0
        for probe in list(self._probes.values()):
            interarrival, exectime = probe.tap.drain()
            samples = {"interarrival": interarrival,
                       "exectime": exectime}
            stochastic = probe.stochastic
            for clause, edges in probe.edges.items():
                observed = samples[clause]
                if len(observed) < stochastic.min_samples:
                    continue
                _, _, p_value = chi_square_gof(observed, edges)
                checks += 1
                self._m_checks.inc()
                probe.gauges[clause].set(p_value)
                if p_value < stochastic.tolerance:
                    probe.strikes[clause] += 1
                else:
                    probe.strikes[clause] = 0
                if probe.strikes[clause] >= self.patience:
                    violations += 1
                    self._violate(probe, clause, p_value)
                    break  # the task is gone; skip its other clause
        self.last_epoch_checks = checks
        self.last_epoch_violations = violations
        self._refresh_probes()
        if self._running:
            self._epoch_event = self.sim.schedule(
                self.epoch_ns, self._on_epoch, label="contracts:epoch")

    def _violate(self, probe, clause, p_value):
        self._m_violations.inc()
        self.total_violations += 1
        self.violations.append(
            (self.sim.now, probe.name, clause, p_value))
        self.sim.trace.record(
            self.sim.now, "stochastic_violation", component=probe.name,
            clause=clause, p_value=p_value)
        if not self.quarantine:
            return
        error = StochasticViolation(
            "component %s: observed %s distribution rejected the "
            "declared contract (p=%.3g < tolerance %.3g)"
            % (probe.name, clause, p_value, probe.stochastic.tolerance))
        self._m_quarantines.inc()
        # Public fault surface: DRCR's on_task_fault fires and the
        # installed QuarantinePolicy decides cooldown/permanence.
        self.kernel.inject_fault(probe.task, error)
        self._detach(probe)
        self._probes.pop(probe.name, None)
        self._m_monitored.set(len(self._probes))


class StochasticContextProvider(ContextProvider):
    """Exports the monitor's findings to the adaptation engine.

    Publishes ``stochastic_violations`` / ``stochastic_checks`` for
    the last completed monitor epoch; with ``node`` given,
    ``stochastic_violations`` is also published node-scoped as
    ``stochastic_violations@<node>`` so rules can target the member
    running the misbehaving component.
    """

    def __init__(self, monitor, node=None):
        self._monitor = monitor
        self._node = node

    def collect(self, now_ns):
        monitor = self._monitor
        context = {
            "stochastic_violations": float(
                monitor.last_epoch_violations),
            "stochastic_checks": float(monitor.last_epoch_checks),
        }
        if self._node is not None:
            context[scoped("stochastic_violations", self._node)] = \
                float(monitor.last_epoch_violations)
        return context
