"""Bucketed goodness-of-fit testing (pure python, stdlib only).

The contract monitor checks observed inter-arrival / execution-time
samples against a declared :class:`~repro.core.contracts
.DistributionSpec` with Pearson's chi-square test over
*equal-probability* buckets: the bucket edges are the declared
distribution's quantiles, so every bucket expects ``n / k`` samples
and the statistic reduces to a single pass over the counts.  The
p-value comes from the chi-square survival function, computed with the
regularized incomplete gamma function (series + continued fraction --
the classic ``gammp``/``gammq`` pair), so no scipy is needed.
"""

import math
from bisect import bisect_right

_MAX_ITERATIONS = 500
_EPS = 1e-12
_TINY = 1e-300


def _gamma_p_series(s, x):
    """Regularized lower incomplete gamma P(s, x) by series expansion
    (converges fast for x < s + 1)."""
    term = 1.0 / s
    total = term
    a = s
    for _ in range(_MAX_ITERATIONS):
        a += 1.0
        term *= x / a
        total += term
        if abs(term) < abs(total) * _EPS:
            break
    return total * math.exp(-x + s * math.log(x) - math.lgamma(s))


def _gamma_q_fraction(s, x):
    """Regularized upper incomplete gamma Q(s, x) by Lentz's continued
    fraction (converges fast for x >= s + 1)."""
    b = x + 1.0 - s
    c = 1.0 / _TINY
    d = 1.0 / b
    h = d
    for i in range(1, _MAX_ITERATIONS):
        an = -i * (i - s)
        b += 2.0
        d = an * d + b
        if abs(d) < _TINY:
            d = _TINY
        c = b + an / c
        if abs(c) < _TINY:
            c = _TINY
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPS:
            break
    return h * math.exp(-x + s * math.log(x) - math.lgamma(s))


def chi_square_sf(stat, dof):
    """Survival function of the chi-square distribution:
    P(X >= stat) with ``dof`` degrees of freedom."""
    if dof <= 0:
        raise ValueError("dof must be positive, got %r" % (dof,))
    if stat <= 0.0:
        return 1.0
    s = dof / 2.0
    x = stat / 2.0
    if x < s + 1.0:
        p = 1.0 - _gamma_p_series(s, x)
    else:
        p = _gamma_q_fraction(s, x)
    return min(1.0, max(0.0, p))


def equal_probability_edges(dist, buckets):
    """Bucket edges splitting ``dist`` into ``buckets`` equal-mass
    cells: the (i/k)-quantiles for i in 1..k-1."""
    if buckets < 2:
        raise ValueError("need at least 2 buckets, got %r" % (buckets,))
    return [dist.quantile(i / buckets) for i in range(1, buckets)]


def chi_square_gof(samples, edges):
    """Chi-square test of ``samples`` against equal-probability
    ``edges`` (as produced by :func:`equal_probability_edges`).

    Returns ``(statistic, dof, p_value)``.
    """
    n = len(samples)
    if n == 0:
        raise ValueError("cannot test an empty sample")
    k = len(edges) + 1
    counts = [0] * k
    for sample in samples:
        counts[bisect_right(edges, sample)] += 1
    expected = n / k
    stat = sum((count - expected) ** 2 for count in counts) / expected
    dof = k - 1
    return stat, dof, chi_square_sf(stat, dof)
