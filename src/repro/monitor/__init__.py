"""Runtime checking of stochastic contracts (Nandi et al.).

The descriptor's optional ``<stochastic>`` clause declares inter-
arrival and execution-time *distributions*; this package checks them
online against kernel telemetry and routes violations through DRCR's
quarantine -- see docs/ARCHITECTURE.md for the layering rule.
"""

from repro.monitor.gof import (chi_square_gof, chi_square_sf,
                               equal_probability_edges)
from repro.monitor.service import (ContractMonitor,
                                   StochasticContextProvider,
                                   StochasticViolation)

__all__ = [
    "ContractMonitor",
    "StochasticContextProvider",
    "StochasticViolation",
    "chi_square_gof",
    "chi_square_sf",
    "equal_probability_edges",
]
