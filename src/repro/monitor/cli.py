"""``python -m repro contracts``: the C6 bursty-contract experiment.

Runs the stochastic-contract arm of the bursty scenario
(:mod:`repro.monitor.scenario`) -- and, with ``--compare``, the
point-estimate arm on the identical seed -- then prints windowed
deadline-miss rates, the quarantined components and the
``contracts.*`` counters behind the EXPERIMENTS.md C6 claim.

Examples::

    python -m repro contracts
    python -m repro contracts --compare --seconds 2 --seed 11
    python -m repro contracts --static --json bursty.json
"""

import argparse
import json
import sys

from repro.monitor.scenario import run_bursty, run_comparison
from repro.sim.engine import MSEC


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="python -m repro contracts",
        description="Run the C6 bursty-contract scenario: a "
                    "stochastic-contract monitor quarantines the "
                    "misbehaving components while the identical "
                    "point-estimate deployment degrades.")
    parser.add_argument("--seconds", type=float, default=2.0,
                        metavar="S",
                        help="simulated seconds (default 2)")
    parser.add_argument("--epoch-ms", type=int, default=100,
                        metavar="MS",
                        help="monitor epoch (default 100 ms)")
    parser.add_argument("--seed", type=int, default=7,
                        help="master seed (default 7)")
    parser.add_argument("--static", action="store_true",
                        help="run only the point-estimate (monitor-"
                             "free) arm")
    parser.add_argument("--compare", action="store_true",
                        help="run both arms and print them side by "
                             "side")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the report(s) as JSON")
    return parser.parse_args(argv)


def _print_arm(report):
    print("== %s arm (seed %d, %.2f s, burst at %.2f s) =="
          % (report["arm"], report["seed"], report["seconds"],
             report["burst_at_ns"] / 1e9))
    for window in ("pre", "post", "tail"):
        stats = report[window]
        print("  %-4s burst: miss rate %6.2f%%  (%d misses / %d "
              "releases)" % (window, 100.0 * stats["miss_rate"],
                             stats["deadline_misses"],
                             stats["releases"]))
    print("  quarantined: %s"
          % (", ".join(report["quarantined"]) or "-"))
    monitor = report.get("monitor")
    if monitor:
        print("  monitor: %d checks, %d violations, %d quarantines"
              % (monitor["checks_total"], monitor["violations_total"],
                 monitor["quarantines_total"]))
        for violation in monitor["violations"]:
            print("    %8.3f s  %s/%s  p=%.3g"
                  % (violation["time_ns"] / 1e9,
                     violation["component"], violation["clause"],
                     violation["p_value"]))


def main(argv=None):
    """Run the scenario; returns a process exit code."""
    args = _parse_args(sys.argv[2:] if argv is None else argv)
    kwargs = {"seed": args.seed, "seconds": args.seconds,
              "epoch_ns": args.epoch_ms * MSEC}
    if args.compare:
        reports = run_comparison(**kwargs)
        _print_arm(reports["static"])
        _print_arm(reports["stochastic"])
        monitored_tail = reports["stochastic"]["tail"]["miss_rate"]
        if monitored_tail > 0:
            print("static tail miss rate is %.1fx the monitored one"
                  % (reports["static"]["tail"]["miss_rate"]
                     / monitored_tail))
        else:
            print("static tail miss rate is %.2f%%; the monitored "
                  "arm's is zero"
                  % (100.0
                     * reports["static"]["tail"]["miss_rate"]))
        document = reports
    else:
        document = run_bursty(monitor=not args.static, **kwargs)
        _print_arm(document)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
        print("wrote report to %s" % args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
