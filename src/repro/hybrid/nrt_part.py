"""The non-real-time (management) half of the hybrid component.

"In the non real-time part, we implemented a configuration specific
interface containing methods for getting/setting component parameters or
getting the component state" (section 3.1).  This half is what the
DRCR-registered management service ultimately talks to.  It never blocks
and never touches the inter-component data path.
"""

from repro.hybrid.protocol import CommandKind


class NonRealTimePart:
    """Management-side operations for one hybrid component."""

    def __init__(self, ctx, bridge, kernel):
        self.ctx = ctx
        self.bridge = bridge
        self.kernel = kernel
        #: Replies collected from the status mailbox, newest last.
        self.reply_log = []

    @property
    def task(self):
        """The RT task (None before start)."""
        return self.ctx.task

    # ------------------------------------------------------------------
    # suspend / resume
    # ------------------------------------------------------------------
    def suspend(self, graceful=False):
        """Suspend the RT task.

        ``graceful=False`` (default) suspends immediately through the
        kernel, like LXRT's ``rt_task_suspend`` syscall.  ``graceful=
        True`` queues a SUSPEND command instead: the task parks itself
        at its next job boundary (bounded by one period).
        """
        if graceful:
            self.bridge.send_command(CommandKind.SUSPEND)
        else:
            self.kernel.suspend_task(self.task)

    def resume(self):
        """Resume the RT task (immediate, like ``rt_task_resume``)."""
        if self.task.suspended:
            self.kernel.resume_task(self.task)

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    def set_property(self, name, value):
        """Queue a property write; the RT side applies it at its next
        command poll (asynchronous, section 3.2)."""
        return self.bridge.set_property(name, value) is not None

    def get_property(self, name):
        """Read a property.

        The property store is conceptually a shared segment owned by
        the RT side; reading it directly is a plain shared-memory read
        (no round trip), exactly as the prototype's JNI part reads its
        RT task's parameter block.
        """
        return self.ctx.properties.get(name)

    def request_ping(self):
        """Queue a PING; the reply lands after the RT task's next job."""
        return self.bridge.ping() is not None

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------
    def get_status(self):
        """Status snapshot: task state + counters + bridge health."""
        self._drain()
        status = {
            "component": self.ctx.name,
            "job_index": self.ctx.job_index,
            "last_latency_ns": self.ctx.last_latency,
            "properties": dict(self.ctx.properties),
            "bridge": self.bridge.stats(),
        }
        if self.task is not None:
            status.update(self.task.status())
            status["measured_utilization"] = \
                self._measured_utilization()
        return status

    def _measured_utilization(self):
        """CPU fraction consumed since activation (budget enforcement
        compares this against the declared cpuusage)."""
        activated_at = getattr(self.ctx, "activated_at", None) or 0
        window = self.kernel.now - activated_at
        if window <= 0:
            return 0.0
        return self.task.stats.cpu_time_ns / window

    def last_reply(self, kind=None):
        """Most recent reply (optionally of one command kind)."""
        self._drain()
        for reply in reversed(self.reply_log):
            if kind is None or reply.kind is kind:
                return reply
        return None

    def _drain(self):
        self.reply_log.extend(self.bridge.drain_replies())
