"""The Hybrid Real-time Component (HRC) split container (section 3).

One component = a small RT part (an RTAI-style task polling its command
mailbox) + a large non-RT management part (OSGi side), bridged by the
asynchronous command protocol of section 3.2.
"""

from repro.hybrid.bridge import CommandBridge
from repro.hybrid.container import (
    HybridContainer,
    default_container_factory,
    make_container_factory,
)
from repro.hybrid.context import RTContext, bind_ports, unbind_ports
from repro.hybrid.implementation import (
    ImplementationRegistry,
    RTImplementation,
    SyntheticImplementation,
    default_registry,
    register_implementation,
)
from repro.hybrid.nrt_part import NonRealTimePart
from repro.hybrid.protocol import Command, CommandKind, Reply
from repro.hybrid.rt_part import RealTimePart

__all__ = [
    "bind_ports",
    "Command",
    "CommandBridge",
    "CommandKind",
    "default_container_factory",
    "default_registry",
    "HybridContainer",
    "ImplementationRegistry",
    "make_container_factory",
    "NonRealTimePart",
    "RealTimePart",
    "register_implementation",
    "Reply",
    "RTContext",
    "RTImplementation",
    "SyntheticImplementation",
    "unbind_ports",
]
