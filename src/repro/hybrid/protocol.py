"""The intra-component command protocol (paper section 3.2).

"Asynchronized communication mode was chosen as the basic communication
methods between real-time and non-real-time part[s]. ...  When the task
finishes its main functional routine, it tries to read command message
sent asynchronously through the management interface."

Commands flow non-RT -> RT through the command mailbox; replies flow
RT -> non-RT through the status mailbox.  The RT side only ever polls
(non-blocking receive) after completing its functional routine, so a
slow or absent management side can never delay the real-time work.
"""

import enum
import itertools


class CommandKind(enum.Enum):
    """Commands the management part may send to the RT task."""

    SET_PROPERTY = "set_property"
    GET_PROPERTY = "get_property"
    PING = "ping"
    SUSPEND = "suspend"
    STOP = "stop"


class Command:
    """One command message (non-RT -> RT).

    ``sent_at_ns`` is stamped by the bridge when the command is queued;
    it rides through the matching :class:`Reply` so the bridge can
    observe the full management round-trip time.  ``injected`` marks
    commands synthesized by the fault-injection subsystem (the
    ``mailbox_flood`` injector) so tests and reports can separate
    chaos traffic from real management traffic.
    """

    __slots__ = ("seq", "kind", "name", "value", "sent_at_ns",
                 "injected")

    _seq = itertools.count(1)

    def __init__(self, kind, name=None, value=None):
        self.seq = next(Command._seq)
        self.kind = kind
        self.name = name
        self.value = value
        self.sent_at_ns = None
        self.injected = False

    def __repr__(self):
        return "Command(#%d %s %r=%r)" % (self.seq, self.kind.value,
                                          self.name, self.value)


class Reply:
    """One reply message (RT -> non-RT)."""

    __slots__ = ("seq", "kind", "name", "value", "job_index", "time_ns",
                 "sent_at_ns")

    def __init__(self, command, value, job_index, time_ns):
        self.seq = command.seq
        self.kind = command.kind
        self.name = command.name
        self.value = value
        self.job_index = job_index
        self.time_ns = time_ns
        self.sent_at_ns = command.sent_at_ns

    def __repr__(self):
        return "Reply(#%d %s %r=%r @job%d)" % (
            self.seq, self.kind.value, self.name, self.value,
            self.job_index)
