"""Component implementations and the bincode registry.

The descriptor's ``implementation bincode`` attribute names the class
providing the component's behaviour ("The component instances will be
created by DRCR by referring to this attribute", section 2.3).  In the
reproduction, bincodes resolve through an :class:`ImplementationRegistry`
to :class:`RTImplementation` subclasses.

Per the paper's section 2.4, implementations *do* have ``init`` and
``uninit`` hooks but those are **not** exposed on the management
interface -- the container invokes them at activation/deactivation, and
nothing else can.
"""

from repro.core.errors import DRComError


class RTImplementation:
    """Behaviour hooks of a hybrid real-time component.

    ``compute_ns`` and ``execute`` together form one job of the RT
    task's functional routine: ``compute_ns`` declares how much CPU the
    job burns (simulated, preemptible) and ``execute`` performs the
    zero-time side effects (port reads/writes) at job completion.
    """

    def init(self, ctx):
        """Called once at activation (NOT on the management interface)."""

    def compute_ns(self, ctx):
        """CPU time this job consumes; defaults to the contract's
        derived WCET (cpuusage * period)."""
        wcet = ctx.contract.wcet_ns
        return wcet if wcet is not None else 0

    def execute(self, ctx):
        """Functional side effects of one job (port I/O, state)."""

    def on_command(self, ctx, command):
        """Hook for implementation-specific commands; return a reply
        value or None to fall through to the standard handling."""
        return None

    def uninit(self, ctx):
        """Called once at deactivation (NOT on the management
        interface)."""


class SyntheticImplementation(RTImplementation):
    """Default behaviour for unknown bincodes: a simulated computing
    job, like the paper's test application ("one of two components will
    do some simulated computing job", section 4.2).

    Each job burns the contract WCET, stamps a monotonically increasing
    sequence number into every outport, and polls every inport.
    """

    def init(self, ctx):
        ctx.properties.setdefault("synthetic.sequence", 0)

    def execute(self, ctx):
        sequence = ctx.properties["synthetic.sequence"] + 1
        ctx.properties["synthetic.sequence"] = sequence
        for port in ctx.descriptor.outports:
            if port.data_type == "Byte":
                ctx.write_outport(port.name, sequence % 256)
            elif port.data_type == "Float":
                ctx.write_outport(port.name, float(sequence))
            else:
                ctx.write_outport(port.name, sequence)
        for port in ctx.descriptor.inports:
            ctx.read_inport(port.name)


class ImplementationRegistry:
    """Maps bincode names to implementation factories."""

    def __init__(self, strict=False):
        self._factories = {}
        #: When strict, unknown bincodes raise instead of falling back
        #: to :class:`SyntheticImplementation`.
        self.strict = strict

    def register(self, bincode, factory):
        """Register ``factory`` (a zero-arg callable producing an
        :class:`RTImplementation`) under a bincode name."""
        self._factories[bincode] = factory

    def unregister(self, bincode):
        """Remove a bincode registration."""
        self._factories.pop(bincode, None)

    def __contains__(self, bincode):
        return bincode in self._factories

    def create(self, bincode):
        """Instantiate the implementation for ``bincode``."""
        factory = self._factories.get(bincode)
        if factory is not None:
            return factory()
        if self.strict:
            raise DRComError(
                "no implementation registered for bincode %r" % bincode)
        return SyntheticImplementation()


#: The default registry the hybrid container factory consults.
default_registry = ImplementationRegistry()


def register_implementation(bincode, factory):
    """Register into the default registry (module-level convenience)."""
    default_registry.register(bincode, factory)
