"""The execution context handed to component implementations.

An implementation's hooks receive an :class:`RTContext`: its window onto
the ports, properties and timing facts of its component.  Port access
maps straight onto the RT-domain kernel objects -- shared memory reads/
writes and mailbox polls -- never through the OSGi side (paper section
3.3: "the non real-time OSGi implementation will not directly interfere
with the inter task communication").
"""

from repro.core.ports import PortDirection, PortInterface
from repro.rtos.fifo import RTFifo
from repro.rtos.mailbox import Mailbox
from repro.rtos.shm import SharedMemory


class RTContext:
    """Per-component execution context (one per activation)."""

    def __init__(self, descriptor, kernel):
        self.descriptor = descriptor
        self.kernel = kernel
        #: Live configuration properties.  Conceptually a shared segment
        #: owned by the RT side: the management part *reads* it directly
        #: but *writes* only through the command queue.
        self.properties = descriptor.property_dict()
        #: Kernel objects backing the ports (name -> SHM or Mailbox).
        self.port_objects = {}
        #: The RT task once started (set by the container).
        self.task = None
        #: Jobs completed since activation.
        self.job_index = 0
        #: When the component was activated (set by the container).
        self.activated_at = None
        #: Scheduling latency of the current job (ns).
        self.last_latency = None

    @property
    def name(self):
        """The component name."""
        return self.descriptor.name

    @property
    def contract(self):
        """The component's real-time contract."""
        return self.descriptor.contract

    def now(self):
        """Current simulated time (ns)."""
        return self.kernel.now

    # ------------------------------------------------------------------
    # port access
    # ------------------------------------------------------------------
    def _port(self, name, direction):
        for port in self.descriptor.ports:
            if port.name == name.upper() and port.direction is direction:
                obj = self.port_objects.get(port.name)
                if obj is None:
                    raise KeyError(
                        "port %s of %s is not bound" % (name, self.name))
                return port, obj
        raise KeyError("component %s has no %s named %r"
                       % (self.name, direction.value, name))

    def read_inport(self, name):
        """Read the current data of an inport.

        SHM ports return the whole segment (a list); mailbox ports
        return the next message or ``None`` (non-blocking poll).
        """
        port, obj = self._port(name, PortDirection.IN)
        if isinstance(obj, SharedMemory):
            return obj.read()
        if isinstance(obj, RTFifo):
            return obj.read()
        return obj.receive_external()

    def inport_age_ns(self, name):
        """Nanoseconds since the inport's SHM segment was written."""
        port, obj = self._port(name, PortDirection.IN)
        if not isinstance(obj, SharedMemory):
            raise TypeError("inport %s is not shared memory" % name)
        return obj.age_ns()

    def write_outport(self, name, values):
        """Write data to an outport.

        SHM ports take a full segment (list) or a scalar (broadcast to
        element 0); mailbox ports take one message.  Returns True when
        the write landed (mailbox sends may drop when full).
        """
        port, obj = self._port(name, PortDirection.OUT)
        if isinstance(obj, SharedMemory):
            if isinstance(values, (list, tuple)):
                obj.write(list(values), writer=self.name)
            else:
                obj.write_at(0, values, writer=self.name)
            return True
        if isinstance(obj, Mailbox):
            return obj.send_external(values)
        if isinstance(obj, RTFifo):
            return obj.put(values)
        raise TypeError("outport %s has unsupported backing %r"
                        % (name, obj))

    # ------------------------------------------------------------------
    # digital I/O (Figure 3: "connect to sensors or actuators")
    # ------------------------------------------------------------------
    def read_sensor(self, channel):
        """Sample a digital-I/O input channel."""
        dio = getattr(self.kernel, "dio", None)
        if dio is None:
            raise RuntimeError(
                "no DIO module attached; call repro.rtos.dio"
                ".attach_dio(kernel) first")
        return dio.read(channel)

    def write_actuator(self, channel, value):
        """Drive a digital-I/O output channel."""
        dio = getattr(self.kernel, "dio", None)
        if dio is None:
            raise RuntimeError(
                "no DIO module attached; call repro.rtos.dio"
                ".attach_dio(kernel) first")
        dio.write(channel, value)

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    def get_property(self, name, default=None):
        """Read a live property."""
        return self.properties.get(name, default)

    def status_snapshot(self):
        """Small status dict replies carry."""
        return {
            "job_index": self.job_index,
            "last_latency_ns": self.last_latency,
            "time_ns": self.now(),
        }

    def __repr__(self):
        return "RTContext(%s, job=%d)" % (self.name, self.job_index)


def bind_ports(ctx, kernel, bindings):
    """Create/attach the kernel objects backing a component's ports.

    Outports are *owned*: the SHM segment or mailbox is created (or
    attached, for an already-existing shared reference) under the port's
    own name -- the global communication reference of section 2.3.
    Inports attach to the provider's object named in the binding.
    """
    descriptor = ctx.descriptor
    for port in descriptor.outports:
        if port.interface is PortInterface.RTAI_SHM:
            obj = kernel.shm_alloc(port.name, port.data_type, port.size,
                                   owner=ctx.name)
        elif port.interface is PortInterface.RTAI_FIFO:
            obj = (kernel.lookup(port.name) if kernel.exists(port.name)
                   else kernel.fifo_create(port.name,
                                           capacity=port.size))
        else:
            if kernel.exists(port.name):
                obj = kernel.lookup(port.name)
            else:
                obj = kernel.mailbox(port.name, capacity=port.size)
        ctx.port_objects[port.name] = obj
    by_inport = {binding.inport.name: binding for binding in bindings}
    for port in descriptor.inports:
        binding = by_inport.get(port.name)
        if binding is None:
            raise KeyError("inport %s of %s has no binding"
                           % (port.name, ctx.name))
        if port.interface is PortInterface.RTAI_SHM:
            obj = kernel.shm_alloc(binding.kernel_object, port.data_type,
                                   port.size, owner=ctx.name)
        else:
            obj = kernel.lookup(binding.kernel_object)
        ctx.port_objects[port.name] = obj


def unbind_ports(ctx, kernel):
    """Release the kernel objects backing a component's ports."""
    descriptor = ctx.descriptor
    for port in descriptor.outports + descriptor.inports:
        obj = ctx.port_objects.pop(port.name, None)
        if obj is None:
            continue
        if isinstance(obj, SharedMemory):
            kernel.shm_free(obj.name, owner=ctx.name)
        elif isinstance(obj, (Mailbox, RTFifo)):
            # Mailboxes and FIFOs are owned by the outport side only.
            if port.direction is PortDirection.OUT \
                    and kernel.exists(obj.name):
                kernel.free_object(obj.name)
