"""The real-time half of the hybrid component.

"The real-time part of each HRC is an independent concurrent process,
whose functionality is defined by the methods of a standard object"
(section 3.1).  Here: the RT task body generator.  The body's shape is
the paper's prescribed loop -- functional routine first, then a
*non-blocking* poll of the command mailbox ("when the task finishes its
main functional routine, it tries to read command message sent
asynchronously", section 3.2).
"""

from repro.hybrid.protocol import CommandKind, Reply
from repro.rtos.requests import Compute, Receive, SuspendSelf, WaitPeriod
from repro.rtos.task import TaskType


class RealTimePart:
    """Builds and owns the RT task body for one component."""

    def __init__(self, ctx, implementation, bridge):
        self.ctx = ctx
        self.implementation = implementation
        self.bridge = bridge

    def body(self, task):
        """The task body generator handed to the kernel."""
        if self.ctx.contract.task_type is TaskType.PERIODIC:
            return self._periodic_body(task)
        return self._aperiodic_body(task)

    # ------------------------------------------------------------------
    def _periodic_body(self, task):
        ctx = self.ctx
        while True:
            latency = yield WaitPeriod()
            ctx.last_latency = latency
            compute = self.implementation.compute_ns(ctx)
            if compute > 0:
                yield Compute(compute)
            self.implementation.execute(ctx)
            ctx.job_index += 1
            # Asynchronous management poll -- never blocks (section 3.2).
            suspend = yield from self._poll_commands()
            if suspend == "stop":
                return
            if suspend == "suspend":
                yield SuspendSelf()

    def _aperiodic_body(self, task):
        ctx = self.ctx
        compute = self.implementation.compute_ns(ctx)
        if compute > 0:
            yield Compute(compute)
        self.implementation.execute(ctx)
        ctx.job_index += 1
        yield from self._poll_commands()

    # ------------------------------------------------------------------
    def _poll_commands(self):
        """Drain the command mailbox without blocking.

        Returns "suspend"/"stop" when such a command arrived, else None.
        Implemented as a sub-generator: the Receive requests still flow
        through the kernel.
        """
        outcome = None
        while True:
            command = yield Receive(self.bridge.command_mailbox,
                                    blocking=False)
            if command is None:
                return outcome
            result = self._handle(command)
            if result == "stop":
                return "stop"  # terminal: outranks anything queued
            if result == "suspend":
                outcome = result

    def _handle(self, command):
        ctx = self.ctx
        custom = self.implementation.on_command(ctx, command)
        if custom is not None:
            self._reply(command, custom)
            return None
        if command.kind is CommandKind.SET_PROPERTY:
            ctx.properties[command.name] = command.value
            self._reply(command, True)
            return None
        if command.kind is CommandKind.GET_PROPERTY:
            self._reply(command, ctx.properties.get(command.name))
            return None
        if command.kind is CommandKind.PING:
            self._reply(command, ctx.status_snapshot())
            return None
        if command.kind is CommandKind.SUSPEND:
            self._reply(command, True)
            return "suspend"
        if command.kind is CommandKind.STOP:
            self._reply(command, True)
            return "stop"
        self._reply(command, None)
        return None

    def _reply(self, command, value):
        reply = Reply(command, value, self.ctx.job_index, self.ctx.now())
        # Non-blocking: a full status mailbox drops the reply rather
        # than stalling the RT task.
        self.bridge.status_mailbox.send_external(reply)
