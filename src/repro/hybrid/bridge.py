"""The command bridge: the JNI/RPC channel of the split architecture.

In the authors' prototype the OSGi (Java) side reaches its RT task
through JNI and RTAI's inter-process call; here both sides live in one
process, but the *discipline* is identical and enforced:

* the non-RT side **never blocks** -- sends are non-blocking mailbox
  puts (a full mailbox counts a drop and returns False);
* the RT side **never waits** -- it polls the command mailbox after its
  functional routine (see :mod:`repro.hybrid.rt_part`).

Benchmark A4 measures what this poll costs the RT task.
"""

from repro.hybrid.protocol import Command, CommandKind

#: Round-trip-time histogram buckets (ns).  Turnaround is bounded by
#: one task period plus job time (benchmark A4), so the grid spans
#: 10 us .. 100 ms.
ROUNDTRIP_BOUNDS_NS = (
    10_000, 50_000, 100_000, 250_000, 500_000, 1_000_000,
    2_000_000, 5_000_000, 10_000_000, 100_000_000,
)


class RetryState:
    """Progress of one :meth:`CommandBridge.send_command_reliable`.

    ``delivered`` and ``gave_up`` are mutually exclusive and both start
    False (the retry loop runs on simulator time); ``command`` holds
    the successfully queued :class:`Command` once delivered.
    """

    __slots__ = ("kind", "name", "value", "attempts", "delivered",
                 "gave_up", "command")

    def __init__(self, kind, name=None, value=None):
        self.kind = kind
        self.name = name
        self.value = value
        self.attempts = 0
        self.delivered = False
        self.gave_up = False
        self.command = None

    def __repr__(self):
        status = "delivered" if self.delivered \
            else "gave_up" if self.gave_up else "pending"
        return "RetryState(%s, %s after %d attempts)" % (
            self.kind.value, status, self.attempts)


class CommandBridge:
    """The mailbox pair plus bookkeeping for one hybrid component."""

    def __init__(self, kernel, component_name, capacity=16):
        self.kernel = kernel
        self.component_name = component_name
        self.command_mailbox = kernel.mailbox(
            kernel.unique_name("C"), capacity=capacity)
        self.status_mailbox = kernel.mailbox(
            kernel.unique_name("S"), capacity=capacity)
        self.commands_sent = 0
        self.commands_dropped = 0
        self.replies_received = 0
        self._closed = False
        # Telemetry: every bridge of the platform shares these (the
        # registry get-or-creates by name), so they aggregate the whole
        # management plane, not one component.
        metrics = kernel.sim.telemetry.registry("hybrid")
        self._m_sent = metrics.counter("commands_sent_total")
        self._m_dropped = metrics.counter("commands_dropped_total")
        self._m_replies = metrics.counter("replies_received_total")
        self._m_depth = metrics.gauge("command_mailbox_depth")
        self._m_roundtrip = metrics.histogram("command_roundtrip_ns",
                                              ROUNDTRIP_BOUNDS_NS)
        self._m_retries = metrics.counter("command_retries_total")
        self._m_retry_giveups = metrics.counter(
            "command_retry_giveups_total")
        self._m_recovered = metrics.counter("commands_recovered_total")

    # ------------------------------------------------------------------
    # non-RT side
    # ------------------------------------------------------------------
    def send_command(self, kind, name=None, value=None):
        """Queue a command; returns the Command or None when dropped."""
        command = Command(kind, name, value)
        command.sent_at_ns = self.kernel.now
        if self.command_mailbox.send_external(command):
            self.commands_sent += 1
            self._m_sent.inc()
            self._m_depth.set(len(self.command_mailbox))
            return command
        self.commands_dropped += 1
        self._m_dropped.inc()
        return None

    def send_command_reliable(self, kind, name=None, value=None,
                              backoff=None):
        """Queue a command, retrying dropped sends with capped
        exponential backoff (+jitter).

        The plain :meth:`send_command` preserves the paper's §3.2
        discipline -- never block, drop on overflow -- but management
        callers often *want* eventual delivery.  This wrapper retries a
        dropped send after ``backoff.delay_ns(attempt)`` (default
        :class:`~repro.faults.recovery.BackoffPolicy`: 1 ms doubling to
        a 100 ms cap, 6 attempts, ±10 % jitter from the simulator's
        ``hybrid/backoff`` stream) and gives up after the cap.

        Returns a :class:`RetryState`; the caller polls ``delivered`` /
        ``gave_up`` (retries run on simulator time, so resolution is
        asynchronous by construction).
        """
        if backoff is None:
            from repro.faults.recovery import BackoffPolicy
            backoff = BackoffPolicy()
        state = RetryState(kind, name, value)
        self._attempt_reliable(state, backoff)
        return state

    def _attempt_reliable(self, state, backoff):
        if self._closed:
            state.gave_up = True
            return
        state.attempts += 1
        command = self.send_command(state.kind, state.name, state.value)
        if command is not None:
            state.delivered = True
            state.command = command
            if state.attempts > 1:
                self._m_recovered.inc()
            return
        if state.attempts >= backoff.max_attempts:
            state.gave_up = True
            self._m_retry_giveups.inc()
            self.kernel.sim.trace.record(
                self.kernel.now, "command_retry_giveup",
                component=self.component_name, kind=state.kind.value,
                attempts=state.attempts)
            return
        self._m_retries.inc()
        delay = backoff.delay_ns(
            state.attempts,
            self.kernel.sim.rng.stream("hybrid/backoff"))
        self.kernel.sim.trace.record(
            self.kernel.now, "command_retry",
            component=self.component_name, kind=state.kind.value,
            attempt=state.attempts, delay_ns=delay)
        self.kernel.sim.schedule(delay, self._attempt_reliable, state,
                                 backoff,
                                 label="retry:%s" % self.component_name)

    def drain_replies(self):
        """Collect all pending replies (non-blocking)."""
        replies = []
        now = self.kernel.now
        while True:
            reply = self.status_mailbox.receive_external()
            if reply is None:
                break
            if reply.sent_at_ns is not None:
                self._m_roundtrip.observe(now - reply.sent_at_ns)
            replies.append(reply)
        self.replies_received += len(replies)
        self._m_replies.inc(len(replies))
        return replies

    def close(self):
        """Free the mailboxes."""
        if self._closed:
            return
        self._closed = True
        self.kernel.free_object(self.command_mailbox.name)
        self.kernel.free_object(self.status_mailbox.name)

    def stats(self):
        """Bridge counters (surfaced in get_status)."""
        return {
            "commands_sent": self.commands_sent,
            "commands_dropped": self.commands_dropped,
            "replies_received": self.replies_received,
            "commands_pending": len(self.command_mailbox),
            "replies_pending": len(self.status_mailbox),
        }

    # Convenience wrappers -------------------------------------------------
    def ping(self):
        """Queue a PING (reply arrives after the next RT job)."""
        return self.send_command(CommandKind.PING)

    def set_property(self, name, value):
        """Queue a SET_PROPERTY."""
        return self.send_command(CommandKind.SET_PROPERTY, name, value)

    def get_property(self, name):
        """Queue a GET_PROPERTY (value arrives in a reply)."""
        return self.send_command(CommandKind.GET_PROPERTY, name)
