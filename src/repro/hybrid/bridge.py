"""The command bridge: the JNI/RPC channel of the split architecture.

In the authors' prototype the OSGi (Java) side reaches its RT task
through JNI and RTAI's inter-process call; here both sides live in one
process, but the *discipline* is identical and enforced:

* the non-RT side **never blocks** -- sends are non-blocking mailbox
  puts (a full mailbox counts a drop and returns False);
* the RT side **never waits** -- it polls the command mailbox after its
  functional routine (see :mod:`repro.hybrid.rt_part`).

Benchmark A4 measures what this poll costs the RT task.
"""

from repro.hybrid.protocol import Command, CommandKind


class CommandBridge:
    """The mailbox pair plus bookkeeping for one hybrid component."""

    def __init__(self, kernel, component_name, capacity=16):
        self.kernel = kernel
        self.component_name = component_name
        self.command_mailbox = kernel.mailbox(
            kernel.unique_name("C"), capacity=capacity)
        self.status_mailbox = kernel.mailbox(
            kernel.unique_name("S"), capacity=capacity)
        self.commands_sent = 0
        self.commands_dropped = 0
        self.replies_received = 0
        self._closed = False

    # ------------------------------------------------------------------
    # non-RT side
    # ------------------------------------------------------------------
    def send_command(self, kind, name=None, value=None):
        """Queue a command; returns the Command or None when dropped."""
        command = Command(kind, name, value)
        if self.command_mailbox.send_external(command):
            self.commands_sent += 1
            return command
        self.commands_dropped += 1
        return None

    def drain_replies(self):
        """Collect all pending replies (non-blocking)."""
        replies = []
        while True:
            reply = self.status_mailbox.receive_external()
            if reply is None:
                break
            replies.append(reply)
        self.replies_received += len(replies)
        return replies

    def close(self):
        """Free the mailboxes."""
        if self._closed:
            return
        self._closed = True
        self.kernel.free_object(self.command_mailbox.name)
        self.kernel.free_object(self.status_mailbox.name)

    def stats(self):
        """Bridge counters (surfaced in get_status)."""
        return {
            "commands_sent": self.commands_sent,
            "commands_dropped": self.commands_dropped,
            "replies_received": self.replies_received,
            "commands_pending": len(self.command_mailbox),
            "replies_pending": len(self.status_mailbox),
        }

    # Convenience wrappers -------------------------------------------------
    def ping(self):
        """Queue a PING (reply arrives after the next RT job)."""
        return self.send_command(CommandKind.PING)

    def set_property(self, name, value):
        """Queue a SET_PROPERTY."""
        return self.send_command(CommandKind.SET_PROPERTY, name, value)

    def get_property(self, name):
        """Queue a GET_PROPERTY (value arrives in a reply)."""
        return self.send_command(CommandKind.GET_PROPERTY, name)
