"""The hybrid split container (paper section 3.1, Figure 3).

"The result is a split architecture where we have a large non-real-time
container, which is based on OSGi", and a small real-time part running
on the RT kernel.  The :class:`HybridContainer` assembles both halves
for one component: it binds ports to RT-domain kernel objects, creates
the command bridge, invokes the implementation's (non-exposed) init/
uninit hooks, and starts/stops the RT task -- all strictly at the DRCR's
command.
"""

from repro.hybrid.bridge import CommandBridge
from repro.hybrid.context import RTContext, bind_ports, unbind_ports
from repro.hybrid.implementation import default_registry
from repro.hybrid.nrt_part import NonRealTimePart
from repro.hybrid.rt_part import RealTimePart
from repro.rtos.task import TaskType


class HybridContainer:
    """One component's runtime instance: RT part + non-RT part."""

    def __init__(self, component, kernel,
                 implementation_registry=None, collect_latency=True):
        self.component = component
        self.kernel = kernel
        registry = implementation_registry or default_registry
        self.implementation = registry.create(
            component.descriptor.implementation)
        self.ctx = RTContext(component.descriptor, kernel)
        self.bridge = None
        self.rt_part = None
        self.nrt_part = None
        self.task = None
        self.collect_latency = collect_latency
        self._active = False

    # ------------------------------------------------------------------
    # lifecycle (invoked by the DRCR only)
    # ------------------------------------------------------------------
    def activate(self, bindings):
        """Bring the component up: ports, bridge, init, task start."""
        if self._active:
            return
        descriptor = self.component.descriptor
        contract = descriptor.contract
        bind_ports(self.ctx, self.kernel, bindings)
        self.bridge = CommandBridge(self.kernel, descriptor.name)
        self.rt_part = RealTimePart(self.ctx, self.implementation,
                                    self.bridge)
        self.nrt_part = NonRealTimePart(self.ctx, self.bridge, self.kernel)
        # The (non-exposed) init hook runs before the task exists.
        self.implementation.init(self.ctx)
        self.task = self.kernel.create_task(
            descriptor.task_name,
            self.rt_part.body,
            priority=contract.priority,
            cpu=contract.cpu,
            task_type=contract.task_type,
            period_ns=contract.period_ns,
            deadline_ns=contract.deadline_ns,
            collect_latency=self.collect_latency,
            hybrid=True,
        )
        self.ctx.task = self.task
        self.ctx.activated_at = self.kernel.now
        self.kernel.start_task(self.task)
        self._active = True

    def deactivate(self):
        """Tear the component down: task, uninit, bridge, ports."""
        if not self._active:
            return
        self._active = False
        if self.task is not None:
            self.kernel.delete_task(self.task)
            self.task = None
            self.ctx.task = None
        # The (non-exposed) uninit hook runs after the task is gone.
        self.implementation.uninit(self.ctx)
        if self.bridge is not None:
            self.bridge.close()
            self.bridge = None
        unbind_ports(self.ctx, self.kernel)

    def release(self):
        """Release one job of an aperiodic or sporadic component.

        Sporadic releases are throttled to the contract's minimum
        inter-arrival time by the kernel.
        """
        if self.component.descriptor.task_type not in (
                TaskType.APERIODIC, TaskType.SPORADIC):
            raise TypeError(
                "release() is for aperiodic/sporadic components")
        self.kernel.release_task(self.task)

    # ------------------------------------------------------------------
    # management delegation (the container protocol DRCR relies on)
    # ------------------------------------------------------------------
    def suspend(self):
        """Suspend the RT task (management path)."""
        self.nrt_part.suspend()

    def resume(self):
        """Resume the RT task (management path)."""
        self.nrt_part.resume()

    def get_property(self, name):
        """Read a live property."""
        return self.nrt_part.get_property(name)

    def set_property(self, name, value):
        """Queue a property write to the RT side."""
        return self.nrt_part.set_property(name, value)

    def get_status(self):
        """Status snapshot (task + bridge)."""
        return self.nrt_part.get_status()

    def __repr__(self):
        return "HybridContainer(%s, %s)" % (
            self.component.name, "active" if self._active else "inactive")


def default_container_factory(component, drcr):
    """The factory DRCR uses when none is injected."""
    return HybridContainer(component, drcr.kernel)


def make_container_factory(implementation_registry=None,
                           collect_latency=True):
    """Build a customized container factory (e.g. a strict bincode
    registry, or latency collection disabled for big fleets)."""
    def factory(component, drcr):
        return HybridContainer(
            component, drcr.kernel,
            implementation_registry=implementation_registry,
            collect_latency=collect_latency)
    return factory
