"""Chrome trace-event export of the simulator's structured trace.

The :class:`~repro.sim.trace.TraceRecorder` already records everything
the kernel and the DRCR do; this module converts those typed records
into the `Trace Event Format`_ consumed by ``chrome://tracing`` and
`Perfetto <https://ui.perfetto.dev>`_, so an operator can *see* a run:
one timeline row per CPU with an execution slice per task occupancy,
instant markers for every kernel event, and a dedicated DRCR row for
lifecycle decisions.

Mapping
-------
* each simulated CPU becomes a thread (``tid = cpu``) of process 0;
* a ``dispatch`` record opens a **duration slice** (``"ph": "X"``)
  named after the task; the matching ``off_cpu`` record closes it, so
  slice widths are exact task occupancy, including preemption;
* every trace record additionally becomes an **instant event**
  (``"ph": "i"``) carrying its fields as ``args``, grouped under a
  category (see :data:`CATEGORY_GROUPS`) so event classes can be
  toggled in the viewer;
* DRCR component events (when passed) land on a synthetic "DRCR"
  thread (``tid =`` :data:`DRCR_TID`).

Timestamps: simulation time is integer nanoseconds; the trace-event
``ts`` field is microseconds, so values are divided by 1000 and may be
fractional (the format allows it; ``displayTimeUnit`` is set to "ns").

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

import json
import math

#: tid used for the synthetic DRCR decision row.
DRCR_TID = 1000

#: Trace-record categories grouped for the viewer's category filter.
CATEGORY_GROUPS = {
    "dispatch": "kernel.sched", "preempt": "kernel.sched",
    "off_cpu": "kernel.sched", "priority_change": "kernel.sched",
    "release": "kernel.release", "overrun": "kernel.release",
    "period_resume": "kernel.release",
    "task_release": "kernel.release",
    "task_release_overrun": "kernel.release",
    "release_while_suspended": "kernel.release",
    "sporadic_throttle": "kernel.release",
    "deadline_miss": "kernel.deadline",
    "block": "kernel.ipc", "wake": "kernel.ipc",
    "shm_alloc": "kernel.ipc", "shm_free": "kernel.ipc",
    "mbx_init": "kernel.ipc", "sem_init": "kernel.ipc",
    "res_sem_init": "kernel.ipc", "fifo_create": "kernel.ipc",
    "obj_free": "kernel.ipc",
    "task_create": "kernel.task", "task_start": "kernel.task",
    "task_end": "kernel.task", "task_delete": "kernel.task",
    "task_suspend": "kernel.task", "task_resume": "kernel.task",
    "task_self_suspend": "kernel.task", "task_fault": "kernel.task",
    "timer_start": "kernel.timer", "timer_stop": "kernel.timer",
    "load_register": "kernel.linux", "load_unregister": "kernel.linux",
    "watchdog": "kernel.watchdog",
    "placement": "drcr", "component": "drcr",
    "fault_inject": "faults",
    "quarantine": "drcr.recovery",
    "quarantine_release": "drcr.recovery",
    "descriptor_error": "drcr.recovery",
    "resolver_error": "drcr.recovery",
    "deactivation_error": "drcr.recovery",
    "command_retry": "hybrid.recovery",
    "command_retry_giveup": "hybrid.recovery",
}

#: Phases this exporter emits (also what the validator accepts).
_PHASES = frozenset({"X", "i", "M", "C"})


def _jsonable(value):
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return repr(value)


def _metadata(name, tid, label):
    return {"name": name, "ph": "M", "pid": 0, "tid": tid,
            "args": {"name": label}}


def chrome_trace_events(trace, component_events=None):
    """Convert trace records (and optional DRCR events) to a list of
    trace-event dicts.

    ``trace`` is any iterable of :class:`~repro.sim.trace.TraceRecord`;
    ``component_events`` an optional iterable of
    :class:`~repro.core.events.ComponentEvent`.
    """
    events = [_metadata("process_name", 0, "repro platform")]
    named_tids = set()
    running = {}        # cpu -> (task name, start ns)
    task_cpu = {}       # task name -> last dispatched cpu
    last_time = 0

    def name_tid(tid, label):
        if tid not in named_tids:
            named_tids.add(tid)
            events.append(_metadata("thread_name", tid, label))

    def close_slice(cpu, end_ns):
        task, start_ns = running.pop(cpu)
        events.append({
            "name": task, "cat": "kernel.exec", "ph": "X",
            "ts": start_ns / 1000.0, "dur": (end_ns - start_ns) / 1000.0,
            "pid": 0, "tid": cpu, "args": {},
        })

    for record in trace:
        fields = record.fields
        category = record.category
        last_time = record.time
        cpu = fields.get("cpu")
        if category == "dispatch":
            if cpu in running:
                close_slice(cpu, record.time)
            running[cpu] = (fields["task"], record.time)
            task_cpu[fields["task"]] = cpu
            name_tid(cpu, "CPU %d" % cpu)
        elif category == "off_cpu":
            if cpu in running and running[cpu][0] == fields["task"]:
                close_slice(cpu, record.time)
        tid = cpu if cpu is not None \
            else task_cpu.get(fields.get("task"), 0)
        name_tid(tid, "CPU %d" % tid)
        events.append({
            "name": category,
            "cat": CATEGORY_GROUPS.get(category, "kernel.other"),
            "ph": "i", "s": "t",
            "ts": record.time / 1000.0,
            "pid": 0, "tid": tid,
            "args": {key: _jsonable(value)
                     for key, value in fields.items()},
        })
    for cpu in list(running):
        close_slice(cpu, last_time)

    if component_events is not None:
        for event in component_events:
            name_tid(DRCR_TID, "DRCR")
            events.append({
                "name": event.event_type.value, "cat": "drcr",
                "ph": "i", "s": "t",
                "ts": event.time / 1000.0,
                "pid": 0, "tid": DRCR_TID,
                "args": {"component": event.component,
                         "reason": event.reason},
            })
    return events


def chrome_trace_dict(trace, component_events=None, telemetry=None):
    """The full JSON-object form of the trace (``traceEvents`` plus
    metadata); ``telemetry`` metrics, when given, ride along under
    ``otherData`` so one file carries the whole observation."""
    document = {
        "traceEvents": chrome_trace_events(trace, component_events),
        "displayTimeUnit": "ns",
        "otherData": {"producer": "repro.telemetry.chrome"},
    }
    if telemetry is not None:
        document["otherData"]["metrics"] = telemetry.as_dict()
    return document


def export_chrome_trace(trace, path, component_events=None,
                        telemetry=None, indent=None):
    """Write the trace as Chrome trace-event JSON to ``path``.

    Returns the exported document (handy for assertions).
    """
    document = chrome_trace_dict(trace, component_events, telemetry)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=indent)
        handle.write("\n")
    return document


def validate_chrome_trace(document):
    """Validate a document against the trace-event schema subset this
    exporter emits.  Raises :class:`ValueError` on the first violation;
    returns the number of events otherwise.

    Checked: JSON-object form with a ``traceEvents`` list; every event
    has a string ``name``, a known ``ph``, integer ``pid``/``tid``, a
    finite non-negative ``ts`` (except ``"M"`` metadata, where ``ts``
    is optional), a finite non-negative ``dur`` on complete events
    (``"X"``), and a dict ``args``; the whole document must survive a
    ``json.dumps`` round trip.
    """
    if not isinstance(document, dict):
        raise ValueError("trace document must be a JSON object, got %s"
                         % type(document).__name__)
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for index, event in enumerate(events):
        where = "traceEvents[%d]" % index
        if not isinstance(event, dict):
            raise ValueError("%s: not an object" % where)
        if not isinstance(event.get("name"), str):
            raise ValueError("%s: missing string 'name'" % where)
        phase = event.get("ph")
        if phase not in _PHASES:
            raise ValueError("%s: unknown phase %r" % (where, phase))
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ValueError("%s: missing integer %r" % (where, key))
        if phase != "M" or "ts" in event:
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or isinstance(ts, bool) \
                    or not math.isfinite(ts) or ts < 0:
                raise ValueError("%s: bad ts %r" % (where, ts))
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) \
                    or not math.isfinite(dur) or dur < 0:
                raise ValueError("%s: bad dur %r" % (where, dur))
        if "args" in event and not isinstance(event["args"], dict):
            raise ValueError("%s: args must be an object" % where)
    try:
        json.dumps(document)
    except (TypeError, ValueError) as error:
        raise ValueError("document is not JSON-serializable: %s" % error)
    return len(events)
