"""Metric instruments and the platform-wide registry.

Three instrument kinds, deliberately mirroring the Prometheus/OpenMetrics
vocabulary so operators can map them onto familiar tooling:

* :class:`Counter` -- a monotonically increasing count (dispatches,
  admission rejections, dropped commands);
* :class:`Gauge` -- a value that goes up and down (mailbox depth, live
  component population per lifecycle state);
* :class:`Histogram` -- fixed-bucket distribution built on the existing
  :class:`~repro.sim.stats.RunningStats`, so every histogram also carries
  exact streaming mean/min/max alongside its bucket counts.

Instruments live in a :class:`MetricsRegistry`, one per subsystem
(``sim``, ``rtos``, ``drcr``, ``hybrid``); the registries hang off a
single :class:`Telemetry` object owned by the simulator, so every layer
of the platform reaches the same telemetry through the object graph it
already holds (``kernel.sim.telemetry``, ``drcr.kernel.sim.telemetry``).

Cost discipline
---------------
Instrument updates sit on the kernel's hot paths (one counter per
simulator event, a few per dispatch), so they are plain attribute
arithmetic -- no locks, no string formatting, no dict lookups after the
instrument is created.  Creating instruments *is* a dict lookup
(get-or-create), so hot paths cache the instrument in an attribute at
construction time.  ``Telemetry(enabled=False)`` swaps every instrument
for a shared null object whose methods do nothing, which is the single
switch that turns the whole layer off.

Two further conventions keep the hot paths branch-free (see
docs/PERFORMANCE.md): callers that fire an instrument per event cache
the **bound method** (``counter.inc``, ``histogram.observe``) in an
attribute -- with telemetry disabled that attribute *is* the null
singleton's no-op, so there is no enabled/disabled test anywhere on the
path -- and per-event counters that admit batching are folded into one
``inc(n)`` per run window (``sim.events_total`` does this inside
``Simulator.run``).
"""

import bisect
import math

from repro.sim.stats import RunningStats

#: Default histogram buckets for nanosecond latencies.  Scheduling
#: latency in this repository can be *negative* (the calibrated timer
#: fires early; see Table 1), so the grid is symmetric around zero.
DEFAULT_LATENCY_BOUNDS_NS = (
    -50_000, -20_000, -10_000, -5_000, -1_000, 0,
    1_000, 5_000, 10_000, 20_000, 50_000, 100_000, 1_000_000,
)


class MetricsError(ValueError):
    """Raised on metric misuse: name/type clashes, bad bucket bounds."""


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        """Add ``amount`` (default 1; must not be negative)."""
        if amount < 0:
            raise MetricsError("counter %s cannot decrease" % self.name)
        self.value += amount

    def as_dict(self):
        """Plain-data (JSON-safe) view."""
        return {"type": self.kind, "value": self.value}

    def __repr__(self):
        return "Counter(%s=%d)" % (self.name, self.value)


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name):
        self.name = name
        self.value = 0

    def set(self, value):
        """Set the gauge to ``value``."""
        self.value = value

    def inc(self, amount=1):
        """Add ``amount`` (may be negative)."""
        self.value += amount

    def dec(self, amount=1):
        """Subtract ``amount``."""
        self.value -= amount

    def as_dict(self):
        """Plain-data (JSON-safe) view."""
        return {"type": self.kind, "value": self.value}

    def __repr__(self):
        return "Gauge(%s=%r)" % (self.name, self.value)


class Histogram:
    """Fixed-bucket histogram with exact streaming summary statistics.

    ``bounds`` are the *upper* bucket edges, strictly increasing; a
    sample ``v`` lands in the first bucket whose bound satisfies
    ``v <= bound``, and samples above the last bound land in the
    implicit overflow (``+inf``) bucket.  Mean/min/max/stdev come from a
    :class:`~repro.sim.stats.RunningStats`, so they are exact regardless
    of the bucket grid.
    """

    __slots__ = ("name", "bounds", "counts", "stats")
    kind = "histogram"

    def __init__(self, name, bounds=DEFAULT_LATENCY_BOUNDS_NS):
        bounds = tuple(bounds)
        if not bounds:
            raise MetricsError("histogram %s needs at least one bound"
                               % name)
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise MetricsError(
                "histogram %s bounds must be strictly increasing: %r"
                % (name, bounds))
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.stats = RunningStats()

    def observe(self, value):
        """Fold one sample into the distribution."""
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.stats.add(value)

    @property
    def count(self):
        """Total number of observed samples."""
        return self.stats.count

    def buckets(self):
        """``(upper_bound, count)`` pairs; the last bound is ``inf``."""
        return list(zip(self.bounds + (math.inf,), self.counts))

    def as_dict(self):
        """Plain-data (JSON-safe) view; min/max are None when empty."""
        empty = self.stats.count == 0
        return {
            "type": self.kind,
            "count": self.stats.count,
            "mean": None if empty else self.stats.mean,
            "min": None if empty else self.stats.minimum,
            "max": None if empty else self.stats.maximum,
            "buckets": {
                ("le_%g" % bound if bound != math.inf else "inf"): count
                for bound, count in self.buckets()
            },
        }

    def __repr__(self):
        return "Histogram(%s, n=%d)" % (self.name, self.stats.count)


# ----------------------------------------------------------------------
# null objects: what a disabled Telemetry hands out
# ----------------------------------------------------------------------
class NullCounter:
    """No-op counter (shared singleton: :data:`NULL_COUNTER`)."""

    __slots__ = ()
    kind = "counter"
    name = "null"
    value = 0

    def inc(self, amount=1):
        """Do nothing."""

    def as_dict(self):
        """Empty view."""
        return {}


class NullGauge:
    """No-op gauge (shared singleton: :data:`NULL_GAUGE`)."""

    __slots__ = ()
    kind = "gauge"
    name = "null"
    value = 0

    def set(self, value):
        """Do nothing."""

    def inc(self, amount=1):
        """Do nothing."""

    def dec(self, amount=1):
        """Do nothing."""

    def as_dict(self):
        """Empty view."""
        return {}


class NullHistogram:
    """No-op histogram (shared singleton: :data:`NULL_HISTOGRAM`)."""

    __slots__ = ()
    kind = "histogram"
    name = "null"
    count = 0

    def observe(self, value):
        """Do nothing."""

    def buckets(self):
        """Empty view."""
        return []

    def as_dict(self):
        """Empty view."""
        return {}


NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()


class NullRegistry:
    """Registry returned by a disabled :class:`Telemetry`: every
    instrument request yields the shared null singleton of that kind."""

    __slots__ = ()
    subsystem = "null"

    def counter(self, name):
        """The shared :data:`NULL_COUNTER`."""
        return NULL_COUNTER

    def gauge(self, name):
        """The shared :data:`NULL_GAUGE`."""
        return NULL_GAUGE

    def histogram(self, name, bounds=DEFAULT_LATENCY_BOUNDS_NS):
        """The shared :data:`NULL_HISTOGRAM`."""
        return NULL_HISTOGRAM

    def names(self):
        """Always empty."""
        return []

    def as_dict(self):
        """Always empty."""
        return {}


NULL_REGISTRY = NullRegistry()


# ----------------------------------------------------------------------
# the real registry
# ----------------------------------------------------------------------
class MetricsRegistry:
    """Named instruments for one subsystem, get-or-create semantics.

    Asking twice for the same name returns the same instrument (this is
    how the hybrid bridges of many components aggregate into one set of
    platform-wide counters); asking for the same name with a different
    instrument kind, or a histogram with different bounds, raises
    :class:`MetricsError` -- a metric name means one thing.
    """

    __slots__ = ("subsystem", "_metrics")

    def __init__(self, subsystem=""):
        self.subsystem = subsystem
        self._metrics = {}

    def _get_or_create(self, name, factory, kind):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory()
            return metric
        if metric.kind != kind:
            raise MetricsError(
                "metric %s.%s already exists as a %s, not a %s"
                % (self.subsystem, name, metric.kind, kind))
        return metric

    def counter(self, name):
        """Get or create the counter ``name``."""
        return self._get_or_create(name, lambda: Counter(name), "counter")

    def gauge(self, name):
        """Get or create the gauge ``name``."""
        return self._get_or_create(name, lambda: Gauge(name), "gauge")

    def histogram(self, name, bounds=DEFAULT_LATENCY_BOUNDS_NS):
        """Get or create the histogram ``name`` with ``bounds``."""
        metric = self._get_or_create(
            name, lambda: Histogram(name, bounds), "histogram")
        if metric.bounds != tuple(bounds):
            raise MetricsError(
                "histogram %s.%s already exists with bounds %r"
                % (self.subsystem, name, metric.bounds))
        return metric

    def get(self, name):
        """The instrument named ``name``, or None."""
        return self._metrics.get(name)

    def names(self):
        """Instrument names, in creation order."""
        return list(self._metrics)

    def __len__(self):
        return len(self._metrics)

    def __iter__(self):
        return iter(self._metrics.values())

    def as_dict(self):
        """``{name: instrument.as_dict()}`` for the whole subsystem."""
        return {name: metric.as_dict()
                for name, metric in self._metrics.items()}

    def __repr__(self):
        return "MetricsRegistry(%s, %d metrics)" % (self.subsystem,
                                                    len(self._metrics))


class Telemetry:
    """The platform-wide telemetry switchboard.

    One instance per :class:`~repro.sim.engine.Simulator` (and therefore
    per platform); subsystems obtain their :class:`MetricsRegistry` via
    :meth:`registry` and cache the instruments they update.

    ``Telemetry(enabled=False)`` is the single off switch: every
    ``registry()`` call then returns :data:`NULL_REGISTRY`, so all
    instrument updates become no-ops and exports are empty -- no other
    code needs to check a flag.
    """

    __slots__ = ("_enabled", "_registries")

    def __init__(self, enabled=True):
        self._enabled = bool(enabled)
        self._registries = {}

    @property
    def enabled(self):
        """Whether this telemetry records anything."""
        return self._enabled

    def registry(self, subsystem):
        """The :class:`MetricsRegistry` for ``subsystem`` (created on
        first use), or :data:`NULL_REGISTRY` when disabled."""
        if not self._enabled:
            return NULL_REGISTRY
        registry = self._registries.get(subsystem)
        if registry is None:
            registry = self._registries[subsystem] = \
                MetricsRegistry(subsystem)
        return registry

    def subsystems(self):
        """Registered subsystem names, in creation order."""
        return list(self._registries)

    def aggregate(self):
        """The platform-wide flat view: ``{"subsystem.name": instrument}``."""
        flat = {}
        for subsystem, registry in self._registries.items():
            for metric in registry:
                flat["%s.%s" % (subsystem, metric.name)] = metric
        return flat

    def as_dict(self):
        """Nested plain-data view: ``{subsystem: {name: {...}}}``."""
        return {subsystem: registry.as_dict()
                for subsystem, registry in self._registries.items()}

    def __repr__(self):
        return "Telemetry(%s, %d subsystems)" % (
            "enabled" if self._enabled else "disabled",
            len(self._registries))
