"""Flat metrics export: JSON files and operator-readable text.

Two consumers, two shapes:

* :func:`metrics_dict` / :func:`write_metrics_json` -- the machine
  shape: one JSON object with a nested ``subsystems`` map, suitable for
  diffing runs, feeding dashboards, or archiving next to a Chrome
  trace;
* :func:`format_metrics` -- the human shape: a flat, sorted
  ``subsystem.metric`` table that :func:`repro.core.inspection
  .system_report` appends, so ``python -m repro`` shows the platform's
  counters with no extra flags.

Both shapes are derived from the same
:meth:`~repro.telemetry.metrics.Telemetry.as_dict` data, so they can
never drift from each other.
"""

import json

#: Schema version of the metrics JSON document.
METRICS_FORMAT_VERSION = 1


def metrics_dict(telemetry):
    """The machine-shape document for one :class:`Telemetry`."""
    return {
        "version": METRICS_FORMAT_VERSION,
        "enabled": telemetry.enabled,
        "subsystems": telemetry.as_dict(),
    }


def write_metrics_json(telemetry, path, indent=2):
    """Write :func:`metrics_dict` to ``path``; returns the document."""
    document = metrics_dict(telemetry)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=indent, sort_keys=True)
        handle.write("\n")
    return document


def _format_value(metric_data):
    if metric_data["type"] == "histogram":
        if metric_data["count"] == 0:
            return "n=0"
        return "n=%d mean=%.1f min=%g max=%g" % (
            metric_data["count"], metric_data["mean"],
            metric_data["min"], metric_data["max"])
    value = metric_data["value"]
    return "%g" % value if isinstance(value, float) else str(value)


def format_metrics(telemetry):
    """The human shape: one ``subsystem.metric  value`` line each,
    sorted; ``"(telemetry disabled)"`` / ``"(no metrics)"`` when there
    is nothing to show."""
    if not telemetry.enabled:
        return "(telemetry disabled)"
    lines = []
    for subsystem, metrics in sorted(telemetry.as_dict().items()):
        for name, data in sorted(metrics.items()):
            lines.append("%-44s %s" % ("%s.%s" % (subsystem, name),
                                       _format_value(data)))
    return "\n".join(lines) if lines else "(no metrics)"
