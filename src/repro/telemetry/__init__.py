"""Unified telemetry: metrics, trace export, operator observability.

The paper's DRCR owns a *global view* of every deployed real-time
contract; this package is the global view of the **platform itself** --
what the reproduction can observe about its own behaviour, unified
behind one object and two export formats.  On the paper's testbed this
role was played by RTAI's ``/proc/rtai`` counters and LTTng-style
kernel tracing; here both are first-class (see DESIGN.md §2 and
``docs/OBSERVABILITY.md`` for the full metric/trace reference).

Three pieces:

* :mod:`repro.telemetry.metrics` -- :class:`Telemetry`, the per-platform
  switchboard handing out per-subsystem :class:`MetricsRegistry`
  instances of :class:`Counter` / :class:`Gauge` / :class:`Histogram`
  instruments.  The simulator owns the ``Telemetry``; the kernel, the
  DRCR and the hybrid bridges reach it through ``sim.telemetry`` and
  cache their instruments at construction time, so hot-path updates are
  single attribute operations.  ``Telemetry(enabled=False)`` is the one
  switch that turns the whole layer into no-ops.
* :mod:`repro.telemetry.chrome` -- converts the simulator's
  :class:`~repro.sim.trace.TraceRecorder` records (plus DRCR component
  events) into Chrome trace-event JSON loadable in ``chrome://tracing``
  or Perfetto: per-CPU execution slices, instant markers for every
  kernel event, a DRCR decision row.
* :mod:`repro.telemetry.export` -- flat metrics dumps (JSON and the
  text block appended to ``system_report``).

Quick use::

    >>> from repro import build_platform
    >>> platform = build_platform(seed=1)
    >>> # ... deploy components, run ...
    >>> platform.telemetry.aggregate()["rtos.dispatches_total"].value
    0
    >>> platform.export_trace("out.json")     # open in chrome://tracing
    >>> platform.export_metrics("metrics.json")

or from the command line::

    python -m repro --trace out.json --metrics metrics.json
"""

from repro.telemetry.chrome import (
    chrome_trace_dict,
    chrome_trace_events,
    export_chrome_trace,
    validate_chrome_trace,
)
from repro.telemetry.export import (
    format_metrics,
    metrics_dict,
    write_metrics_json,
)
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BOUNDS_NS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    Telemetry,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BOUNDS_NS",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "Telemetry",
    "chrome_trace_dict",
    "chrome_trace_events",
    "export_chrome_trace",
    "format_metrics",
    "metrics_dict",
    "validate_chrome_trace",
    "write_metrics_json",
]
