"""DRT3xx -- admission analyzers.

Statically answers the question the DRCR otherwise answers one
component at a time at run time: can this declared fleet be
co-admitted at all?  Reuses :mod:`repro.analysis` (utilization bounds,
exact response-time analysis) over the contracts of every enabled,
rate-bound component, grouped by declared CPU.
"""

from repro.analysis import (
    TaskSpec,
    liu_layland_bound,
    response_time,
    total_utilization,
)
from repro.lint.diagnostics import Diagnostic

_EPSILON = 1e-9


def check_admission(entries):
    """Admission checks over one deployment.

    ``entries`` is a list of ``(descriptor, location)`` pairs.  Only
    enabled, rate-bound (periodic or sporadic) components take part:
    aperiodic contracts declare no demand rate to analyse.
    """
    by_cpu = {}
    for descriptor, location in entries:
        if not descriptor.enabled:
            continue
        if not descriptor.contract.is_rate_bound:
            continue
        by_cpu.setdefault(descriptor.contract.cpu, []).append(
            (descriptor, location))
    diagnostics = []
    for cpu, members in sorted(by_cpu.items()):
        diagnostics.extend(_check_cpu(cpu, members))
    return diagnostics


def _check_cpu(cpu, members):
    diagnostics = []
    specs = []
    owner = {}
    location_of = {}
    for descriptor, location in members:
        spec = TaskSpec.from_contract(descriptor.contract)
        specs.append(spec)
        owner[spec.name] = descriptor.name
        location_of[spec.name] = location
    anchor = location_of[specs[0].name]

    # DRT301: the fleet's declared budget simply does not fit.
    utilization = total_utilization(specs)
    if utilization > 1.0 + _EPSILON:
        top = sorted(specs, key=lambda s: -s.utilization)[:3]
        claims = ", ".join("%s=%.3f" % (owner[s.name], s.utilization)
                           for s in top)
        diagnostics.append(Diagnostic(
            "DRT301", "", anchor,
            "CPU %d is over-committed: declared utilization %.3f > "
            "1.0 across %d components (largest claims: %s); this "
            "fleet can never be co-admitted"
            % (cpu, utilization, len(specs), claims)))

    # DRT303: per-priority-band hot spots.  Equal-priority tasks
    # mutually interfere in this kernel (round-robin within a level),
    # so a band that alone exceeds the Liu-Layland bound for its size
    # is a schedulability hot spot even if the total fits.
    bands = {}
    for spec in specs:
        bands.setdefault(spec.priority, []).append(spec)
    for priority, band in sorted(bands.items()):
        if len(band) < 2:
            continue
        band_utilization = total_utilization(band)
        bound = liu_layland_bound(len(band))
        if band_utilization > bound + _EPSILON:
            names = ", ".join(sorted(owner[s.name] for s in band))
            diagnostics.append(Diagnostic(
                "DRT303", "", location_of[band[0].name],
                "priority band %d on CPU %d holds utilization %.3f "
                "across %d mutually interfering tasks (%s), above "
                "the Liu-Layland bound %.3f"
                % (priority, cpu, band_utilization, len(band), names,
                   bound)))

    # DRT302: exact response-time analysis of the declared set.
    for spec in specs:
        interfering = [other for other in specs
                       if other is not spec
                       and other.priority <= spec.priority]
        response = response_time(spec, interfering)
        if response is None:
            diagnostics.append(Diagnostic(
                "DRT302", owner[spec.name], location_of[spec.name],
                "declared worst-case response of %s exceeds its "
                "deadline (%d ns) on CPU %d under response-time "
                "analysis" % (owner[spec.name], spec.deadline_ns,
                              cpu)))

    # DRT304: rate-monotonic priority inversions among periodic tasks.
    # The diagnostic lands on the faster task -- the one wrongly
    # declared at the lower priority.
    periodic = [(descriptor, location) for descriptor, location
                in members if descriptor.contract.is_periodic]
    for index, first in enumerate(periodic):
        for second in periodic[index + 1:]:
            fast, slow = first, second
            if fast[0].contract.period_ns > slow[0].contract.period_ns:
                fast, slow = slow, fast
            a, b = fast[0].contract, slow[0].contract
            if a.period_ns == b.period_ns or a.priority <= b.priority:
                continue
            diagnostics.append(Diagnostic(
                "DRT304", fast[0].name, fast[1],
                "%s (%.6g Hz) runs at priority %d below %s (%.6g Hz) "
                "at priority %d on CPU %d; rate-monotonic order "
                "would swap them"
                % (fast[0].name, a.frequency_hz, a.priority,
                   slow[0].name, b.frequency_hz, b.priority, cpu)))
    return diagnostics
