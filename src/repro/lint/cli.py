"""``python -m repro lint``: the drtlint command line.

Usage::

    python -m repro lint <paths...> [--json] [--fail-on SEVERITY]
    python -m repro lint --list-codes

Paths may be descriptor ``.xml`` files, implementation/example ``.py``
files, deployment-plan or rule ``.json`` files, or directories of any.
Exit status: 0 when no diagnostic reaches the ``--fail-on`` threshold
(default: ``error``), 1 otherwise, 2 on usage errors.
``--list-codes`` prints the full code table (code, severity, family,
summary) and exits 0.  See ``docs/STATIC_ANALYSIS.md`` for the full
DRT1xx-DRT6xx code table.
"""

import argparse
import json
import sys

from repro.lint.diagnostics import CODE_TABLE, Severity
from repro.lint.engine import FAMILIES, family_of_code, lint_paths, \
    resolve_family


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="drtlint: statically verify DRCom descriptor "
                    "deployments, deployment plans and implementation "
                    "RT-safety without instantiating a runtime.")
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="descriptor .xml files, implementation "
                             ".py files, plan/rule .json files, or "
                             "directories of any")
    parser.add_argument("--json", action="store_true",
                        help="emit the schema-stable JSON document "
                             "instead of text")
    parser.add_argument("--fail-on", default="error",
                        choices=[member.value for member in Severity],
                        help="minimum severity that fails the run "
                             "(default: error)")
    parser.add_argument("--family", action="append", default=None,
                        metavar="FAMILY",
                        help="restrict to analyzer families "
                             "(repeatable; a family name or a DRTn "
                             "code prefix; default: all of %s)"
                             % ", ".join(FAMILIES))
    parser.add_argument("--list-codes", action="store_true",
                        help="print the full diagnostic code table "
                             "(code, severity, family, summary) and "
                             "exit 0")
    args = parser.parse_args(argv)
    if args.family is not None:
        try:
            args.family = [resolve_family(name)
                           for name in args.family]
        except ValueError as error:
            parser.error(str(error))
    if not args.paths and not args.list_codes:
        parser.error("at least one PATH is required "
                     "(or --list-codes)")
    return args


def _format_code_table():
    """The full CODE_TABLE, one aligned line per code."""
    lines = []
    for code in sorted(CODE_TABLE):
        severity, summary, _ = CODE_TABLE[code]
        lines.append("%s  %-7s  %-10s  %s"
                     % (code, severity.value,
                        family_of_code(code), summary))
    lines.append("drtlint: %d diagnostic codes across %d families"
                 % (len(CODE_TABLE), len(FAMILIES)))
    return "\n".join(lines)


def main(argv=None):
    """Entry point; returns the process exit status."""
    args = _parse_args(sys.argv[2:] if argv is None else argv)
    if args.list_codes:
        print(_format_code_table())
        return 0
    families = tuple(args.family) if args.family else FAMILIES
    threshold = Severity.parse(args.fail_on)
    try:
        result = lint_paths(args.paths, families=families)
    except FileNotFoundError as error:
        print("drtlint: %s" % error, file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result.as_dict(), indent=2, sort_keys=False))
    else:
        print(result.format_text())
    return 1 if result.at_or_above(threshold) else 0
