"""``python -m repro lint``: the drtlint command line.

Usage::

    python -m repro lint <paths...> [--json] [--fail-on SEVERITY]

Paths may be descriptor ``.xml`` files, implementation/example ``.py``
files, or directories of either.  Exit status: 0 when no diagnostic
reaches the ``--fail-on`` threshold (default: ``error``), 1 otherwise,
2 on usage errors.  See ``docs/STATIC_ANALYSIS.md`` for the full
DRT1xx-DRT5xx code table.
"""

import argparse
import json
import sys

from repro.lint.diagnostics import Severity
from repro.lint.engine import FAMILIES, lint_paths, resolve_family


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="drtlint: statically verify DRCom descriptor "
                    "deployments and implementation RT-safety "
                    "without instantiating a runtime.")
    parser.add_argument("paths", nargs="+", metavar="PATH",
                        help="descriptor .xml files, implementation "
                             ".py files, or directories of either")
    parser.add_argument("--json", action="store_true",
                        help="emit the schema-stable JSON document "
                             "instead of text")
    parser.add_argument("--fail-on", default="error",
                        choices=[member.value for member in Severity],
                        help="minimum severity that fails the run "
                             "(default: error)")
    parser.add_argument("--family", action="append", default=None,
                        metavar="FAMILY",
                        help="restrict to analyzer families "
                             "(repeatable; a family name or a DRTn "
                             "code prefix; default: all of %s)"
                             % ", ".join(FAMILIES))
    args = parser.parse_args(argv)
    if args.family is not None:
        try:
            args.family = [resolve_family(name)
                           for name in args.family]
        except ValueError as error:
            parser.error(str(error))
    return args


def main(argv=None):
    """Entry point; returns the process exit status."""
    args = _parse_args(sys.argv[2:] if argv is None else argv)
    families = tuple(args.family) if args.family else FAMILIES
    threshold = Severity.parse(args.fail_on)
    try:
        result = lint_paths(args.paths, families=families)
    except FileNotFoundError as error:
        print("drtlint: %s" % error, file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result.as_dict(), indent=2, sort_keys=False))
    else:
        print(result.format_text())
    return 1 if result.at_or_above(threshold) else 0
