"""drtlint's orchestration layer.

Collects descriptor sources from paths, groups them into *deployment
units*, runs every analyzer family and aggregates the findings into a
:class:`LintResult` -- all without instantiating a Framework, a DRCR or
a kernel.

Unit model
----------
* every ``.xml`` file passed (or found under a directory) is one
  descriptor; **all** XML descriptors of one invocation form a single
  deployment unit, because a directory of one-component-per-file
  descriptors is how a deployment set ships;
* every ``.py`` file is its **own** deployment unit: an example or
  implementation module is a self-contained deployment script.  Its
  embedded descriptor XML literals (any string constant containing a
  ``drt:component`` element) are linted together, and the module source
  runs through the DRT4xx AST checks.  Literals with ``%``-format
  placeholders are templates, not descriptors, and are skipped;
* every ``.json`` file that is a *deployment plan* (sniffed first:
  ``plan_version``, or ``nodes`` + ``deployments`` --
  :func:`repro.lint.deployment.looks_like_plan_file`) contributes one
  plan unit plus one unit per node with components (contract/wiring/
  admission run per node, because ports bind per kernel) plus one per
  referenced rule source, and runs the DRT6xx topology checks;
* every remaining ``.json`` file that is an adaptation *rule file* (a
  JSON object with a top-level ``rules`` list, docs/ADAPTATION.md) is
  its own unit and runs through the DRT5xx checks; other JSON files
  (fault plans, benchmark baselines) pass through unexamined.

Paths reachable more than once in one invocation (a file named
directly and again under a directory argument, a symlink, a duplicate
argument) are deduplicated by real path, so no source is ever linted
-- or counted -- twice.
"""

import ast
import os
import re

from repro.core.descriptor import ComponentDescriptor
from repro.core.errors import DRComError
from repro.lint import admission, adaptrules, contracts, deployment, \
    rtsafety, stochastic, wiring
from repro.lint.diagnostics import Diagnostic, Severity

#: Families selectable by callers (the resolver disables wiring: the
#: DRCR's own functional resolution handles unsatisfied inports by
#: keeping components UNSATISFIED rather than by vetoing admission).
FAMILIES = ("contract", "wiring", "admission", "rtsafety", "rules",
            "deployment", "stochastic")

#: Code-prefix spellings accepted wherever a family name is (the CI
#: smoke job says ``--family DRT5``; both forms resolve identically).
FAMILY_ALIASES = {
    "DRT1": "contract",
    "DRT2": "wiring",
    "DRT3": "admission",
    "DRT4": "rtsafety",
    "DRT5": "rules",
    "DRT6": "deployment",
    "DRT7": "stochastic",
}


def resolve_family(name):
    """Canonical family for ``name`` (a family or a ``DRTn`` prefix,
    case-insensitive); raises ``ValueError`` on anything else."""
    if name in FAMILIES:
        return name
    canonical = FAMILY_ALIASES.get(name.upper())
    if canonical is None:
        raise ValueError(
            "unknown analyzer family %r (expected one of %s)"
            % (name, ", ".join(FAMILIES + tuple(FAMILY_ALIASES))))
    return canonical


def family_of_code(code):
    """The analyzer family a ``DRTnxx`` code belongs to, or None."""
    return FAMILY_ALIASES.get(code[:4])

_DESCRIPTOR_MARKER = re.compile(r"<\s*(?:drt:)?component[\s>]")
_TEMPLATE_MARKER = re.compile(r"%[sdrfi(]")

#: Schema version of :meth:`LintResult.as_dict` / ``--json`` output.
JSON_SCHEMA_VERSION = 1


class LintResult:
    """Aggregated outcome of one lint run."""

    def __init__(self, diagnostics, units=0, sources=0):
        self.diagnostics = sorted(diagnostics,
                                  key=lambda d: d.sort_key())
        self.units = units
        self.sources = sources

    def by_severity(self, severity):
        """Diagnostics of exactly ``severity``."""
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self):
        """Error-severity diagnostics."""
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self):
        """Warning-severity diagnostics."""
        return self.by_severity(Severity.WARNING)

    def at_or_above(self, severity):
        """Diagnostics at or above ``severity``."""
        return [d for d in self.diagnostics if d.severity >= severity]

    def codes(self):
        """Sorted unique codes present in the result."""
        return sorted({d.code for d in self.diagnostics})

    def counts(self):
        """``{severity value: count}`` including zeroes (stable keys)."""
        counts = {member.value: 0 for member in Severity}
        for diagnostic in self.diagnostics:
            counts[diagnostic.severity.value] += 1
        return counts

    def as_dict(self):
        """Schema-stable JSON document (``--json`` output)."""
        by_code = {}
        for diagnostic in self.diagnostics:
            by_code[diagnostic.code] = by_code.get(diagnostic.code,
                                                   0) + 1
        return {
            "version": JSON_SCHEMA_VERSION,
            "tool": "drtlint",
            "summary": {
                "units": self.units,
                "sources": self.sources,
                "diagnostics": len(self.diagnostics),
                "by_severity": self.counts(),
                "by_code": dict(sorted(by_code.items())),
            },
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }

    def format_text(self):
        """Human-readable report, one line per finding plus a hint."""
        lines = []
        for diagnostic in self.diagnostics:
            lines.append(diagnostic.format())
            if diagnostic.severity >= Severity.WARNING:
                lines.append("    fix: %s" % diagnostic.fix_hint)
        counts = self.counts()
        lines.append(
            "drtlint: %d diagnostic(s) (%d error, %d warning, %d "
            "info) across %d unit(s), %d source(s)"
            % (len(self.diagnostics), counts["error"],
               counts["warning"], counts["info"], self.units,
               self.sources))
        return "\n".join(lines)

    def __repr__(self):
        return "LintResult(%d diagnostics, %d units)" % (
            len(self.diagnostics), self.units)


# ----------------------------------------------------------------------
# analyzer driver
# ----------------------------------------------------------------------
def lint_descriptor_texts(texts, families=FAMILIES):
    """Lint raw descriptor documents forming one deployment.

    ``texts`` is a list of ``(location, xml_text)`` pairs.  Returns a
    list of diagnostics (parse failures become DRT100).
    """
    diagnostics = []
    entries = []
    for location, text in texts:
        if "contract" in families:
            diagnostics.extend(
                contracts.check_source_xml(text, location))
        try:
            descriptor = ComponentDescriptor.from_xml(text)
        except DRComError as error:
            diagnostics.append(Diagnostic(
                "DRT100", "", location, str(error)))
            continue
        entries.append((descriptor, location))
    diagnostics.extend(lint_descriptor_entries(entries, families))
    return diagnostics


def lint_descriptor_entries(entries, families=FAMILIES):
    """Lint already-parsed descriptors forming one deployment.

    ``entries`` is a list of ``(descriptor, location)`` pairs.
    """
    diagnostics = []
    if "contract" in families:
        for descriptor, location in entries:
            diagnostics.extend(
                contracts.check_descriptor(descriptor, location))
        diagnostics.extend(contracts.check_deployment_names(entries))
    if "wiring" in families:
        diagnostics.extend(wiring.check_wiring(entries))
    if "admission" in families:
        diagnostics.extend(admission.check_admission(entries))
    if "stochastic" in families:
        diagnostics.extend(stochastic.check_stochastic(entries))
    return diagnostics


def lint_descriptors(descriptors, location="<memory>",
                     families=FAMILIES):
    """Lint a list of :class:`ComponentDescriptor` as one deployment."""
    return lint_descriptor_entries(
        [(descriptor, location) for descriptor in descriptors],
        families)


# ----------------------------------------------------------------------
# path walking
# ----------------------------------------------------------------------
def collect_files(paths):
    """Expand files/directories into a list of lintable files.

    Deduplicated by real path, first occurrence wins: a descriptor
    reachable both as a file argument and under a directory argument
    is one source, not two.
    """
    files = []
    seen = set()

    def add(path):
        real = os.path.realpath(path)
        if real not in seen:
            seen.add(real)
            files.append(path)

    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs.sort()
                for name in sorted(names):
                    if name.endswith((".xml", ".py", ".json")):
                        add(os.path.join(root, name))
        elif os.path.isfile(path):
            add(path)
        else:
            raise FileNotFoundError("no such file or directory: %r"
                                    % (path,))
    return files


def extract_descriptor_literals(source):
    """``(line, xml_text)`` for every descriptor literal in a module.

    A string constant is a descriptor when it contains a
    ``drt:component`` element; ``%``-format templates are skipped (they
    only become descriptors once instantiated).
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return []  # DRT400 is reported by the rtsafety family
    literals = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Constant):
            continue
        if not isinstance(node.value, str):
            continue
        if not _DESCRIPTOR_MARKER.search(node.value):
            continue
        if _TEMPLATE_MARKER.search(node.value):
            continue
        literals.append((node.lineno, node.value))
    return literals


def lint_paths(paths, families=FAMILIES, telemetry=None):
    """Lint files and directories; returns a :class:`LintResult`.

    All ``.xml`` files form one deployment unit; each ``.py`` file is
    its own unit (see the module docstring).  ``telemetry`` is an
    optional :class:`~repro.telemetry.metrics.Telemetry`; when given,
    the run updates the ``lint.*`` counters
    (``docs/OBSERVABILITY.md``).
    """
    files = collect_files(paths)
    diagnostics = []
    units = 0
    sources = 0
    xml_texts = []
    for path in files:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        if path.endswith(".xml"):
            xml_texts.append((path, text))
            sources += 1
            continue
        if path.endswith(".json"):
            if deployment.looks_like_plan_file(text):
                plan_diagnostics, plan_units, plan_sources = \
                    deployment.lint_plan_source(text, path, families)
                diagnostics.extend(plan_diagnostics)
                units += plan_units
                sources += plan_sources
            elif adaptrules.looks_like_rule_file(text):
                if "rules" in families:
                    diagnostics.extend(
                        adaptrules.check_rule_source(text, path))
                units += 1
                sources += 1
            continue
        literals = extract_descriptor_literals(text)
        unit = [("%s:%d" % (path, line), xml)
                for line, xml in literals]
        diagnostics.extend(lint_descriptor_texts(unit, families))
        if "rtsafety" in families:
            diagnostics.extend(
                rtsafety.check_python_source(text, path))
        units += 1
        sources += 1 + len(literals)
    if xml_texts:
        diagnostics.extend(lint_descriptor_texts(xml_texts, families))
        units += 1
    result = LintResult(diagnostics, units=units, sources=sources)
    if telemetry is not None:
        record_metrics(telemetry, result)
    return result


def lint_plan(document, location="<plan>", families=FAMILIES,
              telemetry=None):
    """Lint one deployment-plan document (a parsed JSON object).

    The in-memory twin of passing a plan file to :func:`lint_paths`:
    the :class:`~repro.cluster.federation.Cluster`'s ``PlanGuard``
    and ``export_plan()`` round-trips call this.  Returns a
    :class:`LintResult`.
    """
    diagnostics, units, sources = deployment.lint_plan_document(
        document, location, families=families)
    result = LintResult(diagnostics, units=units, sources=sources)
    if telemetry is not None:
        record_metrics(telemetry, result)
    return result


def record_metrics(telemetry, result):
    """Update the ``lint.*`` telemetry counters from a result."""
    registry = telemetry.registry("lint")
    registry.counter("runs_total").inc()
    registry.counter("units_total").inc(result.units)
    registry.counter("sources_total").inc(result.sources)
    registry.counter("diagnostics_total").inc(len(result.diagnostics))
    for severity, count in result.counts().items():
        if count:
            registry.counter("severity.%s" % severity).inc(count)
    for diagnostic in result.diagnostics:
        registry.counter("code.%s" % diagnostic.code).inc()
