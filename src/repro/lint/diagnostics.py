"""The diagnostic model of drtlint.

Every analyzer emits :class:`Diagnostic` records with a **stable code**
drawn from :data:`CODE_TABLE`.  Codes are grouped into seven families
mirroring the layers of a DRCom deployment:

* **DRT1xx** -- contract analyzers: per-descriptor schema and
  real-time-contract problems (section 2.3's declarative XML);
* **DRT2xx** -- wiring-graph analyzers: whole-deployment port-graph
  problems built purely from :class:`~repro.core.ports.PortSpec`
  signatures (section 2.3's port-compatibility rule);
* **DRT3xx** -- admission analyzers: schedulability problems derived
  from the declared contracts via :mod:`repro.analysis`;
* **DRT4xx** -- RT-safety AST analyzers: implementation classes whose
  real-time callbacks re-enter the non-real-time side (section 3.1's
  rule that the RT part must never call back into the OSGi/JVM world);
* **DRT5xx** -- adaptation-rule analyzers: JSON rule files for
  :mod:`repro.adapt` (schema violations, unknown context parameters
  or actions, contradictory or unreachable rules, thrash hazards);
* **DRT6xx** -- deployment-plan analyzers: whole-fleet JSON plans for
  :mod:`repro.cluster` (per-node over-commitment, N-1 failover
  headroom, cross-node wiring, management-path latency budgets, rules
  orphaned by the topology) -- see :mod:`repro.lint.deployment`;
* **DRT7xx** -- stochastic-contract analyzers: ``<stochastic>``
  descriptor clauses whose declared distributions are malformed,
  inconsistent with the point-estimate contract (period / MIA /
  derived WCET), or unverifiable at the monitor's epoch length -- see
  :mod:`repro.lint.stochastic`.

The table is the single source of truth: the documentation
(``docs/STATIC_ANALYSIS.md``), the JSON output and the tests all read
it, so adding an analyzer means adding exactly one row here.
"""

import enum
import functools


@functools.total_ordering
class Severity(enum.Enum):
    """Diagnostic severity, ordered (INFO < WARNING < ERROR)."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self):
        """Numeric rank for threshold comparisons."""
        return _SEVERITY_RANK[self]

    def __lt__(self, other):
        if not isinstance(other, Severity):
            return NotImplemented
        return self.rank < other.rank

    @classmethod
    def parse(cls, text):
        """Parse a severity name (``--fail-on`` argument)."""
        for member in cls:
            if member.value == text:
                return member
        raise ValueError(
            "unknown severity %r (expected one of %s)"
            % (text, ", ".join(m.value for m in cls)))


_SEVERITY_RANK = {Severity.INFO: 0, Severity.WARNING: 1,
                  Severity.ERROR: 2}


#: code -> (default severity, one-line trigger description, fix hint).
#: The authoritative registry of every diagnostic drtlint can emit;
#: ``docs/STATIC_ANALYSIS.md`` renders this table one row per code.
CODE_TABLE = {
    # ----- DRT1xx: contract analyzers --------------------------------
    "DRT100": (Severity.ERROR,
               "descriptor fails to parse or validate",
               "fix the reported XML/contract problem; the runtime "
               "would reject this descriptor at deploy time"),
    "DRT101": (Severity.ERROR,
               "duplicate component name inside one deployment",
               "component names must be globally unique (section 2.3); "
               "rename one of the components"),
    "DRT102": (Severity.ERROR,
               "RTAI task-name collision: two components derive the "
               "same six-character kernel name (nam2num)",
               "rename a component so the derived RTAI names differ; "
               "the kernel can only register one task per name"),
    "DRT103": (Severity.WARNING,
               "component name longer than six characters; the RTAI "
               "task name is derived by truncation",
               "prefer names of at most six RTAI characters so the "
               "kernel task name equals the component name"),
    "DRT104": (Severity.WARNING,
               "non-periodic task element declares a frequency "
               "attribute the runtime ignores",
               "remove the frequency attribute, or declare the "
               "component type=\"periodic\""),
    "DRT105": (Severity.ERROR,
               "priority outside the scheduler range",
               "use a priority in [0, 0x3FFFFFFF] (RTAI convention: "
               "smaller number = higher priority)"),
    "DRT106": (Severity.WARNING,
               "rate-bound component declares a zero CPU claim",
               "declare a positive cpuusage so admission control can "
               "account for the task (0 admits it for free)"),
    "DRT107": (Severity.WARNING,
               "unknown attribute the parser silently ignores",
               "remove or fix the attribute; a typo here (e.g. "
               "'frequencyy') silently drops the declared value"),
    "DRT108": (Severity.INFO,
               "component is disabled (enabled=\"false\")",
               "disabled components are excluded from wiring and "
               "admission analysis; enable it or remove it from the "
               "deployment"),
    # ----- DRT2xx: wiring-graph analyzers ----------------------------
    "DRT201": (Severity.ERROR,
               "inport has no port-compatible provider in the "
               "deployment",
               "add a component with a matching outport (same name, "
               "interface, type and size) or drop the inport; the "
               "component would sit UNSATISFIED forever"),
    "DRT202": (Severity.ERROR,
               "provider/consumer ports share a name but disagree on "
               "interface, type or size",
               "make the inport and outport signatures identical; "
               "port compatibility requires all four attributes to "
               "agree (section 2.3)"),
    "DRT203": (Severity.WARNING,
               "ambiguous providers: several outports share one "
               "signature",
               "give the outports distinct port names; otherwise "
               "resolution picks a provider nondeterministically"),
    "DRT204": (Severity.ERROR,
               "dependency cycle through port wiring",
               "break the cycle (e.g. make one port connection "
               "optional); a cycle can never bootstrap because every "
               "member waits for another"),
    "DRT205": (Severity.INFO,
               "outport has no consumer in the deployment",
               "remove the outport or add a consumer (RTAI.FIFO "
               "outports are exempt: they export to user space)"),
    # ----- DRT3xx: admission analyzers -------------------------------
    "DRT301": (Severity.ERROR,
               "declared utilization exceeds 1.0 on one CPU: the "
               "fleet can never be co-admitted",
               "lower cpuusage claims or spread components across "
               "CPUs (runoncpu); the admission policy will reject "
               "part of this fleet no matter the deployment order"),
    "DRT302": (Severity.WARNING,
               "declared task set fails exact response-time analysis",
               "some declared deadline is missed in the worst case; "
               "lower utilization, raise the deadline, or rely on an "
               "adaptation policy to shed load at run time"),
    "DRT303": (Severity.WARNING,
               "priority-band utilization hot spot: the cumulative "
               "utilization at some priority level exceeds the "
               "Liu-Layland bound",
               "rebalance cpuusage across priority bands; the "
               "sufficient RM test already fails at this band"),
    "DRT304": (Severity.WARNING,
               "rate-monotonic priority inversion: a higher-frequency "
               "periodic task is declared at a lower priority",
               "swap the declared priorities; under fixed-priority "
               "scheduling RM ordering is optimal for periodic tasks"),
    # ----- DRT4xx: RT-safety AST analyzers ---------------------------
    "DRT400": (Severity.ERROR,
               "implementation source fails to parse",
               "fix the Python syntax error; the RT-safety checks "
               "cannot run on an unparseable module"),
    "DRT401": (Severity.ERROR,
               "RT callback calls a blocking sleep (time.sleep)",
               "never block inside the RT part; model the cost via "
               "compute_ns and let the kernel schedule the delay"),
    "DRT402": (Severity.ERROR,
               "RT callback performs file/socket/process I/O",
               "move the I/O to the non-real-time part and ship the "
               "data through a port (SHM, mailbox or FIFO)"),
    "DRT403": (Severity.ERROR,
               "RT callback re-enters the OSGi service registry",
               "the RT part must never call back into the framework "
               "(section 3.1); resolve services in the NRT part and "
               "pass plain data across the bridge"),
    "DRT404": (Severity.WARNING,
               "RT callback grows instance state every job (unbounded "
               "allocation in the periodic body)",
               "use a bounded buffer or aggregate in place; per-job "
               "growth of self-attached containers accumulates "
               "without limit"),
    # ----- DRT5xx: adaptation-rule analyzers -------------------------
    "DRT500": (Severity.ERROR,
               "rule file fails to parse or validate against the "
               "adaptation-rule schema",
               "fix the JSON / schema problems listed in the message; "
               "docs/ADAPTATION.md documents the rule schema"),
    "DRT501": (Severity.ERROR,
               "rule predicates over an unknown context parameter",
               "use a parameter from the catalog in "
               "repro.adapt.context.CONTEXT_PARAMS "
               "(docs/ADAPTATION.md) or register a context provider "
               "that publishes it"),
    "DRT502": (Severity.ERROR,
               "rule invokes an unknown action or passes bad action "
               "arguments",
               "use an action from the catalog in "
               "repro.adapt.actions.ACTIONS with the documented "
               "arguments (docs/ADAPTATION.md)"),
    "DRT503": (Severity.WARNING,
               "contradictory rules: two simultaneously-satisfiable "
               "rules command opposing actions on one target",
               "tighten the predicates so the conditions are "
               "mutually exclusive, or rely on priorities knowingly "
               "-- only the higher-priority rule's action will ever "
               "execute"),
    "DRT504": (Severity.WARNING,
               "unreachable predicate: the condition can never hold "
               "given the parameter's documented range",
               "compare against a value inside the parameter's range "
               "(see the catalog in docs/ADAPTATION.md); an 'all' "
               "group must not demand disjoint ranges of one "
               "parameter"),
    "DRT505": (Severity.INFO,
               "rule has no damping (no cooldown, no clear "
               "predicate, no for_epochs) and will fire every epoch "
               "while its condition holds",
               "add cooldown_ns, a clear predicate, or for_epochs "
               "unless per-epoch firing is intended (idempotent "
               "actions only)"),
    "DRT506": (Severity.WARNING,
               "unreachable threshold: the compared value saturates "
               "at the histogram grid's last finite bound, below the "
               "threshold",
               "compare against a value at or below the parameter's "
               "clamp ceiling (grid percentiles report bucket upper "
               "bounds and clamp overflow samples to the last finite "
               "bound -- docs/ADAPTATION.md), or widen the histogram "
               "grid"),
    # ----- DRT6xx: deployment-plan analyzers -------------------------
    "DRT600": (Severity.ERROR,
               "deployment plan fails to parse or validate against "
               "the plan schema",
               "fix the listed plan problems (unknown nodes, bad "
               "links, unreadable sources, duplicate homes); "
               "docs/STATIC_ANALYSIS.md documents the plan schema"),
    "DRT601": (Severity.ERROR,
               "node over-commitment: a declared component does not "
               "fit any CPU of its node under the best-fit placement "
               "math",
               "lower cpuusage claims, unpin the component, add CPUs "
               "to the node, or move components elsewhere; admission "
               "on this node would reject the deployment"),
    "DRT602": (Severity.ERROR,
               "no N-1 failover capacity: losing one node leaves a "
               "component group no survivor can absorb",
               "add headroom (nodes, CPUs, or lower claims) until "
               "every single-node loss can be re-homed group by "
               "group; until then one crash strands components"),
    "DRT603": (Severity.ERROR,
               "wired application split across nodes (or an inport "
               "whose only providers live on other nodes)",
               "co-locate the application's members on one node; "
               "port wiring resolves inside a single node's kernel "
               "and can never bind across the transport"),
    "DRT604": (Severity.WARNING,
               "management path slower than a component's deadline: "
               "worst-case link latency plus response time exceeds "
               "deadline_ns",
               "improve the control link, raise the deadline, or "
               "lower the node's interference; a management command "
               "cannot take effect within one deadline window"),
    "DRT605": (Severity.WARNING,
               "adaptation rule scoped to (or targeting) a node the "
               "plan does not declare",
               "fix the @node scope / migrate dst / rebalance node "
               "to name a plan node; as written the rule can never "
               "match or land"),
    "DRT606": (Severity.WARNING,
               "migration ping-pong: two simultaneously-satisfiable "
               "rules migrate one component to different nodes",
               "make the two conditions mutually exclusive or agree "
               "on one destination; otherwise the component bounces "
               "between homes every epoch both rules hold"),
    # ----- DRT7xx: stochastic-contract analyzers ---------------------
    "DRT700": (Severity.ERROR,
               "malformed stochastic clause: a declared distribution "
               "cannot be monitored for this task type",
               "drop the interarrival clause on periodic components "
               "(their releases ride the timer grid, not an arrival "
               "process); declare exectime instead"),
    "DRT701": (Severity.ERROR,
               "stochastic parameters inconsistent with the declared "
               "point-estimate contract (period / MIA / derived WCET)",
               "align the distribution with the contract: exectime "
               "mass must fit under cpuusage * period, and "
               "interarrival mass must sit above the sporadic "
               "minimum inter-arrival time"),
    "DRT702": (Severity.WARNING,
               "tolerance unverifiable at the configured epoch: "
               "fewer than min_samples observations can accrue per "
               "monitor epoch, so the check never evaluates",
               "lower min_samples, raise the component's rate, or "
               "lengthen the monitor epoch "
               "(ContractMonitor(epoch_ns=...)); as declared the "
               "contract is never actually checked"),
}


class Diagnostic:
    """One finding of the static verifier.

    ``location`` is a free-form "where" string -- ``path``,
    ``path:line`` or ``<memory>`` -- and ``component`` is the component
    (or implementation class) the finding is about, empty for
    deployment-wide findings.
    """

    __slots__ = ("code", "severity", "component", "location", "message",
                 "fix_hint")

    def __init__(self, code, component, location, message,
                 severity=None, fix_hint=None):
        if code not in CODE_TABLE:
            raise ValueError("unknown diagnostic code %r" % (code,))
        default_severity, _, default_hint = CODE_TABLE[code]
        self.code = code
        self.severity = severity or default_severity
        self.component = component or ""
        self.location = location or "<memory>"
        self.message = message
        self.fix_hint = fix_hint or default_hint

    def sort_key(self):
        """Deterministic ordering: location, then code, then subject."""
        return (self.location, self.code, self.component, self.message)

    def as_dict(self):
        """Plain-data (JSON-safe) view, schema-stable."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "component": self.component,
            "location": self.location,
            "message": self.message,
            "fix_hint": self.fix_hint,
        }

    def format(self):
        """One-line human-readable rendering."""
        subject = (" %s:" % self.component) if self.component else ""
        return "%s:%s [%s] %s: %s" % (
            self.location, subject, self.code,
            self.severity.value.upper(), self.message)

    def __repr__(self):
        return "Diagnostic(%s %s %s @ %s)" % (
            self.code, self.severity.value, self.component,
            self.location)
