"""DRT1xx -- contract analyzers.

Per-descriptor and cross-descriptor checks over the declarative layer:
schema violations the tolerant parser glosses over, RTAI name
collisions and truncations, priorities outside the scheduler range and
degenerate CPU claims.  Everything here runs on descriptor *text* and
:class:`~repro.core.descriptor.ComponentDescriptor` objects -- no
Framework, no DRCR, no kernel.
"""

from repro.core.descriptor import local_tag, parse_descriptor_tree
from repro.core.errors import DRComError
from repro.lint.diagnostics import Diagnostic
from repro.rtos import names as rtai_names
from repro.rtos.errors import InvalidTaskNameError

#: RTAI's lowest real-time priority (RT_SCHED_LOWEST_PRIORITY): the
#: scheduler accepts priorities in ``[0, MAX_SCHEDULER_PRIORITY]``,
#: smaller number = higher priority.
MAX_SCHEDULER_PRIORITY = 0x3FFFFFFF

#: Attributes each descriptor element may carry; anything else is
#: silently dropped by the tolerant parser -- exactly the "schema
#: violation beyond parse errors" DRT107 exists for.
_KNOWN_ATTRIBUTES = {
    "component": {"name", "desc", "type", "enabled", "cpuusage"},
    "implementation": {"bincode"},
    "periodictask": {"frequence", "frequency", "runoncup", "runoncpu",
                     "priority", "deadline_ns"},
    "aperiodictask": {"runoncup", "runoncpu", "priority", "deadline_ns"},
    "sporadictask": {"mininterarrival_ns", "min_interarrival_ns",
                     "runoncup", "runoncpu", "priority", "deadline_ns"},
    "inport": {"name", "interface", "type", "size"},
    "outport": {"name", "interface", "type", "size"},
    "property": {"name", "type", "value"},
    "stochastic": {"tolerance", "min_samples"},
    "interarrival": {"dist", "mean_ns", "min_ns", "max_ns", "std_ns"},
    "exectime": {"dist", "mean_ns", "min_ns", "max_ns", "std_ns"},
}

_FREQUENCY_ATTRIBUTES = ("frequence", "frequency")


def check_source_xml(text, location):
    """Raw-XML schema checks on one descriptor document (DRT104/107).

    Runs on the element tree *before* descriptor construction, so it
    sees exactly what the tolerant parser would throw away.  Parse
    failures are not reported here -- the caller reports DRT100 when
    :meth:`ComponentDescriptor.from_xml` raises.
    """
    diagnostics = []
    try:
        root = parse_descriptor_tree(text)
    except DRComError:
        return diagnostics
    component = root.attrib.get("name", "")
    elements = [root] + list(root)
    for child in root:
        if local_tag(child.tag) == "stochastic":
            # Distribution clauses nest one level deeper; their typo'd
            # attributes are just as silently dropped.
            elements.extend(child)
    for element in elements:
        tag = local_tag(element.tag)
        known = _KNOWN_ATTRIBUTES.get(tag)
        if known is None:
            continue  # unknown elements fail descriptor parse (DRT100)
        for raw_name in element.attrib:
            attr = local_tag(raw_name)
            if attr in known:
                continue
            if tag in ("aperiodictask", "sporadictask") \
                    and attr in _FREQUENCY_ATTRIBUTES:
                diagnostics.append(Diagnostic(
                    "DRT104", component, location,
                    "<%s> declares %s=%r but only periodic tasks "
                    "have a frequency; the runtime ignores it"
                    % (tag, attr, element.attrib[raw_name])))
                continue
            diagnostics.append(Diagnostic(
                "DRT107", component, location,
                "<%s> attribute %r is not part of the descriptor "
                "schema; the parser silently ignores it"
                % (tag, attr)))
    return diagnostics


def check_descriptor(descriptor, location):
    """Per-descriptor contract checks (DRT103/105/106/108)."""
    diagnostics = []
    contract = descriptor.contract
    try:
        rtai_names.validate_name(descriptor.name)
    except InvalidTaskNameError:
        diagnostics.append(Diagnostic(
            "DRT103", descriptor.name, location,
            "component name %r is not a valid six-character RTAI "
            "name; the kernel task name is derived as %r"
            % (descriptor.name, descriptor.task_name)))
    if contract.priority > MAX_SCHEDULER_PRIORITY:
        diagnostics.append(Diagnostic(
            "DRT105", descriptor.name, location,
            "priority %d is outside the scheduler range [0, %d]"
            % (contract.priority, MAX_SCHEDULER_PRIORITY)))
    if contract.is_rate_bound and contract.cpu_usage == 0.0:
        diagnostics.append(Diagnostic(
            "DRT106", descriptor.name, location,
            "cpuusage is 0: the %s task claims no CPU budget, so "
            "admission control cannot account for it"
            % contract.task_type.value))
    if not descriptor.enabled:
        diagnostics.append(Diagnostic(
            "DRT108", descriptor.name, location,
            "component is disabled; it is excluded from wiring and "
            "admission analysis"))
    return diagnostics


def check_deployment_names(entries):
    """Cross-descriptor name checks (DRT101/102).

    ``entries`` is a list of ``(descriptor, location)`` pairs forming
    one deployment.
    """
    diagnostics = []
    by_name = {}
    for descriptor, location in entries:
        by_name.setdefault(descriptor.name, []).append(location)
    for name, locations in sorted(by_name.items()):
        if len(locations) > 1:
            diagnostics.append(Diagnostic(
                "DRT101", name, locations[0],
                "component name %r is declared %d times in this "
                "deployment (also at: %s)"
                % (name, len(locations), ", ".join(locations[1:]))))
    # nam2num collisions among *distinct* component names: exact
    # duplicates are already DRT101, so fold each name once.
    by_num = {}
    for descriptor, location in entries:
        if descriptor.name not in by_name:
            continue
        key = rtai_names.nam2num(descriptor.task_name)
        bucket = by_num.setdefault(key, {})
        bucket.setdefault(descriptor.name,
                          (descriptor.task_name, location))
    for key, bucket in sorted(by_num.items()):
        if len(bucket) < 2:
            continue
        members = sorted(bucket.items())
        names = ", ".join("%s -> %s" % (name, task_name)
                          for name, (task_name, _) in members)
        first_name, (task_name, location) = members[0]
        diagnostics.append(Diagnostic(
            "DRT102", first_name, location,
            "components %s collide on RTAI task name %r (nam2num "
            "%d); the kernel can only register one of them"
            % (names, task_name, key)))
    return diagnostics
