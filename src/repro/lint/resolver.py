"""drtlint as a pluggable pre-admission resolving service.

The paper's section 3 lets operators plug *customized resolving
services* into the DRCR through the OSGi registry.
:class:`LintResolvingService` is one such service: before a candidate
is admitted it lints the candidate **together with** the already-
admitted fleet and vetoes the admission when that marginal addition
introduces new findings at or above the configured severity.

Only the ``contract`` and ``admission`` families run by default.  The
``wiring`` family is deliberately excluded: an unsatisfied inport is
the DRCR's own functional-resolution business (the component simply
waits in UNSATISFIED), not an admission veto.

Differential blame
------------------
The service lints the admitted set twice -- once without and once with
the candidate -- and only findings **new** in the second run count
against the candidate.  Pre-existing warnings about components that
are already running can therefore never block an unrelated deployment.
"""

from repro.core.resolving import Decision, ResolvingService
from repro.lint.diagnostics import Severity
from repro.lint.engine import lint_descriptors

_DEFAULT_FAMILIES = ("contract", "admission", "stochastic")


class LintResolvingService(ResolvingService):
    """Consult drtlint before every admission.

    Parameters
    ----------
    fail_on:
        Minimum :class:`~repro.lint.diagnostics.Severity` that vetoes
        an admission (default: ``ERROR``).
    families:
        Analyzer families to run (default: contract + admission +
        stochastic).
    """

    name = "drtlint"

    def __init__(self, fail_on=Severity.ERROR,
                 families=_DEFAULT_FAMILIES):
        self.fail_on = fail_on
        self.families = tuple(families)

    def admit(self, candidate, view):
        """Veto when adding the candidate introduces new findings."""
        registry = view.kernel.sim.telemetry.registry("lint")
        registry.counter("resolver_consults_total").inc()
        admitted = [component.descriptor
                    for component in view.registry.active()
                    if component.name != candidate.name]
        baseline = self._fingerprints(
            lint_descriptors(admitted, location="<admitted>",
                             families=self.families))
        diagnostics = lint_descriptors(
            admitted + [candidate.descriptor], location="<admitted>",
            families=self.families)
        introduced = [d for d in diagnostics
                      if d.severity >= self.fail_on
                      and (d.code, d.component, d.message)
                      not in baseline]
        if not introduced:
            return Decision.yes("drtlint: no new findings")
        registry.counter("resolver_rejections_total").inc()
        for diagnostic in introduced:
            registry.counter(
                "resolver_code.%s" % diagnostic.code).inc()
        worst = max(introduced, key=lambda d: d.severity.rank)
        return Decision.no(
            "drtlint: %d new finding(s) at or above %s -- [%s] %s"
            % (len(introduced), self.fail_on.value, worst.code,
               worst.message))

    def _fingerprints(self, diagnostics):
        return {(d.code, d.component, d.message)
                for d in diagnostics if d.severity >= self.fail_on}
