"""DRT2xx -- wiring-graph analyzers.

Builds the deployment's port graph purely from
:class:`~repro.core.ports.PortSpec` signatures -- the same
``(name, interface, type, size)`` compatibility rule the DRCR resolves
at run time (paper section 2.3) -- and flags unsatisfiable inports,
near-miss signature mismatches, ambiguous providers and dependency
cycles, all without instantiating anything.
"""

from repro.core.ports import PortInterface
from repro.lint.diagnostics import Diagnostic


def check_wiring(entries):
    """Wiring checks over one deployment.

    ``entries`` is a list of ``(descriptor, location)`` pairs; disabled
    components do not participate (the runtime never wires them).
    """
    active = [(d, loc) for d, loc in entries if d.enabled]
    providers = {}   # signature -> [(descriptor, port, location)]
    consumers = {}   # signature -> [(descriptor, port, location)]
    by_port_name = {}  # port name -> [(descriptor, outport)]
    for descriptor, location in active:
        for port in descriptor.outports:
            providers.setdefault(port.signature(), []).append(
                (descriptor, port, location))
            by_port_name.setdefault(port.name, []).append(
                (descriptor, port))
        for port in descriptor.inports:
            consumers.setdefault(port.signature(), []).append(
                (descriptor, port, location))

    diagnostics = []
    diagnostics.extend(_check_inports(providers, consumers,
                                      by_port_name))
    diagnostics.extend(_check_ambiguity(providers, consumers))
    diagnostics.extend(_check_dangling(providers, consumers))
    diagnostics.extend(_check_cycles(active, providers))
    return diagnostics


def _describe(port):
    return "%s %s %s[%d]" % (port.name, port.interface.value,
                             port.data_type, port.size)


def _check_inports(providers, consumers, by_port_name):
    """DRT201 (no provider) / DRT202 (near-miss signature)."""
    diagnostics = []
    for signature, demand in sorted(consumers.items()):
        if signature in providers:
            continue
        for descriptor, port, location in demand:
            near = by_port_name.get(port.name, [])
            if near:
                details = "; ".join(
                    "%s offers %s" % (d.name, _describe(p))
                    for d, p in near)
                diagnostics.append(Diagnostic(
                    "DRT202", descriptor.name, location,
                    "inport %s has no exact provider: %s"
                    % (_describe(port), details)))
            else:
                diagnostics.append(Diagnostic(
                    "DRT201", descriptor.name, location,
                    "inport %s has no provider in this deployment; "
                    "the component can never leave UNSATISFIED"
                    % _describe(port)))
    return diagnostics


def _check_ambiguity(providers, consumers):
    """DRT203: several outports share a consumed signature."""
    diagnostics = []
    for signature, supply in sorted(providers.items()):
        if len(supply) < 2 or signature not in consumers:
            continue
        descriptor, port, location = supply[0]
        names = ", ".join(sorted(d.name for d, _, _ in supply))
        diagnostics.append(Diagnostic(
            "DRT203", descriptor.name, location,
            "outport %s is offered by %d components (%s); resolution "
            "picks a provider nondeterministically"
            % (_describe(port), len(supply), names)))
    return diagnostics


def _check_dangling(providers, consumers):
    """DRT205: outports nothing consumes (FIFO exempt)."""
    diagnostics = []
    for signature, supply in sorted(providers.items()):
        if signature in consumers:
            continue
        for descriptor, port, location in supply:
            if port.interface is PortInterface.RTAI_FIFO:
                continue  # RT -> user-space export channel
            diagnostics.append(Diagnostic(
                "DRT205", descriptor.name, location,
                "outport %s has no consumer in this deployment"
                % _describe(port)))
    return diagnostics


def _check_cycles(active, providers):
    """DRT204: SCCs of the component dependency graph.

    Edge ``A -> B`` when A declares an inport some outport of B
    satisfies (A depends on B).  Any strongly connected component with
    more than one member -- or a self-loop -- can never bootstrap:
    activation requires an *active* provider, and every member waits
    for another.
    """
    locations = {}
    edges = {}
    for descriptor, location in active:
        locations.setdefault(descriptor.name, location)
        edges.setdefault(descriptor.name, set())
        for port in descriptor.inports:
            for provider, _, _ in providers.get(port.signature(), []):
                edges[descriptor.name].add(provider.name)
    diagnostics = []
    for scc in _tarjan(edges):
        cycle = sorted(scc)
        if len(cycle) == 1:
            name = cycle[0]
            if name not in edges.get(name, ()):
                continue  # trivial SCC, no self-loop
        diagnostics.append(Diagnostic(
            "DRT204", cycle[0], locations[cycle[0]],
            "dependency cycle through port wiring: %s"
            % " -> ".join(cycle + [cycle[0]])))
    return diagnostics


def _tarjan(edges):
    """Tarjan's SCC algorithm, iterative (lint may see deep chains)."""
    index_counter = [0]
    indexes, lowlinks = {}, {}
    on_stack = set()
    stack = []
    sccs = []
    for root in sorted(edges):
        if root in indexes:
            continue
        work = [(root, iter(sorted(edges[root])))]
        indexes[root] = lowlinks[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in edges:
                    continue
                if successor not in indexes:
                    indexes[successor] = lowlinks[successor] = \
                        index_counter[0]
                    index_counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append(
                        (successor, iter(sorted(edges[successor]))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlinks[node] = min(lowlinks[node],
                                         indexes[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent],
                                       lowlinks[node])
            if lowlinks[node] == indexes[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
    return sccs
