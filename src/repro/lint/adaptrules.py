"""DRT5xx: static analysis of adaptation rule files.

Rule files (JSON documents with a top-level ``rules`` list, see
docs/ADAPTATION.md) are validated with the *same* parser the runtime
controller uses (:func:`repro.adapt.rules.parse_rule_document`), so
drtlint and the :class:`~repro.adapt.controller.AdaptationController`
can never disagree about schema validity.  On top of schema validity
this module checks what only a whole-file view can see:

* **DRT500** -- JSON / schema violations (the parser's findings,
  re-coded; unknown parameters and actions get their own codes);
* **DRT501** -- predicate over a context parameter outside the
  catalog (:data:`repro.adapt.context.CONTEXT_PARAMS`);
* **DRT502** -- unknown action kind or invalid action arguments
  (:data:`repro.adapt.actions.ACTIONS`);
* **DRT503** -- two simultaneously-satisfiable rules commanding
  opposing actions (suspend/resume, enable/disable) on one target;
* **DRT504** -- a predicate that can never hold given the parameter's
  documented range (``deadline_miss_rate > 2``), or an ``all`` group
  demanding disjoint ranges of one parameter;
* **DRT505** -- a rule with no damping at all (no ``cooldown_ns``, no
  ``clear``, no ``for_epochs``): it will fire every epoch while its
  condition holds;
* **DRT506** -- a threshold over a *grid-clamped* parameter
  (histogram percentiles report bucket upper bounds and saturate at
  the last finite bound, see ``percentile_from_buckets``) that the
  clamped value can never exceed: ``dispatch_latency_p99 > X`` with X
  at or above the grid max is silently dead.
"""

import json

from repro.adapt.actions import OPPOSITES, target_key
from repro.adapt.context import param_clamp_max, param_range, scoped
from repro.adapt.rules import parse_rule_document_tolerant
from repro.lint.diagnostics import Diagnostic


def looks_like_rule_file(text):
    """Whether a ``.json`` source is an adaptation rule file.

    Cheap structural sniff: a JSON object with a ``rules`` key.  Other
    JSON files (fault plans, benchmark baselines, metric dumps) pass
    through drtlint unexamined.
    """
    try:
        document = json.loads(text)
    except ValueError:
        return False
    return isinstance(document, dict) and "rules" in document


# The parser reports every problem as one flat string list; route the
# two problem shapes that have dedicated codes onto them and leave the
# rest under the schema code.  (Message prefixes are owned by
# repro.adapt.rules in this same repository; tests/lint/ pins the
# routing.)
def _code_for_problem(problem):
    if "unknown context parameter" in problem:
        return "DRT501"
    if "unknown action" in problem or "action '" in problem \
            or 'action "' in problem:
        return "DRT502"
    return "DRT500"


# ----------------------------------------------------------------------
# interval arithmetic over threshold predicates
# ----------------------------------------------------------------------
# An interval is (lo, lo_closed, hi, hi_closed); None = unbounded.
_FULL = (None, False, None, False)


def _op_interval(op, value):
    if op == ">":
        return (value, False, None, False)
    if op == ">=":
        return (value, True, None, False)
    if op == "<":
        return (None, False, value, False)
    if op == "<=":
        return (None, False, value, True)
    if op == "==":
        return (value, True, value, True)
    return None  # "!=" constrains nothing interval-wise


def _intersect(first, second):
    lo, lo_closed = first[0], first[1]
    if lo is None:
        lo, lo_closed = second[0], second[1]
    elif second[0] is not None:
        if second[0] > lo:
            lo, lo_closed = second[0], second[1]
        elif second[0] == lo:
            lo_closed = lo_closed and second[1]
    hi, hi_closed = first[2], first[3]
    if hi is None:
        hi, hi_closed = second[2], second[3]
    elif second[2] is not None:
        if second[2] < hi:
            hi, hi_closed = second[2], second[3]
        elif second[2] == hi:
            hi_closed = hi_closed and second[3]
    return (lo, lo_closed, hi, hi_closed)


def _empty(interval):
    lo, lo_closed, hi, hi_closed = interval
    if lo is None or hi is None:
        return False
    if lo > hi:
        return True
    return lo == hi and not (lo_closed and hi_closed)


def _range_interval(param):
    lo, hi = param_range(param)
    return (lo, True, hi, True)


def _constraint_map(predicate):
    """``{context key: interval}`` for an all-satisfiable view of a
    predicate: a threshold leaf, or an ``all`` group of leaves.  Other
    shapes (``any``, trends, ``!=``) return constraints only for what
    must *definitely* hold, so the analysis stays conservative."""
    constraints = {}
    if predicate.kind == "threshold":
        interval = _op_interval(predicate.op, predicate.value)
        if interval is not None:
            key = scoped(predicate.param, predicate.node)
            constraints[key] = interval
    elif predicate.kind == "all":
        for child in predicate.children:
            for key, interval in _constraint_map(child).items():
                if key in constraints:
                    constraints[key] = _intersect(constraints[key],
                                                  interval)
                else:
                    constraints[key] = interval
    return constraints


def _compatible(first, second):
    """Whether two rules' conditions can hold in the same epoch (as
    far as interval analysis can tell)."""
    for key, interval in first.items():
        other = second.get(key)
        if other is not None and _empty(_intersect(interval, other)):
            return False
    return True


# ----------------------------------------------------------------------
# the checks
# ----------------------------------------------------------------------
def _check_reachability(rule, location):
    diagnostics = []
    for predicate in ((rule.when,) if rule.clear is None
                      else (rule.when, rule.clear)):
        constraints = _constraint_map(predicate)
        for key, interval in constraints.items():
            bounded = _intersect(interval, _range_interval(key))
            if _empty(bounded):
                lo, hi = param_range(key)
                diagnostics.append(Diagnostic(
                    "DRT504", rule.name, location,
                    "condition on %r can never hold (documented "
                    "range [%s, %s])"
                    % (key,
                       "-inf" if lo is None else "%g" % lo,
                       "+inf" if hi is None else "%g" % hi)))
    return diagnostics


def _check_contradictions(rules, location):
    diagnostics = []
    reported = set()
    for index, first in enumerate(rules):
        first_constraints = _constraint_map(first.when)
        first_actions = {target_key(action): action["action"]
                         for action in first.actions}
        for second in rules[index + 1:]:
            pair = tuple(sorted((first.name, second.name)))
            if pair in reported:
                continue
            clash = None
            for action in second.actions:
                kind = first_actions.get(target_key(action))
                if kind is not None \
                        and OPPOSITES.get(kind) == action["action"]:
                    clash = (kind, action["action"],
                             target_key(action))
                    break
            if clash is None:
                continue
            if not _compatible(first_constraints,
                               _constraint_map(second.when)):
                continue
            reported.add(pair)
            diagnostics.append(Diagnostic(
                "DRT503", "%s/%s" % pair, location,
                "rules %r and %r can both hold yet command %s vs %s "
                "on %s" % (first.name, second.name, clash[0],
                           clash[1], clash[2])))
    return diagnostics


def _check_clamped_thresholds(rule, location):
    """DRT506: thresholds a grid-clamped parameter can never exceed.

    DRT504 compares against the parameter's documented *range*;
    clamped parameters (latency percentiles) have an unbounded range
    but a bounded *report*: overflow samples saturate at the last
    finite histogram bound, so strictly-above comparisons at or past
    that ceiling are dead code no interval over the range can see.
    """
    diagnostics = []
    for predicate in ((rule.when,) if rule.clear is None
                      else (rule.when, rule.clear)):
        for leaf in predicate.leaves():
            if leaf.kind != "threshold":
                continue
            ceiling = param_clamp_max(leaf.param)
            if ceiling is None:
                continue
            op, value = leaf.op, leaf.value
            dead = (op == ">" and value >= ceiling) \
                or (op == ">=" and value > ceiling) \
                or (op == "==" and value > ceiling)
            if not dead:
                continue
            key = scoped(leaf.param, leaf.node)
            diagnostics.append(Diagnostic(
                "DRT506", rule.name, location,
                "condition %r %s %g can never hold: the reported "
                "value saturates at the histogram grid's last finite "
                "bound (%g ns)" % (key, op, value, ceiling)))
    return diagnostics


def _check_damping(rule, location):
    if rule.cooldown_ns or rule.clear is not None \
            or rule.max_firings is not None:
        return []
    if any(leaf.for_epochs > 1 for leaf in rule.when.leaves()):
        return []
    return [Diagnostic(
        "DRT505", rule.name, location,
        "no cooldown_ns, clear predicate, for_epochs or max_firings: "
        "the rule fires every epoch while %r holds"
        % rule.when.as_dict())]


def check_rule_source(text, location):
    """All DRT5xx diagnostics for one rule file's text."""
    try:
        document = json.loads(text)
    except ValueError as error:
        return [Diagnostic("DRT500", "", location,
                           "invalid JSON: %s" % error)]
    rules, problems = parse_rule_document_tolerant(document)
    diagnostics = [Diagnostic(_code_for_problem(problem), "",
                              location, problem)
                   for problem in problems]
    for rule in rules:
        diagnostics.extend(_check_reachability(rule, location))
        diagnostics.extend(_check_clamped_thresholds(rule, location))
        diagnostics.extend(_check_damping(rule, location))
    diagnostics.extend(_check_contradictions(rules, location))
    return diagnostics
