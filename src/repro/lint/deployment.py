"""DRT6xx -- deployment-plan analyzers.

The other five families verify one deployment *unit*; this family
verifies a whole *fleet*: a **deployment plan** is a JSON document
naming the nodes (name, CPU count, utilization cap), the links between
them (:class:`~repro.cluster.transport.LinkSpec` quality), which
descriptor goes where, the application co-location groups, and the
adaptation rule files that will steer the result.  Everything a
:class:`~repro.cluster.federation.Cluster` decides at run time --
placement, failover re-homing, cross-node wiring, management routing
-- is re-derived here statically, with no Cluster, Framework or kernel
instantiated (the layering rule in ``docs/ARCHITECTURE.md``: lint may
*model* cluster topology, never build one).

Plan schema (``docs/STATIC_ANALYSIS.md`` renders the reference)::

    {
      "plan_version": 1,
      "name": "settop-fleet",
      "cap": 1.0,
      "default_link": {"latency_ns": 500000},
      "links": [{"src": "control", "dst": "edge0",
                 "latency_ns": 800000, "jitter_ns": 100000}],
      "nodes": [{"name": "edge0", "num_cpus": 1, "cap": 1.0}, ...],
      "deployments": [{"node": "edge0",
                       "components": ["vsrc.xml", {"xml": "<drt:..."}]}],
      "applications": {"vidpip": ["VSRC00", "VFLT00"]},
      "rules": ["settopbox.rules.json", {"document": {...}}]
    }

Relative descriptor/rule paths resolve against the plan file's own
directory.  The checks:

* **DRT600** -- the plan document itself fails to parse or validate
  (schema problems, unknown nodes, unreadable sources, duplicate
  homes, bad link quality);
* **DRT601** -- a node cannot host its declared components: the same
  best-fit math as :class:`~repro.core.placement.BestFitPlacement`
  (which re-pins CPUs at admission) finds no CPU for a claim, or a
  ``drcom.placement=pinned`` component oversubscribes its pinned CPU;
* **DRT602** -- no N-1 failover headroom: for each node, simulate its
  loss and re-place its components group by group over the survivors
  under :meth:`~repro.cluster.placement.ClusterPlacementService
  .choose_node_for_group` semantics (node capacity ``num_cpus * cap``,
  greedy least-loaded, co-location groups move whole); any group left
  without a home means the fleet is one crash away from stranding it;
* **DRT603** -- a wired application split across nodes (or an inport
  whose only signature-compatible providers live on other nodes):
  ports bind inside one node's kernel, so the runtime can never
  resolve this wiring;
* **DRT604** -- the management path from the coordinator (``control``)
  to a component is slower than the component's deadline: worst-case
  link latency plus jitter plus the component's exact response time
  (:func:`repro.analysis.response_time` over its node/CPU task set)
  exceeds ``deadline_ns``, so a §2.4 command cannot take effect within
  one deadline window;
* **DRT605** -- an adaptation rule scoped to (or migrating toward) a
  node no plan node matches: the predicate can never hold, or the
  action can never land;
* **DRT606** -- two rules that can hold in the same epoch migrate one
  component to *different* nodes: the component ping-pongs between
  homes for as long as both conditions overlap.

Per-node descriptor sets additionally run through the contract,
wiring and admission families as their own deployment units (ports
bind per kernel), so one ``python -m repro lint plan.json`` covers
both the fleet shape and every node's local deployment.
"""

import json
import os

from repro.adapt.rules import parse_rule_document_tolerant
from repro.analysis import TaskSpec, response_time
from repro.cluster.transport import LinkSpec
from repro.core.descriptor import ComponentDescriptor
from repro.core.errors import DRComError
# Shared interval arithmetic: DRT606 must agree with DRT503 about
# when two rule conditions can hold in the same epoch.
from repro.lint.adaptrules import _compatible, _constraint_map
from repro.lint.diagnostics import Diagnostic

#: Plan document version this analyzer reads.
PLAN_SCHEMA_VERSION = 1

#: The management plane's transport endpoint (mirrors
#: ``Cluster.coordinator_name`` without importing the federation).
COORDINATOR = "control"

#: Same capacity slack as the runtime placement services.
_EPSILON = 1e-12

_PLAN_KEYS = frozenset((
    "plan_version", "name", "cap", "default_link", "links", "nodes",
    "deployments", "applications", "rules"))
_NODE_KEYS = frozenset(("name", "num_cpus", "cap"))
_LINK_KEYS = frozenset(("src", "dst", "latency_ns", "jitter_ns",
                        "drop_probability"))


def looks_like_plan_file(text):
    """Whether a ``.json`` source is a deployment plan.

    Cheap structural sniff: a JSON object carrying ``plan_version``,
    or both a ``nodes`` list and a ``deployments`` list.  Checked
    *before* the rule-file sniff in the engine -- a plan legitimately
    carries a ``rules`` key of its own.
    """
    try:
        document = json.loads(text)
    except ValueError:
        return False
    if not isinstance(document, dict):
        return False
    if "plan_version" in document:
        return True
    return isinstance(document.get("nodes"), list) \
        and isinstance(document.get("deployments"), list)


def _is_number(value):
    return isinstance(value, (int, float)) \
        and not isinstance(value, bool)


class PlanNode:
    """One node of the plan: capacity, never a live platform."""

    __slots__ = ("name", "num_cpus", "cap")

    def __init__(self, name, num_cpus, cap):
        self.name = name
        self.num_cpus = num_cpus
        self.cap = cap

    @property
    def capacity(self):
        """Total declared-utilization budget (``num_cpus * cap``)."""
        return self.num_cpus * self.cap


class PlanComponent:
    """One descriptor assignment: text, parsed form (or None), home."""

    __slots__ = ("xml", "location", "node", "descriptor")

    def __init__(self, xml, location, node, descriptor):
        self.xml = xml
        self.location = location
        self.node = node
        self.descriptor = descriptor


class DeploymentPlan:
    """Parsed plan: pure data, ready for the DRT6xx checks."""

    def __init__(self, location="<plan>"):
        self.location = location
        self.name = "plan"
        self.nodes = {}          # name -> PlanNode, insertion order
        self.default_link = LinkSpec()
        self.links = {}          # (src, dst) -> LinkSpec
        self.components = []     # PlanComponent, plan order
        self.applications = {}   # app name -> [member names]
        self.rule_sources = []   # (location, text)

    def components_of(self, node_name):
        """This node's components, plan order."""
        return [comp for comp in self.components
                if comp.node == node_name]

    def node_of(self):
        """``{component name: home node}`` for parseable components."""
        return {comp.descriptor.name: comp.node
                for comp in self.components
                if comp.descriptor is not None}

    def link_for(self, src, dst):
        """The declared link for (src, dst), or the default."""
        return self.links.get((src, dst), self.default_link)


def _parse_link(data, where, problems):
    """A :class:`LinkSpec` from plan JSON, or None (problem noted)."""
    if not isinstance(data, dict):
        problems.append("%s must be an object, got %s"
                        % (where, type(data).__name__))
        return None
    unknown = sorted(set(data) - _LINK_KEYS)
    if unknown:
        problems.append("%s has unknown field(s): %s"
                        % (where, ", ".join(unknown)))
    kwargs = {}
    for field in ("latency_ns", "jitter_ns", "drop_probability"):
        if field in data:
            if not _is_number(data[field]):
                problems.append("%s.%s must be a number, got %r"
                                % (where, field, data[field]))
                return None
            kwargs[field] = data[field]
    try:
        return LinkSpec(**kwargs)
    except ValueError as error:
        problems.append("%s: %s" % (where, error))
        return None


def _parse_nodes(document, plan, default_cap, problems):
    nodes = document.get("nodes")
    if not isinstance(nodes, list) or not nodes:
        problems.append("plan needs a non-empty 'nodes' list")
        return
    for index, data in enumerate(nodes):
        where = "nodes[%d]" % index
        if not isinstance(data, dict):
            problems.append("%s must be an object" % where)
            continue
        unknown = sorted(set(data) - _NODE_KEYS)
        if unknown:
            problems.append("%s has unknown field(s): %s"
                            % (where, ", ".join(unknown)))
        name = data.get("name")
        if not isinstance(name, str) or not name:
            problems.append("%s needs a non-empty 'name'" % where)
            continue
        if name == COORDINATOR:
            problems.append(
                "%s: %r is reserved for the coordinator endpoint"
                % (where, COORDINATOR))
            continue
        if name in plan.nodes:
            problems.append("duplicate node name %r" % name)
            continue
        num_cpus = data.get("num_cpus", 1)
        if not isinstance(num_cpus, int) \
                or isinstance(num_cpus, bool) or num_cpus < 1:
            problems.append("%s.num_cpus must be a positive integer"
                            % where)
            continue
        cap = data.get("cap", default_cap)
        if not _is_number(cap) or cap <= 0:
            problems.append("%s.cap must be a positive number" % where)
            continue
        plan.nodes[name] = PlanNode(name, num_cpus, float(cap))


def _read_source(source, base_dir, plan_location, where, problems):
    """Resolve a path-valued plan source; returns (path, text)."""
    if os.path.isabs(source):
        resolved = source
    elif base_dir is not None:
        resolved = os.path.join(base_dir, source)
    else:
        problems.append(
            "%s: cannot resolve relative source %r (the plan has no "
            "on-disk location)" % (where, source))
        return None
    try:
        with open(resolved, "r", encoding="utf-8") as handle:
            return resolved, handle.read()
    except OSError as error:
        problems.append("%s: cannot read source %r: %s"
                        % (where, source, error))
        return None


def _parse_deployments(document, plan, base_dir, problems):
    deployments = document.get("deployments", [])
    if deployments is None:
        deployments = []
    if not isinstance(deployments, list):
        problems.append("'deployments' must be a list")
        return
    homes = {}
    for index, data in enumerate(deployments):
        where = "deployments[%d]" % index
        if not isinstance(data, dict):
            problems.append("%s must be an object" % where)
            continue
        node_name = data.get("node")
        if node_name not in plan.nodes:
            problems.append("%s targets unknown node %r"
                            % (where, node_name))
            continue
        components = data.get("components")
        if not isinstance(components, list):
            problems.append("%s needs a 'components' list" % where)
            continue
        for cindex, source in enumerate(components):
            if isinstance(source, str):
                read = _read_source(source, base_dir, plan.location,
                                    where, problems)
                if read is None:
                    continue
                comp_location, text = read
            elif isinstance(source, dict) \
                    and isinstance(source.get("xml"), str):
                text = source["xml"]
                comp_location = "%s#%s[%d]" % (plan.location,
                                               node_name, cindex)
            else:
                problems.append(
                    "%s.components[%d] must be a descriptor path or "
                    "an {\"xml\": ...} object" % (where, cindex))
                continue
            try:
                descriptor = ComponentDescriptor.from_xml(text)
            except DRComError as error:
                problems.append(
                    "%s: descriptor at %s fails to parse and is "
                    "excluded from the plan analysis: %s"
                    % (where, comp_location, error))
                descriptor = None
            if descriptor is not None:
                other = homes.get(descriptor.name)
                if other is not None and other != node_name:
                    problems.append(
                        "component %r is deployed on both %r and %r; "
                        "the fleet home map holds one home per "
                        "component" % (descriptor.name, other,
                                       node_name))
                    continue
                homes[descriptor.name] = node_name
            plan.components.append(PlanComponent(
                text, comp_location, node_name, descriptor))


def _parse_applications(document, plan, problems):
    applications = document.get("applications", {})
    if applications is None:
        applications = {}
    if not isinstance(applications, dict):
        problems.append("'applications' must be an object")
        return
    deployed = {comp.descriptor.name for comp in plan.components
                if comp.descriptor is not None}
    for app, members in applications.items():
        if not isinstance(members, list) \
                or not all(isinstance(m, str) for m in members):
            problems.append("application %r must list member names"
                            % app)
            continue
        for member in members:
            if member not in deployed:
                problems.append(
                    "application %r names %r, which no node deploys"
                    % (app, member))
        plan.applications[app] = list(members)


def _parse_rules(document, plan, base_dir, problems):
    rules = document.get("rules", [])
    if rules is None:
        rules = []
    if not isinstance(rules, list):
        problems.append("'rules' must be a list")
        return
    for index, source in enumerate(rules):
        where = "rules[%d]" % index
        if isinstance(source, str):
            read = _read_source(source, base_dir, plan.location,
                                where, problems)
            if read is not None:
                plan.rule_sources.append(read)
        elif isinstance(source, dict) \
                and isinstance(source.get("document"), dict):
            plan.rule_sources.append((
                "%s#rules[%d]" % (plan.location, index),
                json.dumps(source["document"])))
        else:
            problems.append(
                "%s must be a rule-file path or a {\"document\": ...} "
                "object" % where)


def parse_plan(document, location="<plan>", base_dir=None):
    """Parse a plan document into a :class:`DeploymentPlan`.

    Returns ``(plan, problems)`` -- ``problems`` is a list of strings,
    each becoming one DRT600.  Parsing is tolerant: whatever validates
    is kept, so the topology checks still run on the healthy part of
    a partially broken plan.
    """
    problems = []
    plan = DeploymentPlan(location)
    if not isinstance(document, dict):
        problems.append("plan must be a JSON object, got %s"
                        % type(document).__name__)
        return plan, problems
    if base_dir is None and os.path.isfile(location):
        base_dir = os.path.dirname(os.path.abspath(location))
    version = document.get("plan_version", PLAN_SCHEMA_VERSION)
    if version != PLAN_SCHEMA_VERSION:
        problems.append(
            "unsupported plan_version %r (this drtlint reads "
            "version %d)" % (version, PLAN_SCHEMA_VERSION))
    unknown = sorted(set(document) - _PLAN_KEYS)
    if unknown:
        problems.append("plan has unknown top-level key(s): %s"
                        % ", ".join(unknown))
    name = document.get("name", "plan")
    if isinstance(name, str) and name:
        plan.name = name
    default_cap = document.get("cap", 1.0)
    if not _is_number(default_cap) or default_cap <= 0:
        problems.append("'cap' must be a positive number")
        default_cap = 1.0
    _parse_nodes(document, plan, default_cap, problems)
    if "default_link" in document:
        link = _parse_link(document["default_link"], "default_link",
                           problems)
        if link is not None:
            plan.default_link = link
    links = document.get("links", [])
    if links is None:
        links = []
    if not isinstance(links, list):
        problems.append("'links' must be a list")
        links = []
    endpoints = set(plan.nodes) | {COORDINATOR}
    for index, data in enumerate(links):
        where = "links[%d]" % index
        link = _parse_link(data, where, problems)
        if link is None:
            continue
        src = data.get("src")
        dst = data.get("dst")
        if src not in endpoints or dst not in endpoints:
            problems.append(
                "%s connects unknown endpoint(s) %r -> %r (known: "
                "%s)" % (where, src, dst,
                         ", ".join(sorted(endpoints))))
            continue
        plan.links[(src, dst)] = link
    _parse_deployments(document, plan, base_dir, problems)
    _parse_applications(document, plan, problems)
    _parse_rules(document, plan, base_dir, problems)
    return plan, problems


# ----------------------------------------------------------------------
# the checks
# ----------------------------------------------------------------------
def _enabled_components(plan, node_name):
    return [comp for comp in plan.components_of(node_name)
            if comp.descriptor is not None and comp.descriptor.enabled]


def _check_hosting(plan):
    """DRT601: every node must fit its own components.

    Replays the node's admission statically: pinned components
    (``drcom.placement=pinned``) claim their declared CPU, everything
    else is best-fit re-pinned exactly like
    :class:`~repro.core.placement.BestFitPlacement` does at deploy
    time, in plan order.
    """
    diagnostics = []
    for node_name, node in plan.nodes.items():
        loads = [0.0] * node.num_cpus
        for comp in _enabled_components(plan, node_name):
            contract = comp.descriptor.contract
            usage = contract.cpu_usage
            pinned = comp.descriptor.property_value(
                "drcom.placement") == "pinned"
            if pinned:
                cpu = contract.cpu
                if cpu >= node.num_cpus:
                    diagnostics.append(Diagnostic(
                        "DRT601", comp.descriptor.name, comp.location,
                        "pinned to CPU %d, but node %r declares only "
                        "%d CPU(s)" % (cpu, node_name, node.num_cpus)))
                    continue
                if loads[cpu] + usage > node.cap + _EPSILON:
                    diagnostics.append(Diagnostic(
                        "DRT601", comp.descriptor.name, comp.location,
                        "pinned claim %.3f does not fit CPU %d of "
                        "node %r (load already %.3f, cap %.2f)"
                        % (usage, cpu, node_name, loads[cpu],
                           node.cap)))
                    continue
                loads[cpu] += usage
                continue
            best = None
            for cpu in range(node.num_cpus):
                if loads[cpu] + usage > node.cap + _EPSILON:
                    continue
                if best is None or loads[cpu] < loads[best]:
                    best = cpu
            if best is None:
                diagnostics.append(Diagnostic(
                    "DRT601", comp.descriptor.name, comp.location,
                    "node %r cannot place %s (claim %.3f): per-CPU "
                    "loads are %s at cap %.2f; admission on this "
                    "node would reject it"
                    % (node_name, comp.descriptor.name, usage,
                       ["%.3f" % load for load in loads], node.cap)))
            else:
                loads[best] += usage
    return diagnostics


def _group_components(members, applications):
    """Co-location groups of one node's components.

    Mirrors ``repro.cluster.federation._group_entries``: members of
    one application (transitively, when applications overlap) form one
    group, everything else is a singleton; application groups come
    first, exactly the order failover re-homing plans in.
    """
    group_of = {}
    merged = {}
    next_id = 0
    for app_members in applications.values():
        ids = {group_of[m] for m in app_members if m in group_of}
        target = min(ids) if ids else next_id
        if not ids:
            next_id += 1
        names = merged.setdefault(target, set())
        for gid in ids:
            if gid != target:
                names |= merged.pop(gid)
        names.update(app_members)
        for name in names:
            group_of[name] = target
    groups = {}
    singles = []
    for comp in members:
        gid = group_of.get(comp.descriptor.name)
        if gid is None:
            singles.append([comp])
        else:
            groups.setdefault(gid, []).append(comp)
    return list(groups.values()) + singles


def _check_failover_capacity(plan):
    """DRT602: simulate each node's loss; survivors must absorb it.

    Greedy group placement under ``choose_node_for_group`` semantics:
    node capacity is ``num_cpus * cap``, the least-loaded survivor
    that fits takes the group, and earlier groups' budget counts
    against later ones (``extra_node_load``).  N-1 analysis needs at
    least two nodes; single-node plans are skipped.
    """
    if len(plan.nodes) < 2:
        return []
    diagnostics = []
    base_load = {
        name: sum(comp.descriptor.contract.cpu_usage
                  for comp in _enabled_components(plan, name))
        for name in plan.nodes
    }
    for dead in plan.nodes:
        members = _enabled_components(plan, dead)
        if not members:
            continue
        extra = {}
        for group in _group_components(members, plan.applications):
            total = sum(comp.descriptor.contract.cpu_usage
                        for comp in group)
            best = None
            best_load = None
            for survivor, node in plan.nodes.items():
                if survivor == dead:
                    continue
                load = base_load[survivor] + extra.get(survivor, 0.0)
                if load + total > node.capacity + _EPSILON:
                    continue
                if best_load is None or load < best_load:
                    best = survivor
                    best_load = load
            if best is None:
                names = ", ".join(sorted(comp.descriptor.name
                                         for comp in group))
                headroom = max(
                    (plan.nodes[s].capacity - base_load[s]
                     - extra.get(s, 0.0)
                     for s in plan.nodes if s != dead),
                    default=0.0)
                diagnostics.append(Diagnostic(
                    "DRT602", names, group[0].location,
                    "losing node %r strands {%s}: the group claims "
                    "%.3f but the best survivor headroom is %.3f "
                    "under group placement; the fleet has no N-1 "
                    "failover capacity"
                    % (dead, names, total, headroom)))
            else:
                extra[best] = extra.get(best, 0.0) + total
    return diagnostics


def _check_cross_node_wiring(plan):
    """DRT603: applications split across nodes, and inports whose
    only compatible providers live on other nodes.  Ports bind inside
    one node's kernel; neither can ever resolve at run time."""
    diagnostics = []
    node_of = plan.node_of()
    flagged_members = set()
    for app, members in sorted(plan.applications.items()):
        homes = sorted({node_of[m] for m in members if m in node_of})
        if len(homes) > 1:
            flagged_members.update(members)
            diagnostics.append(Diagnostic(
                "DRT603", app, plan.location,
                "application %r is split across nodes %s; port "
                "wiring resolves inside a single node's kernel, so "
                "the members must be co-located"
                % (app, ", ".join(homes))))
    providers = {}
    for comp in plan.components:
        if comp.descriptor is None or not comp.descriptor.enabled:
            continue
        for port in comp.descriptor.outports:
            providers.setdefault(port.signature(), []).append(
                (comp.node, comp.descriptor.name))
    for comp in plan.components:
        if comp.descriptor is None or not comp.descriptor.enabled:
            continue
        if comp.descriptor.name in flagged_members:
            continue  # the split application already covers it
        for port in comp.descriptor.inports:
            supply = providers.get(port.signature())
            if not supply:
                continue  # no provider anywhere: DRT201 per node
            if any(node == comp.node for node, _ in supply):
                continue
            remote = ", ".join(sorted(
                "%s on %s" % (name, node) for node, name in supply))
            diagnostics.append(Diagnostic(
                "DRT603", comp.descriptor.name, comp.location,
                "inport %r is only provided across the node boundary "
                "(%s); this wiring can never resolve"
                % (port.name, remote)))
    return diagnostics


def _check_management_latency(plan):
    """DRT604: coordinator-to-component command paths vs deadlines.

    A §2.4 management command rides the ``control -> node`` link and
    takes effect once the target task next completes; when worst-case
    link latency (latency + jitter) plus the component's exact
    response time already exceeds its deadline, no command can land
    within one deadline window.  Components whose response time
    analysis diverges are DRT302's finding, not repeated here.
    """
    diagnostics = []
    for node_name in plan.nodes:
        link = plan.link_for(COORDINATOR, node_name)
        wire_ns = link.latency_ns + link.jitter_ns
        by_cpu = {}
        for comp in _enabled_components(plan, node_name):
            if not comp.descriptor.contract.is_rate_bound:
                continue
            by_cpu.setdefault(comp.descriptor.contract.cpu,
                              []).append(comp)
        for cpu, members in sorted(by_cpu.items()):
            pairs = [(comp, TaskSpec.from_contract(
                comp.descriptor.contract)) for comp in members]
            for comp, spec in pairs:
                interfering = [other for _, other in pairs
                               if other is not spec
                               and other.priority <= spec.priority]
                response = response_time(spec, interfering)
                if response is None:
                    continue
                if wire_ns + response > spec.deadline_ns:
                    diagnostics.append(Diagnostic(
                        "DRT604", comp.descriptor.name, comp.location,
                        "a management command from %r reaches %s no "
                        "earlier than %.3f ms (link worst case %.3f "
                        "ms + response %.3f ms), past its %.3f ms "
                        "deadline"
                        % (COORDINATOR, comp.descriptor.name,
                           (wire_ns + response) / 1e6, wire_ns / 1e6,
                           response / 1e6, spec.deadline_ns / 1e6)))
    return diagnostics


def _check_rules_against_topology(plan):
    """DRT605 (orphan scopes/targets) and DRT606 (migration
    ping-pong) over every rule source the plan names."""
    diagnostics = []
    node_names = set(plan.nodes)
    migrations = []  # (rule, location, component, dst)
    for location, text in plan.rule_sources:
        try:
            document = json.loads(text)
        except ValueError:
            continue  # DRT500 reports this under the rules family
        rules, _ = parse_rule_document_tolerant(document)
        for rule in rules:
            orphan_nodes = set()
            predicates = (rule.when,) if rule.clear is None \
                else (rule.when, rule.clear)
            for predicate in predicates:
                for leaf in predicate.leaves():
                    if leaf.node is not None \
                            and leaf.node not in node_names \
                            and leaf.node not in orphan_nodes:
                        orphan_nodes.add(leaf.node)
                        diagnostics.append(Diagnostic(
                            "DRT605", rule.name, location,
                            "predicate scope %r matches no node of "
                            "this plan (nodes: %s); the condition "
                            "can never hold"
                            % (leaf.node,
                               ", ".join(sorted(node_names)))))
            for action in rule.actions:
                kind = action["action"]
                target = None
                if kind == "migrate":
                    target = action.get("dst")
                elif kind == "rebalance":
                    target = action.get("node")
                if target is not None and target not in node_names:
                    diagnostics.append(Diagnostic(
                        "DRT605", rule.name, location,
                        "action %r targets node %r, which this plan "
                        "does not declare (nodes: %s)"
                        % (kind, target,
                           ", ".join(sorted(node_names)))))
                if kind == "migrate" \
                        and action.get("dst") is not None:
                    migrations.append((rule, location,
                                       action["component"],
                                       action["dst"]))
    reported = set()
    for index, (first, location, component, dst) \
            in enumerate(migrations):
        for second, _, other_component, other_dst \
                in migrations[index + 1:]:
            if component != other_component or dst == other_dst:
                continue
            pair = tuple(sorted((first.name, second.name))) \
                + (component,)
            if pair in reported:
                continue
            if not _compatible(_constraint_map(first.when),
                               _constraint_map(second.when)):
                continue
            reported.add(pair)
            diagnostics.append(Diagnostic(
                "DRT606", component, location,
                "rules %r and %r can hold in the same epoch yet "
                "migrate %r to different nodes (%r vs %r); the "
                "component ping-pongs between homes while both "
                "conditions overlap"
                % (first.name, second.name, component, dst,
                   other_dst)))
    return diagnostics


def check_plan(plan):
    """All topology-level DRT60x diagnostics for a parsed plan."""
    diagnostics = []
    diagnostics.extend(_check_hosting(plan))
    diagnostics.extend(_check_failover_capacity(plan))
    diagnostics.extend(_check_cross_node_wiring(plan))
    diagnostics.extend(_check_management_latency(plan))
    diagnostics.extend(_check_rules_against_topology(plan))
    return diagnostics


# ----------------------------------------------------------------------
# entry points (the engine and the PlanGuard call these)
# ----------------------------------------------------------------------
def lint_plan_document(document, location="<plan>", families=None,
                       base_dir=None):
    """Lint one plan document (a parsed JSON object).

    Returns ``(diagnostics, units, sources)``: the plan itself is one
    unit, every node with components is one more (its descriptor set
    runs the contract/wiring/admission families), and every rule
    source another (DRT5xx).  ``families`` follows the engine's
    convention (None = all).
    """
    # Local import: the engine imports this module at load time.
    from repro.lint.engine import FAMILIES, lint_descriptor_texts
    if families is None:
        families = FAMILIES
    plan, problems = parse_plan(document, location, base_dir=base_dir)
    diagnostics = []
    units = 1
    sources = 1
    if "deployment" in families:
        for problem in problems:
            diagnostics.append(Diagnostic("DRT600", "", location,
                                          problem))
    node_families = tuple(f for f in families
                          if f in ("contract", "wiring", "admission"))
    for node_name in plan.nodes:
        unit = [(comp.location, comp.xml)
                for comp in plan.components_of(node_name)]
        if not unit:
            continue
        units += 1
        sources += len(unit)
        if node_families:
            diagnostics.extend(
                lint_descriptor_texts(unit, node_families))
    if plan.rule_sources:
        from repro.lint import adaptrules
        for rule_location, rule_text in plan.rule_sources:
            units += 1
            sources += 1
            if "rules" in families:
                diagnostics.extend(adaptrules.check_rule_source(
                    rule_text, rule_location))
    if "deployment" in families:
        diagnostics.extend(check_plan(plan))
    return diagnostics, units, sources


def lint_plan_source(text, location="<plan>", families=None):
    """Lint a plan file's raw text (the engine's ``.json`` hook)."""
    try:
        document = json.loads(text)
    except ValueError as error:
        diagnostics = []
        if families is None or "deployment" in families:
            diagnostics.append(Diagnostic(
                "DRT600", "", location, "invalid JSON: %s" % error))
        return diagnostics, 1, 1
    return lint_plan_document(document, location, families=families)
