"""drtlint: whole-deployment static verification for DRCom.

DRCom's real-time aspect is *declarative* -- an XML contract (paper
section 2.3) -- so an entire deployment set can be verified **before**
a single task is admitted.  This package is that verifier: six
analyzer families over descriptors, the port graph, the declared
schedulability, the implementation AST, adaptation-rule files and
whole-fleet deployment plans, each emitting
:class:`~repro.lint.diagnostics.Diagnostic` records with stable
``DRTxxx`` codes.

* ``python -m repro lint <paths...>`` -- the CLI;
* :func:`lint_paths` / :func:`lint_descriptors` / :func:`lint_plan`
  -- the library API;
* :class:`LintResolvingService` -- drtlint as a DRCR pre-admission
  resolving service (paper section 3's customized resolvers).

See ``docs/STATIC_ANALYSIS.md`` for the full code table.
"""

from repro.lint.diagnostics import CODE_TABLE, Diagnostic, Severity
from repro.lint.engine import (
    FAMILIES,
    JSON_SCHEMA_VERSION,
    LintResult,
    family_of_code,
    lint_descriptors,
    lint_paths,
    lint_plan,
)
from repro.lint.resolver import LintResolvingService

__all__ = [
    "CODE_TABLE",
    "Diagnostic",
    "FAMILIES",
    "JSON_SCHEMA_VERSION",
    "LintResolvingService",
    "LintResult",
    "Severity",
    "family_of_code",
    "lint_descriptors",
    "lint_paths",
    "lint_plan",
]
