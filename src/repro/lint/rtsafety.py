"""DRT4xx -- RT-safety AST analyzers.

The hybrid component model's hard rule (paper section 3.1): the
real-time part is "an independent concurrent process" that must never
re-enter the OSGi/JVM side.  In the reproduction the RT part is the
set of :class:`~repro.hybrid.implementation.RTImplementation` callbacks
the kernel drives every job -- ``compute_ns``, ``execute`` and
``on_command``.  This module walks implementation modules with
:mod:`ast` and flags RT callbacks that

* block (``time.sleep``) -- DRT401,
* perform file/socket/process I/O -- DRT402,
* look up or register OSGi services -- DRT403,
* grow instance state on every job (unbounded allocation in the
  periodic body) -- DRT404.

Activation-time hooks (``init``/``uninit``) run on the OSGi side of
the bridge and are deliberately *not* checked.
"""

import ast

from repro.lint.diagnostics import Diagnostic, Severity

#: Methods that execute inside the RT task body every job.
RT_CALLBACKS = ("compute_ns", "execute", "on_command")

#: Base class names that mark a class as an RT implementation.
_RT_BASES = {"RTImplementation", "SyntheticImplementation"}

#: Exact dotted calls that block the RT task (DRT401).
_BLOCKING_CALLS = {"time.sleep"}

#: Dotted-prefix roots whose calls are I/O (DRT402).  ``os`` is listed
#: per-function (``os.path.join`` & co. are pure).
_IO_CALLS = {"io.open", "os.open", "os.read", "os.write", "os.system",
             "os.popen", "os.remove", "os.unlink"}
_IO_ROOTS = ("socket", "subprocess", "requests", "urllib", "http")
_IO_BUILTINS = {"open"}

#: Method names that re-enter the OSGi service layer (DRT403).
_SERVICE_METHODS = {"get_service", "get_reference",
                    "get_service_references", "register_service",
                    "install_bundle"}

#: Container-growing method names on ``self``-rooted state (DRT404).
_GROWTH_METHODS = {"append", "extend", "insert", "add", "appendleft"}


def check_python_source(text, path):
    """Run the DRT4xx checks over one implementation module."""
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as error:
        return [Diagnostic(
            "DRT400", "", "%s:%s" % (path, error.lineno or 0),
            "implementation source fails to parse: %s" % error.msg)]
    imports = _import_table(tree)
    diagnostics = []
    for cls in _rt_classes(tree):
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            if method.name not in RT_CALLBACKS:
                continue
            diagnostics.extend(
                _check_callback(cls, method, imports, path))
    return diagnostics


# ----------------------------------------------------------------------
# module-level discovery
# ----------------------------------------------------------------------
def _import_table(tree):
    """Map local names to the dotted names they import.

    ``import time as t`` -> ``{"t": "time"}``;
    ``from time import sleep`` -> ``{"sleep": "time.sleep"}``.
    """
    table = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                table[alias.asname or alias.name.split(".")[0]] = \
                    alias.name
        elif isinstance(node, ast.ImportFrom) and node.module \
                and not node.level:
            for alias in node.names:
                table[alias.asname or alias.name] = \
                    "%s.%s" % (node.module, alias.name)
    return table


def _rt_classes(tree):
    """Classes (transitively) deriving from RTImplementation."""
    classes = [node for node in ast.walk(tree)
               if isinstance(node, ast.ClassDef)]
    rt_names = set(_RT_BASES)
    found = {}
    # Fixpoint over local inheritance chains: a class whose base is a
    # module-local RT class is an RT class too.
    changed = True
    while changed:
        changed = False
        for cls in classes:
            if cls.name in found:
                continue
            for base in cls.bases:
                base_name = _dotted(base)
                if base_name is None:
                    continue
                leaf = base_name.split(".")[-1]
                if leaf in rt_names:
                    found[cls.name] = cls
                    rt_names.add(cls.name)
                    changed = True
                    break
    return [found[name] for name in sorted(found)]


def _dotted(node):
    """Render a Name/Attribute chain as ``a.b.c`` (None otherwise)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ----------------------------------------------------------------------
# per-callback checks
# ----------------------------------------------------------------------
def _check_callback(cls, method, imports, path):
    diagnostics = []
    for node in ast.walk(method):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        location = "%s:%d" % (path, node.lineno)
        where = "%s.%s" % (cls.name, method.name)
        resolved = _resolve(dotted, imports)
        if resolved in _BLOCKING_CALLS:
            diagnostics.append(Diagnostic(
                "DRT401", cls.name, location,
                "%s calls %s: the RT part must never block"
                % (where, resolved)))
            continue
        if _is_io_call(dotted, resolved):
            diagnostics.append(Diagnostic(
                "DRT402", cls.name, location,
                "%s performs I/O via %s" % (where, resolved or dotted)))
            continue
        if dotted == "print":
            diagnostics.append(Diagnostic(
                "DRT402", cls.name, location,
                "%s performs console I/O (print)" % where,
                severity=Severity.WARNING))
            continue
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in _SERVICE_METHODS:
            diagnostics.append(Diagnostic(
                "DRT403", cls.name, location,
                "%s re-enters the OSGi service layer via .%s()"
                % (where, node.func.attr)))
            continue
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in _GROWTH_METHODS \
                and _rooted_at_self(node.func.value):
            diagnostics.append(Diagnostic(
                "DRT404", cls.name, location,
                "%s grows instance state every job via %s.%s(); "
                "bound the buffer or aggregate in place"
                % (where, _dotted(node.func.value) or "self",
                   node.func.attr)))
    return diagnostics


def _resolve(dotted, imports):
    """Resolve a call's dotted name through the import table."""
    if not dotted:
        return dotted
    head, _, rest = dotted.partition(".")
    target = imports.get(head)
    if target is None:
        return dotted
    return "%s.%s" % (target, rest) if rest else target


def _is_io_call(dotted, resolved):
    if dotted in _IO_BUILTINS:
        return True
    name = resolved or dotted
    if not name:
        return False
    if name in _IO_CALLS:
        return True
    return name.split(".")[0] in _IO_ROOTS


def _rooted_at_self(node):
    while isinstance(node, ast.Attribute):
        node = node.value
    return isinstance(node, ast.Name) and node.id == "self"
