"""DRT7xx: static analysis of ``<stochastic>`` descriptor clauses.

The runtime :class:`~repro.monitor.service.ContractMonitor` checks
declared distributions online; this family catches the declarations
that are wrong *before* anything runs:

* **DRT700** -- a clause the monitor cannot check: an ``interarrival``
  distribution on a *periodic* component (releases ride the timer
  grid, there is no arrival process to test);
* **DRT701** -- distribution parameters inconsistent with the
  point-estimate contract: execution-time mass above the derived WCET
  (``cpuusage * period``), or inter-arrival mass below the sporadic
  minimum inter-arrival time (such arrivals are throttled by the
  kernel, so the declared distribution can never be observed);
* **DRT702** -- a contract that can never actually be *checked*: at
  the monitor's epoch length, fewer than ``min_samples`` observations
  can accrue per epoch, so the goodness-of-fit test never evaluates
  and the declared tolerance is dead weight.

Thresholds: a distribution "has mass" past a bound when more than the
contract's own ``tolerance`` of its probability lies there -- the same
significance the runtime test uses, so static and runtime checking
agree about what counts as negligible.
"""

from repro.core.contracts import DEFAULT_MONITOR_EPOCH_NS
from repro.lint.diagnostics import Diagnostic
from repro.rtos.task import TaskType


def _mass_above(spec, bound):
    """Probability mass of ``spec`` strictly above ``bound``."""
    return 1.0 - spec.cdf(bound)


def _mass_below(spec, bound):
    """Probability mass of ``spec`` at or below ``bound``."""
    return spec.cdf(bound)


def _expected_interarrival_ns(contract, stochastic):
    """Expected time between observable samples for rate estimation:
    the declared arrival mean for event-driven tasks, else the
    period/MIA."""
    if stochastic.interarrival is not None \
            and contract.task_type is not TaskType.PERIODIC:
        return max(stochastic.interarrival.mean,
                   float(contract.period_ns or 0))
    if contract.period_ns is not None:
        return float(contract.period_ns)
    return None


def check_descriptor(descriptor, location,
                     epoch_ns=DEFAULT_MONITOR_EPOCH_NS):
    """All DRT7xx diagnostics for one descriptor."""
    contract = descriptor.contract
    stochastic = contract.stochastic
    if stochastic is None:
        return []
    diagnostics = []
    name = descriptor.name
    tolerance = stochastic.tolerance

    # DRT700: unmonitorable clause shape.
    if stochastic.interarrival is not None \
            and contract.task_type is TaskType.PERIODIC:
        diagnostics.append(Diagnostic(
            "DRT700", name, location,
            "interarrival distribution declared on a periodic "
            "component: releases are timer-driven, there is no "
            "arrival process to check"))

    # DRT701: parameters vs the point-estimate contract.
    exectime = stochastic.exectime
    wcet = contract.wcet_ns
    if exectime is not None and wcet is not None and wcet > 0:
        mass = _mass_above(exectime, float(wcet))
        if exectime.mean > wcet:
            diagnostics.append(Diagnostic(
                "DRT701", name, location,
                "declared execution-time mean %.0f ns exceeds the "
                "derived WCET %d ns (cpuusage * period): the CPU "
                "claim cannot cover the declared average demand"
                % (exectime.mean, wcet)))
        elif mass > tolerance:
            diagnostics.append(Diagnostic(
                "DRT701", name, location,
                "declared execution-time distribution puts %.1f%% of "
                "its mass above the derived WCET %d ns (tolerance "
                "%.1f%%): overruns are expected by declaration"
                % (100.0 * mass, wcet, 100.0 * tolerance)))
    interarrival = stochastic.interarrival
    if interarrival is not None \
            and contract.task_type is TaskType.SPORADIC:
        mia = float(contract.period_ns)
        mass = _mass_below(interarrival, mia)
        if interarrival.mean < mia:
            diagnostics.append(Diagnostic(
                "DRT701", name, location,
                "declared inter-arrival mean %.0f ns is below the "
                "minimum inter-arrival time %d ns: most arrivals "
                "would be throttled, the declared distribution can "
                "never be observed" % (interarrival.mean, mia)))
        elif mass > tolerance:
            diagnostics.append(Diagnostic(
                "DRT701", name, location,
                "declared inter-arrival distribution puts %.1f%% of "
                "its mass below the minimum inter-arrival time %d ns "
                "(tolerance %.1f%%): the kernel throttles those "
                "arrivals, skewing every observed sample"
                % (100.0 * mass, mia, 100.0 * tolerance)))

    # DRT702: can min_samples ever accrue within one epoch?
    expected_gap = _expected_interarrival_ns(contract, stochastic)
    if expected_gap is not None and expected_gap > 0:
        expected_samples = epoch_ns / expected_gap
        if expected_samples < stochastic.min_samples:
            diagnostics.append(Diagnostic(
                "DRT702", name, location,
                "at ~%.1f observations per %d ns monitor epoch, "
                "min_samples=%d can never accrue: the declared "
                "tolerance %.3g is never actually tested"
                % (expected_samples, epoch_ns, stochastic.min_samples,
                   tolerance)))
    return diagnostics


def check_stochastic(entries, epoch_ns=DEFAULT_MONITOR_EPOCH_NS):
    """DRT7xx over ``(descriptor, location)`` deployment entries."""
    diagnostics = []
    for descriptor, location in entries:
        diagnostics.extend(
            check_descriptor(descriptor, location, epoch_ns=epoch_ns))
    return diagnostics
