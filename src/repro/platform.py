"""One-call assembly of the whole stack.

A *platform* is the composed system the paper's testbed ran: a simulated
machine (simulator + dual-kernel RTOS), an OSGi framework on its Linux
side, and a DRCR attached to both.  Most examples, tests and benchmarks
start from :func:`build_platform`.
"""

from repro.core.drcr import DRCR
from repro.osgi.framework import Framework
from repro.rtos.kernel import KernelConfig, RTKernel
from repro.sim.engine import MSEC, Simulator


class Platform:
    """The assembled stack: simulator, kernel, framework, DRCR."""

    def __init__(self, sim, kernel, framework, drcr):
        self.sim = sim
        self.kernel = kernel
        self.framework = framework
        self.drcr = drcr

    @property
    def now(self):
        """Current simulated time (ns)."""
        return self.sim.now

    def run_for(self, duration_ns):
        """Advance simulated time by ``duration_ns``."""
        return self.sim.run_for(duration_ns)

    def start_timer(self, period_ns=MSEC):
        """Start the hardware timer (required before periodic tasks)."""
        self.kernel.start_timer(period_ns)

    def install_and_start(self, headers, resources=None, activator=None):
        """Install a bundle and start it (DRCom descriptors inside are
        deployed by the DRCR automatically)."""
        bundle = self.framework.install_bundle(headers, resources,
                                               activator)
        bundle.start()
        return bundle

    def shutdown(self):
        """Detach the DRCR and stop the framework."""
        self.drcr.detach()
        self.framework.shutdown()

    def __repr__(self):
        return "Platform(t=%dns, %r, %r)" % (self.now, self.framework,
                                             self.drcr)


def build_platform(seed=0, kernel_config=None, internal_policy=None,
                   container_factory=None, attach=True):
    """Assemble a full platform.

    Parameters mirror the individual constructors; ``attach=False``
    leaves the DRCR detached (the caller wires listeners first).
    """
    sim = Simulator(seed=seed)
    kernel = RTKernel(sim, kernel_config or KernelConfig())
    framework = Framework()
    drcr = DRCR(framework, kernel, internal_policy=internal_policy,
                container_factory=container_factory)
    if attach:
        drcr.attach()
    return Platform(sim, kernel, framework, drcr)
