"""One-call assembly of the whole stack.

A *platform* is the composed system the paper's testbed ran: a simulated
machine (simulator + dual-kernel RTOS), an OSGi framework on its Linux
side, and a DRCR attached to both.  Most examples, tests and benchmarks
start from :func:`build_platform`.
"""

from repro.core.drcr import DRCR
from repro.osgi.framework import Framework
from repro.rtos.kernel import KernelConfig, RTKernel
from repro.sim.engine import MSEC, Simulator


class Platform:
    """The assembled stack: simulator, kernel, framework, DRCR."""

    def __init__(self, sim, kernel, framework, drcr):
        self.sim = sim
        self.kernel = kernel
        self.framework = framework
        self.drcr = drcr

    @property
    def now(self):
        """Current simulated time (ns)."""
        return self.sim.now

    @property
    def telemetry(self):
        """The platform-wide :class:`~repro.telemetry.metrics.Telemetry`
        (owned by the simulator; shared by every subsystem)."""
        return self.sim.telemetry

    def export_trace(self, path, indent=None):
        """Write the run's Chrome trace-event JSON to ``path`` (open it
        in ``chrome://tracing`` or Perfetto); returns the document."""
        from repro.telemetry.chrome import export_chrome_trace
        return export_chrome_trace(
            self.sim.trace, path, component_events=self.drcr.events,
            telemetry=self.sim.telemetry, indent=indent)

    def export_metrics(self, path):
        """Write the platform's metrics JSON to ``path``; returns the
        document."""
        from repro.telemetry.export import write_metrics_json
        return write_metrics_json(self.sim.telemetry, path)

    def run_for(self, duration_ns):
        """Advance simulated time by ``duration_ns``."""
        return self.sim.run_for(duration_ns)

    def start_timer(self, period_ns=MSEC):
        """Start the hardware timer (required before periodic tasks)."""
        self.kernel.start_timer(period_ns)

    def install_and_start(self, headers, resources=None, activator=None):
        """Install a bundle and start it (DRCom descriptors inside are
        deployed by the DRCR automatically)."""
        bundle = self.framework.install_bundle(headers, resources,
                                               activator)
        bundle.start()
        return bundle

    def shutdown(self):
        """Detach the DRCR and stop the framework."""
        self.drcr.detach()
        self.framework.shutdown()

    def __repr__(self):
        return "Platform(t=%dns, %r, %r)" % (self.now, self.framework,
                                             self.drcr)


def build_platform(seed=0, kernel_config=None, internal_policy=None,
                   container_factory=None, attach=True, telemetry=None):
    """Assemble a full platform.

    Parameters mirror the individual constructors; ``attach=False``
    leaves the DRCR detached (the caller wires listeners first).
    ``telemetry`` (a :class:`~repro.telemetry.metrics.Telemetry`) lets
    callers disable or share metric collection; default is a fresh,
    enabled instance.
    """
    sim = Simulator(seed=seed, telemetry=telemetry)
    kernel = RTKernel(sim, kernel_config or KernelConfig())
    framework = Framework(telemetry=sim.telemetry)
    drcr = DRCR(framework, kernel, internal_policy=internal_policy,
                container_factory=container_factory)
    if attach:
        drcr.attach()
    return Platform(sim, kernel, framework, drcr)
