"""The injectors: one class per :class:`~repro.faults.plan.FaultKind`.

Each injector arms itself against a live platform (scheduling simulator
events, wrapping containers, registering hostile services) and reports
every perturbation back through the owning
:class:`~repro.faults.engine.FaultEngine`, which counts it in the
``faults`` metrics registry and records a ``fault_inject`` trace row.

Injectors perturb *product* code paths -- the kernel's fault machinery,
the DRCR's activation path, the bridge's mailboxes, the descriptor
parser, the resolving-service consultation -- never test-only seams, so
what a chaos run exercises is exactly what production runs.
"""

from repro.core.resolving import ResolvingService
from repro.faults.plan import (
    FaultInjectionError,
    FaultKind,
    FaultPlanError,
)
from repro.hybrid.protocol import CommandKind


class ResolverTimeoutError(FaultInjectionError):
    """Raised by the injected resolving service (hung resolver)."""


class Injector:
    """Base: one armed :class:`FaultSpec`."""

    #: Kinds that intercept container creation instead of scheduling.
    factory_kind = False

    def __init__(self, spec, index):
        self.spec = spec
        self.index = index

    def arm(self, engine):
        """Schedule/install this injector against the platform."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _stream(self, engine):
        return engine.stream_for(self.index)

    def _gate(self, engine):
        """Apply the spec's probability gate (deterministic per plan
        seed)."""
        if self.spec.probability >= 1.0:
            return True
        return self._stream(engine).random() < self.spec.probability

    def _targets(self, engine, instantiated=True):
        """Deployed components this spec targets."""
        return [component
                for component in engine.drcr.registry.all()
                if self.spec.matches(component.name)
                and (not instantiated or component.is_instantiated)]


class CrashInjector(Injector):
    """``crash``: fault the target's RT task at ``at_ns``, exactly as
    if the implementation body had raised."""

    def arm(self, engine):
        engine.sim.schedule_at(self.spec.at_ns, self._fire, engine,
                               label="fault:crash")

    def _fire(self, engine):
        targets = self._targets(engine)
        if not targets:
            engine.record_skip(self.spec, "no instantiated target")
            return
        for component in targets:
            if not self._gate(engine):
                engine.record_skip(self.spec, "probability gate")
                continue
            task = component.container.task
            if task is None:
                engine.record_skip(self.spec, "no task")
                continue
            engine.record_injection(self.spec, target=component.name)
            engine.kernel.inject_fault(task, FaultInjectionError(
                "injected crash (plan %s)" % engine.plan.name))


class ActivationCrashInjector(Injector):
    """``crash_on_activate`` / ``crash_on_deactivate``: wrap containers
    created in the fault window so the chosen lifecycle call raises.

    The DRCR recovers from both: a failed activation parks the
    component UNSATISFIED (retried on the next reconfiguration); a
    failed deactivation triggers the DRCR's force-teardown so the
    kernel task and bridge are reclaimed regardless.
    """

    factory_kind = True

    def __init__(self, spec, index):
        super().__init__(spec, index)
        self.remaining = spec.count

    def arm(self, engine):
        pass  # interception happens through wrap_container

    def wrap_container(self, engine, component, container):
        if self.remaining <= 0 or not self.spec.matches(component.name):
            return container
        if engine.kernel.now < self.spec.at_ns:
            return container
        if not self._gate(engine):
            engine.record_skip(self.spec, "probability gate")
            return container
        self.remaining -= 1
        engine.record_injection(self.spec, target=component.name)
        on_activate = self.spec.kind is FaultKind.CRASH_ON_ACTIVATE
        return _CrashingContainer(container, engine.plan.name,
                                  fail_activate=on_activate,
                                  fail_deactivate=not on_activate)


class _CrashingContainer:
    """Container proxy whose activate/deactivate raises (once)."""

    def __init__(self, inner, plan_name, fail_activate, fail_deactivate):
        self._inner = inner
        self._plan_name = plan_name
        self._fail_activate = fail_activate
        self._fail_deactivate = fail_deactivate

    def activate(self, bindings):
        if self._fail_activate:
            self._fail_activate = False
            raise FaultInjectionError(
                "injected activation crash (plan %s)" % self._plan_name)
        return self._inner.activate(bindings)

    def deactivate(self):
        if self._fail_deactivate:
            self._fail_deactivate = False
            raise FaultInjectionError(
                "injected deactivation crash (plan %s)"
                % self._plan_name)
        return self._inner.deactivate()

    def __getattr__(self, name):
        return getattr(self._inner, name)


class OverrunInjector(Injector):
    """``overrun``: multiply the implementation's per-job compute time
    by ``factor`` for ``duration_ns`` -- the component lies about its
    WCET.  Paired with a ``fault``-policy watchdog this exercises
    eviction + contract-preserving re-resolution."""

    def arm(self, engine):
        engine.sim.schedule_at(self.spec.at_ns, self._fire, engine,
                               label="fault:overrun")

    def _fire(self, engine):
        targets = self._targets(engine)
        if not targets:
            engine.record_skip(self.spec, "no instantiated target")
            return
        for component in targets:
            implementation = component.container.implementation
            if "compute_ns" in implementation.__dict__:
                engine.record_skip(self.spec, "already wrapped")
                continue
            engine.record_injection(self.spec, target=component.name,
                                    factor=self.spec.factor)
            self._wrap(engine, implementation)

    def _wrap(self, engine, implementation):
        original = implementation.compute_ns
        spec = self.spec

        def inflated_compute_ns(ctx):
            base = original(ctx)
            if engine.kernel.now >= spec.end_ns:
                return base
            engine.count_overrun_job()
            return int(base * spec.factor)

        implementation.compute_ns = inflated_compute_ns
        engine.sim.schedule_at(
            spec.end_ns, self._restore, implementation,
            inflated_compute_ns, label="fault:overrun_end")

    @staticmethod
    def _restore(implementation, wrapper):
        if implementation.__dict__.get("compute_ns") is wrapper:
            del implementation.__dict__["compute_ns"]


class MailboxDropInjector(Injector):
    """``mailbox_drop``: shrink the target's command mailbox to zero
    capacity for the window, so every management send drops (the §3.2
    non-blocking discipline under a dead RT consumer)."""

    def arm(self, engine):
        engine.sim.schedule_at(self.spec.at_ns, self._fire, engine,
                               label="fault:mbx_drop")

    def _fire(self, engine):
        targets = self._targets(engine)
        if not targets:
            engine.record_skip(self.spec, "no instantiated target")
            return
        for component in targets:
            bridge = component.container.bridge
            if bridge is None:
                engine.record_skip(self.spec, "no bridge")
                continue
            mailbox = bridge.command_mailbox
            engine.record_injection(self.spec, target=component.name)
            original = mailbox.capacity
            mailbox.resize(0)
            engine.sim.schedule_at(
                self.spec.end_ns, mailbox.resize, original,
                label="fault:mbx_drop_end")


class MailboxFloodInjector(Injector):
    """``mailbox_flood``: fill the target's command mailbox with
    injected PINGs, so the next real management command overflows."""

    def arm(self, engine):
        engine.sim.schedule_at(self.spec.at_ns, self._fire, engine,
                               label="fault:mbx_flood")

    def _fire(self, engine):
        targets = self._targets(engine)
        if not targets:
            engine.record_skip(self.spec, "no instantiated target")
            return
        for component in targets:
            bridge = component.container.bridge
            if bridge is None:
                engine.record_skip(self.spec, "no bridge")
                continue
            flooded = 0
            while not bridge.command_mailbox.full:
                command = bridge.send_command(CommandKind.PING)
                if command is None:
                    break
                command.injected = True
                flooded += 1
            engine.record_injection(self.spec, target=component.name,
                                    flooded=flooded)


class DescriptorCorruptInjector(Injector):
    """``descriptor_corrupt``: mangle the next ``count`` matching
    descriptor XMLs before the DRCR parses them.  The hardened
    ``_deploy_bundle`` contains the damage to the corrupt component and
    keeps deploying the rest of the bundle."""

    def __init__(self, spec, index):
        super().__init__(spec, index)
        self.remaining = spec.count

    def arm(self, engine):
        engine.add_descriptor_filter(self._filter)

    def _filter(self, engine, xml_text, bundle, path):
        if self.remaining <= 0:
            return xml_text
        if engine.kernel.now < self.spec.at_ns:
            return xml_text
        if not self.spec.matches(bundle.symbolic_name):
            return xml_text
        if not self._gate(engine):
            engine.record_skip(self.spec, "probability gate")
            return xml_text
        self.remaining -= 1
        engine.record_injection(self.spec, target=bundle.symbolic_name,
                                path=path)
        return "<corrupted/>" + xml_text[:len(xml_text) // 2]


class TimingOutResolvingService(ResolvingService):
    """A resolving service that raises on every consultation."""

    name = "injected-timeout"

    def __init__(self, plan_name):
        self._plan_name = plan_name

    def _raise(self):
        raise ResolverTimeoutError(
            "resolving service timed out (plan %s)" % self._plan_name)

    def admit(self, candidate, view):
        self._raise()

    def revalidate(self, component, view):
        self._raise()


class ResolverTimeoutInjector(Injector):
    """``resolver_timeout``: register a raising resolving service for
    the window.  The DRCR must *fail safe* on admission (treat the
    error as a veto) and *fail open* on revalidation (keep admitted
    components admitted) -- both are asserted in
    ``tests/faults/test_injectors.py``."""

    def arm(self, engine):
        engine.sim.schedule_at(self.spec.at_ns, self._fire, engine,
                               label="fault:resolver")

    def _fire(self, engine):
        service = TimingOutResolvingService(engine.plan.name)
        from repro.core.resolving import RESOLVING_SERVICE_INTERFACE
        registration = engine.drcr.framework.registry.register(
            RESOLVING_SERVICE_INTERFACE, service)
        engine.record_injection(self.spec, target=self.spec.target)
        engine.sim.schedule_at(self.spec.end_ns, self._end,
                               registration, label="fault:resolver_end")

    @staticmethod
    def _end(registration):
        if not registration.unregistered:
            registration.unregister()


class ClusterInjector(Injector):
    """Base for federation-scope faults: needs ``engine.cluster``."""

    def _cluster(self, engine):
        if engine.cluster is None:
            raise FaultPlanError(
                "%s targets the cluster; arm the FaultEngine with "
                "cluster=..." % self.spec.kind.value)
        return engine.cluster


class NodeCrashInjector(ClusterInjector):
    """``node_crash``: fail-stop the target node at ``at_ns``.

    The node drops off the transport and its stack is torn down;
    survivors only find out through missed heartbeats, so detection
    and failover latency are part of what the experiment measures."""

    def arm(self, engine):
        self._cluster(engine)
        engine.sim.schedule_at(self.spec.at_ns, self._fire, engine,
                               label="fault:node_crash")

    def _fire(self, engine):
        cluster = self._cluster(engine)
        node = cluster.nodes.get(self.spec.target)
        if node is None or not node.alive:
            engine.record_skip(self.spec, "no such live node")
            return
        if not self._gate(engine):
            engine.record_skip(self.spec, "probability gate")
            return
        engine.record_injection(self.spec, target=self.spec.target)
        cluster.crash_node(self.spec.target)


class PartitionInjector(ClusterInjector):
    """``partition``: sever the ``nodeA|nodeB`` pair for the window.

    Both directions block (in-flight messages included) until
    ``duration_ns`` elapses and the pair heals."""

    def arm(self, engine):
        self._cluster(engine)
        engine.sim.schedule_at(self.spec.at_ns, self._fire, engine,
                               label="fault:partition")

    def _fire(self, engine):
        cluster = self._cluster(engine)
        a, b = self.spec.target.split("|")
        if not self._gate(engine):
            engine.record_skip(self.spec, "probability gate")
            return
        engine.record_injection(self.spec, target=self.spec.target)
        cluster.transport.partition(a, b)
        engine.sim.schedule(self.spec.duration_ns, self._heal,
                            engine, a, b, label="fault:partition-heal")

    def _heal(self, engine, a, b):
        self._cluster(engine).transport.heal(a, b)


#: FaultKind -> injector class.
INJECTOR_CLASSES = {
    FaultKind.CRASH: CrashInjector,
    FaultKind.CRASH_ON_ACTIVATE: ActivationCrashInjector,
    FaultKind.CRASH_ON_DEACTIVATE: ActivationCrashInjector,
    FaultKind.OVERRUN: OverrunInjector,
    FaultKind.MAILBOX_DROP: MailboxDropInjector,
    FaultKind.MAILBOX_FLOOD: MailboxFloodInjector,
    FaultKind.DESCRIPTOR_CORRUPT: DescriptorCorruptInjector,
    FaultKind.RESOLVER_TIMEOUT: ResolverTimeoutInjector,
    FaultKind.NODE_CRASH: NodeCrashInjector,
    FaultKind.PARTITION: PartitionInjector,
}


def make_injector(spec, index):
    """Build the injector for one spec."""
    return INJECTOR_CLASSES[spec.kind](spec, index)
