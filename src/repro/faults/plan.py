"""Fault plans: declarative, seed-driven chaos schedules.

A :class:`FaultPlan` is to fault injection what a DRCom descriptor is
to a component: a declarative artifact that fully determines run-time
behaviour.  Every stochastic choice an injector makes (probability
gates, jitter) draws from named streams derived from ``plan.seed`` --
independent of the simulation's master seed -- so the *fault schedule*
of a plan reproduces exactly across runs and across unrelated changes
to the platform's own randomness.  That determinism is what makes a
chaos experiment a regression test instead of a dice roll (see
``docs/FAULT_INJECTION.md`` and ``tests/faults/test_plan.py``).

Plans are plain data: build them in code, load them from JSON
(:meth:`FaultPlan.from_json_file`), or use the built-in
:func:`example_plan` that ``python -m repro --faults examples`` runs
against the paper's section-4.2/4.3 pipeline.
"""

import enum
import json

from repro.sim.engine import MSEC, USEC


class FaultPlanError(ValueError):
    """A fault plan failed validation."""


class FaultInjectionError(RuntimeError):
    """The error injectors raise inside perturbed code paths.

    A distinct type so logs, status reasons and tests can tell an
    *injected* failure from a genuine implementation bug.
    """


class FaultKind(enum.Enum):
    """Every fault the injection subsystem can produce."""

    #: Fault the component's running RT task (as if its body raised).
    CRASH = "crash"
    #: Raise inside ``container.activate`` (admission-time crash).
    CRASH_ON_ACTIVATE = "crash_on_activate"
    #: Raise inside ``container.deactivate`` (teardown-time crash).
    CRASH_ON_DEACTIVATE = "crash_on_deactivate"
    #: Multiply the implementation's per-job compute time (WCET lie).
    OVERRUN = "overrun"
    #: Shrink the command mailbox to zero capacity for a window.
    MAILBOX_DROP = "mailbox_drop"
    #: Fill the command mailbox with injected PINGs (overflow pressure).
    MAILBOX_FLOOD = "mailbox_flood"
    #: Corrupt descriptor XML before the DRCR parses it.
    DESCRIPTOR_CORRUPT = "descriptor_corrupt"
    #: Register a resolving service that raises (hung resolver).
    RESOLVER_TIMEOUT = "resolver_timeout"
    #: Fail-stop one cluster node (federation runs only).
    NODE_CRASH = "node_crash"
    #: Sever a node pair's links for a window (federation runs only).
    PARTITION = "partition"


#: Kinds that perturb a time window and need ``duration_ns``.
WINDOW_KINDS = frozenset({
    FaultKind.OVERRUN, FaultKind.MAILBOX_DROP,
    FaultKind.RESOLVER_TIMEOUT, FaultKind.PARTITION,
})

#: Kinds that target the cluster rather than one platform; the
#: :class:`~repro.faults.engine.FaultEngine` must be armed with a
#: ``cluster=`` to use them.
CLUSTER_KINDS = frozenset({
    FaultKind.NODE_CRASH, FaultKind.PARTITION,
})

#: Kinds that fire a bounded number of times and honour ``count``.
COUNT_KINDS = frozenset({
    FaultKind.CRASH_ON_ACTIVATE, FaultKind.CRASH_ON_DEACTIVATE,
    FaultKind.DESCRIPTOR_CORRUPT,
})


def _time_field(data, base, default=None):
    """Read ``<base>_ns`` or ``<base>_ms`` from a plan dict."""
    if base + "_ns" in data:
        return int(data[base + "_ns"])
    if base + "_ms" in data:
        return int(data[base + "_ms"]) * MSEC
    return default


class FaultSpec:
    """One fault to inject: what, on whom, when, how hard."""

    __slots__ = ("kind", "target", "at_ns", "duration_ns", "count",
                 "factor", "probability")

    def __init__(self, kind, target="*", at_ns=0, duration_ns=None,
                 count=1, factor=10.0, probability=1.0):
        if not isinstance(kind, FaultKind):
            kind = FaultKind(kind)
        self.kind = kind
        self.target = target
        self.at_ns = int(at_ns)
        self.duration_ns = None if duration_ns is None \
            else int(duration_ns)
        self.count = int(count)
        self.factor = float(factor)
        self.probability = float(probability)
        self._validate()

    def _validate(self):
        if self.at_ns < 0:
            raise FaultPlanError("at_ns must be >= 0, got %d"
                                 % self.at_ns)
        if not self.target:
            raise FaultPlanError("target must be a component name "
                                 "or '*'")
        if self.kind in WINDOW_KINDS:
            if self.duration_ns is None or self.duration_ns <= 0:
                raise FaultPlanError(
                    "%s needs a positive duration_ns" % self.kind.value)
        if self.kind in COUNT_KINDS and self.count < 1:
            raise FaultPlanError("count must be >= 1, got %d"
                                 % self.count)
        if self.kind is FaultKind.OVERRUN and self.factor <= 1.0:
            raise FaultPlanError(
                "overrun factor must exceed 1.0, got %r" % self.factor)
        if not 0.0 < self.probability <= 1.0:
            raise FaultPlanError(
                "probability must be in (0, 1], got %r"
                % self.probability)
        if self.kind is FaultKind.NODE_CRASH and self.target == "*":
            raise FaultPlanError(
                "node_crash needs a specific node name, not '*'")
        if self.kind is FaultKind.PARTITION:
            parts = self.target.split("|")
            if len(parts) != 2 or not all(parts):
                raise FaultPlanError(
                    "partition target must be 'nodeA|nodeB', got %r"
                    % self.target)

    def matches(self, name):
        """Whether this spec targets component/bundle ``name``."""
        return self.target == "*" or self.target == name

    @property
    def end_ns(self):
        """End of the perturbation window (window kinds only)."""
        if self.duration_ns is None:
            return self.at_ns
        return self.at_ns + self.duration_ns

    def to_dict(self):
        """Plain-data form (JSON round-trippable)."""
        data = {"kind": self.kind.value, "target": self.target,
                "at_ns": self.at_ns}
        if self.duration_ns is not None:
            data["duration_ns"] = self.duration_ns
        if self.kind in COUNT_KINDS:
            data["count"] = self.count
        if self.kind is FaultKind.OVERRUN:
            data["factor"] = self.factor
        if self.probability != 1.0:
            data["probability"] = self.probability
        return data

    @classmethod
    def from_dict(cls, data):
        """Parse one spec; accepts ``at_ms``/``duration_ms`` sugar."""
        try:
            kind = FaultKind(data["kind"])
        except (KeyError, ValueError) as error:
            raise FaultPlanError("bad fault kind in %r: %s"
                                 % (data, error)) from None
        return cls(kind,
                   target=data.get("target", "*"),
                   at_ns=_time_field(data, "at", 0),
                   duration_ns=_time_field(data, "duration"),
                   count=data.get("count", 1),
                   factor=data.get("factor", 10.0),
                   probability=data.get("probability", 1.0))

    def __repr__(self):
        return "FaultSpec(%s, %s, at=%dns)" % (
            self.kind.value, self.target, self.at_ns)


class FaultPlan:
    """A named, seeded collection of :class:`FaultSpec` plus the
    recovery machinery to arm alongside them.

    ``watchdog`` (``{"limit_ns", "check_period_ns", "policy"}``) arms a
    :class:`~repro.rtos.watchdog.Watchdog`; ``quarantine``
    (``{"cooldown_ns", "max_failures"}``) installs a
    :class:`~repro.faults.recovery.QuarantinePolicy` on the DRCR.
    Either may be ``None`` to leave that machinery out.
    """

    def __init__(self, name, seed=0, faults=(), watchdog=None,
                 quarantine=None):
        self.name = name
        self.seed = int(seed)
        self.faults = list(faults)
        self.watchdog = dict(watchdog) if watchdog else None
        self.quarantine = dict(quarantine) if quarantine else None
        if self.watchdog is not None:
            if "limit_ns" not in self.watchdog:
                raise FaultPlanError("watchdog config needs limit_ns")
        if self.quarantine is not None:
            if "cooldown_ns" not in self.quarantine:
                raise FaultPlanError(
                    "quarantine config needs cooldown_ns")

    def to_dict(self):
        """Plain-data form (JSON round-trippable)."""
        data = {"name": self.name, "seed": self.seed,
                "faults": [spec.to_dict() for spec in self.faults]}
        if self.watchdog is not None:
            data["watchdog"] = dict(self.watchdog)
        if self.quarantine is not None:
            data["quarantine"] = dict(self.quarantine)
        return data

    @classmethod
    def from_dict(cls, data):
        """Parse a plan from plain data."""
        if "name" not in data:
            raise FaultPlanError("fault plan needs a name")
        return cls(data["name"],
                   seed=data.get("seed", 0),
                   faults=[FaultSpec.from_dict(item)
                           for item in data.get("faults", [])],
                   watchdog=data.get("watchdog"),
                   quarantine=data.get("quarantine"))

    @classmethod
    def from_json_file(cls, path):
        """Load a plan from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def __repr__(self):
        return "FaultPlan(%s, seed=%d, %d faults)" % (
            self.name, self.seed, len(self.faults))


def example_plan():
    """The built-in chaos plan for the demo pipeline.

    Targets the section-4.2/4.3 components (``CALC00`` 1000 Hz top
    priority, ``DISP00`` 250 Hz) over a one-second run:

    * 200 ms -- crash CALC00's task (quarantine + cascade to DISP00);
    * 300 ms -- quarantine cool-down expires, both re-admitted;
    * 500 ms -- CALC00's jobs overrun 400x for 20 ms; the watchdog
      (500 us continuous-occupancy limit, ``fault`` policy) evicts it
      within ~600 us, well inside DISP00's 4 ms deadline, so **no
      surviving component misses a deadline**;
    * 650 ms -- flood DISP00's command mailbox (overflow pressure);
    * 700 ms -- a raising resolving service appears for 20 ms; the
      DRCR fails safe on admission and fails open on revalidation.
    """
    return FaultPlan(
        "examples", seed=42,
        watchdog={"limit_ns": 500 * USEC,
                  "check_period_ns": 100 * USEC,
                  "policy": "fault"},
        quarantine={"cooldown_ns": 100 * MSEC, "max_failures": 3},
        faults=[
            FaultSpec(FaultKind.CRASH, "CALC00", at_ns=200 * MSEC),
            FaultSpec(FaultKind.OVERRUN, "CALC00", at_ns=500 * MSEC,
                      duration_ns=20 * MSEC, factor=400.0),
            FaultSpec(FaultKind.MAILBOX_FLOOD, "DISP00",
                      at_ns=650 * MSEC),
            FaultSpec(FaultKind.RESOLVER_TIMEOUT, "*",
                      at_ns=700 * MSEC, duration_ns=20 * MSEC),
        ])


def load_plan(spec):
    """Resolve a ``--faults`` argument to a :class:`FaultPlan`.

    ``"examples"`` names the built-in plan; anything else is a path to
    a JSON plan file.
    """
    if isinstance(spec, FaultPlan):
        return spec
    if spec == "examples":
        return example_plan()
    return FaultPlan.from_json_file(spec)
