"""``repro.faults``: deterministic fault injection + recovery policies.

The subsystem has four parts:

* :mod:`~repro.faults.plan` -- the declarative :class:`FaultPlan`
  schema (what to inject, on whom, when);
* :mod:`~repro.faults.injectors` -- one injector per
  :class:`FaultKind`, perturbing real product code paths;
* :mod:`~repro.faults.recovery` -- the recovery policies the faults
  exercise (backoff retry, quarantine/re-admission, graceful
  degradation);
* :mod:`~repro.faults.engine` -- the :class:`FaultEngine` that arms a
  plan against a live platform and records what happened.

See ``docs/FAULT_INJECTION.md`` for the full reference and a worked
chaos experiment.
"""

from repro.faults.engine import FaultEngine
from repro.faults.injectors import ResolverTimeoutError
from repro.faults.plan import (
    FaultInjectionError,
    FaultKind,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    example_plan,
    load_plan,
)
from repro.faults.recovery import (
    BackoffPolicy,
    GracefulDegradationService,
    QuarantinePolicy,
    shed_lowest_priority,
)

__all__ = [
    "BackoffPolicy",
    "FaultEngine",
    "FaultInjectionError",
    "FaultKind",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "GracefulDegradationService",
    "QuarantinePolicy",
    "ResolverTimeoutError",
    "example_plan",
    "load_plan",
    "shed_lowest_priority",
]
